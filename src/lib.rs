#![warn(missing_docs)]
//! Facade crate for the TCMS workspace: time-constrained modulo scheduling
//! with global resource sharing (DATE 1999 reproduction).
//!
//! This crate re-exports the full stack under stable module names:
//!
//! * [`ir`] — multi-process HLS intermediate representation and benchmarks,
//! * [`fds`] — force-directed scheduling (FDS/IFDS) and baselines,
//! * [`modulo`] — the paper's contribution: coupled modulo scheduling with
//!   global resource sharing,
//! * [`alloc`] — binding, register allocation and datapath generation,
//! * [`sim`] — reactive discrete-event simulation of scheduled systems,
//! * [`obs`] — structured tracing, metrics and convergence timelines,
//! * [`serve`] — the concurrent scheduling daemon with canonical spec
//!   hashing and a content-addressed result cache.
//!
//! # Quickstart
//!
//! ```
//! use tcms::ir::generators::paper_system;
//! use tcms::modulo::{ModuloScheduler, SharingSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (system, types) = paper_system()?;
//! let spec = SharingSpec::all_global(&system, 5);
//! let outcome = ModuloScheduler::new(&system, spec)?.run()?;
//! assert!(outcome.report().total_area() > 0);
//! # Ok(())
//! # }
//! ```

pub mod cli;

pub use tcms_alloc as alloc;
pub use tcms_core as modulo;
pub use tcms_fds as fds;
pub use tcms_ir as ir;
pub use tcms_obs as obs;
pub use tcms_serve as serve;
pub use tcms_sim as sim;
