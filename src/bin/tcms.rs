//! The `tcms` command-line tool: schedule `.dfg` designs with modulo
//! global resource sharing, export Graphviz, verify executions.
//!
//! See `tcms help` or [`tcms::cli`] for the interface.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match tcms::cli::parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match tcms::cli::run(&cmd) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
