//! The `tcms` command-line tool: schedule `.dfg` designs with modulo
//! global resource sharing, export Graphviz, verify executions.
//!
//! See `tcms help` or [`tcms::cli`] for the interface. Failures exit
//! with a stable per-class code (see [`tcms::cli::CliError::exit_code`]):
//! 2 usage, 3 I/O, 4 malformed input, 5 invalid spec, 6 infeasible,
//! 7 budget exhausted, 8 period grid overflow, 9 verification, 10 backend.

use std::process::ExitCode;

use tcms::cli::CliError;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match tcms::cli::parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            let err = CliError::Usage(e);
            eprintln!("error: {err}");
            return ExitCode::from(err.exit_code());
        }
    };
    match tcms::cli::run(&cmd) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
