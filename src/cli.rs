//! Command-line interface of the `tcms` binary.
//!
//! ```text
//! tcms schedule <design> [--all-global ρ] [--global TYPE=ρ]... [--gantt] [--verify N]
//! tcms dot <design>
//! tcms summary <design>
//! ```
//!
//! `<design>` is either a structural `.dfg` file or a behavioral source
//! (detected by the `:=` assignment operator; compiled with
//! [`crate::ir::frontend`] against the paper's add/sub/mul library).
//!
//! The parsing and execution live here (and are unit tested); the binary
//! in `src/bin/tcms.rs` only wires stdin/stdout.

use std::fmt;
use std::fmt::Write as _;
use std::path::Path;

use crate::ir::{display, dot, System};
use crate::modulo::{check_execution, random_activations, ModuloScheduler, ScheduleError};
use crate::obs::{sink, NoopRecorder, Recorder, TraceRecorder};
use crate::serve::cache::SchedCache;
use crate::serve::pipeline::{self, ExecContext, ScheduleOptions, SimulateOptions};
use crate::serve::{persist, Client, ServeConfig, ServeError, Server};

/// A typed CLI failure. Every class maps to a stable process exit code
/// (see [`CliError::exit_code`]) so scripts can branch on *why* a run
/// failed, not only that it did.
#[derive(Debug, Clone, PartialEq)]
pub enum CliError {
    /// Bad command line: unknown flag, missing argument, malformed value.
    Usage(String),
    /// A file could not be read or written.
    Io {
        /// The offending path.
        path: String,
        /// The underlying OS error text.
        message: String,
    },
    /// The input text failed to parse or compile (either language).
    Malformed(String),
    /// The sharing specification is invalid for the design.
    Spec(String),
    /// The scheduler failed with a typed [`ScheduleError`].
    Schedule(ScheduleError),
    /// A produced or loaded schedule failed verification.
    Verify(String),
    /// Binding / RTL generation failed after a valid schedule.
    Backend(String),
    /// A request to a `tcms serve` daemon failed remotely; carries the
    /// wire class and code (see [`crate::serve::ServeError`]).
    Service {
        /// The stable wire class, e.g. `overloaded`.
        class: String,
        /// The wire code (CLI exit codes, or 4xx/5xx for service-only
        /// classes).
        code: u16,
        /// The daemon's error message.
        message: String,
    },
}

impl CliError {
    /// The stable process exit code for this failure class.
    ///
    /// | code | class |
    /// |------|-------|
    /// | 2 | usage |
    /// | 3 | I/O |
    /// | 4 | malformed input |
    /// | 5 | invalid sharing spec |
    /// | 6 | infeasible time constraint |
    /// | 7 | run budget exhausted |
    /// | 8 | period grid overflow |
    /// | 9 | schedule verification failure |
    /// | 10 | backend (binding/RTL) failure |
    /// | 11 | remote service failure (unless the daemon's code is 2–10) |
    /// | 12 | daemon-internal failure (worker panic, wire code 500) |
    #[must_use]
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Io { .. } => 3,
            CliError::Malformed(_) => 4,
            CliError::Spec(_) | CliError::Schedule(ScheduleError::Spec(_)) => 5,
            CliError::Schedule(ScheduleError::Infeasible { .. }) => 6,
            CliError::Schedule(ScheduleError::BudgetExhausted(_)) => 7,
            CliError::Schedule(ScheduleError::PeriodGridOverflow { .. }) => 8,
            CliError::Verify(_) | CliError::Schedule(ScheduleError::VerificationFailed { .. }) => 9,
            CliError::Backend(_) => 10,
            // A remote scheduling failure keeps its one-shot exit code;
            // a daemon-internal failure (500) gets its own code so
            // operators can tell "the daemon crashed on this job" from
            // ordinary service pushback; the remaining service-only
            // classes (429/408/413/503) fold to 11.
            CliError::Service { code: 500, .. } => 12,
            CliError::Service { code, .. } => u8::try_from(*code)
                .ok()
                .filter(|c| (2..=10).contains(c))
                .unwrap_or(11),
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Io { path, message } => write!(f, "cannot access `{path}`: {message}"),
            CliError::Malformed(msg) => write!(f, "malformed input: {msg}"),
            CliError::Spec(msg) => write!(f, "invalid sharing spec: {msg}"),
            CliError::Schedule(e) => write!(f, "scheduling failed: {e}"),
            CliError::Verify(msg) => write!(f, "schedule verification failed: {msg}"),
            CliError::Backend(msg) => write!(f, "backend failed: {msg}"),
            CliError::Service {
                class,
                code,
                message,
            } => write!(f, "service error [{class}/{code}]: {message}"),
        }
    }
}

/// Maps a serving-pipeline error onto the CLI's error classes; the
/// scheduling classes translate one-to-one, the service-only classes
/// become [`CliError::Service`].
fn serve_to_cli(e: ServeError) -> CliError {
    match e {
        ServeError::BadRequest(m) => CliError::Usage(m),
        ServeError::Malformed(m) => CliError::Malformed(m),
        ServeError::Spec(m) => CliError::Spec(m),
        ServeError::Schedule(e) => CliError::Schedule(e),
        ServeError::Verify(m) => CliError::Verify(m),
        other @ (ServeError::UnknownAction(_)
        | ServeError::Overloaded { .. }
        | ServeError::DeadlineExpired { .. }
        | ServeError::ShuttingDown
        | ServeError::PeerUnavailable { .. }
        | ServeError::TooLarge { .. }
        | ServeError::Internal(_)) => CliError::Service {
            class: other.class().to_owned(),
            code: other.code(),
            message: other.to_string(),
        },
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Schedule(e) => Some(e),
            _ => None,
        }
    }
}

/// Connects to a daemon honouring `--timeout-ms`: when given, the value
/// bounds both the connect and every read; when absent, connects under
/// the default 5 s timeout and reads without one (scheduling jobs may
/// legitimately take a while).
fn connect_client(addr: &str, timeout_ms: Option<u64>) -> std::io::Result<Client> {
    match timeout_ms {
        Some(ms) => {
            let t = std::time::Duration::from_millis(ms.max(1));
            Client::connect_with(addr, Some(t), Some(t))
        }
        None => Client::connect(addr),
    }
}

/// Sends one request line to a daemon address that may be a
/// comma-separated failover list. A single address keeps the plain
/// pipelining client (and its historical timeout semantics); a list is
/// wrapped in [`crate::serve::ServeClient`] so transport failures and
/// typed `peer-unavailable` answers rotate to the next fleet member.
fn daemon_request(
    addr: &str,
    line: &str,
    timeout_ms: Option<u64>,
) -> Result<crate::serve::Response, CliError> {
    let io = |e: std::io::Error| CliError::Io {
        path: addr.to_owned(),
        message: e.to_string(),
    };
    let addrs: Vec<String> = addr
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_owned)
        .collect();
    if addrs.len() <= 1 {
        let mut client = connect_client(addr, timeout_ms).map_err(io)?;
        client.request(line).map_err(io)
    } else {
        let t = timeout_ms.map(|ms| std::time::Duration::from_millis(ms.max(1)));
        let policy = crate::serve::RetryPolicy {
            connect_timeout: t.or(Some(crate::serve::DEFAULT_CONNECT_TIMEOUT)),
            read_timeout: t,
            ..crate::serve::RetryPolicy::default()
        };
        let mut client = crate::serve::ServeClient::with_addrs(addrs, policy);
        client.request(line).map_err(io)
    }
}

impl From<ScheduleError> for CliError {
    fn from(e: ScheduleError) -> Self {
        CliError::Schedule(e)
    }
}

impl From<crate::modulo::CoreError> for CliError {
    fn from(e: crate::modulo::CoreError) -> Self {
        CliError::Schedule(ScheduleError::from(e))
    }
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Schedule a design and print the report.
    Schedule {
        /// Path of the `.dfg` input.
        input: String,
        /// Uniform period for all shareable types (from `--all-global`).
        all_global: Option<u32>,
        /// Per-type `TYPE=PERIOD` global assignments (from `--global`).
        globals: Vec<(String, u32)>,
        /// Print ASCII Gantt charts (from `--gantt`).
        gantt: bool,
        /// Number of randomized execution checks (from `--verify N`).
        verify: usize,
        /// Write the schedule in `.sched` format to this path
        /// (from `--save`).
        save: Option<String>,
        /// Write a Chrome `trace_event` JSON file to this path
        /// (from `--trace`; open with Perfetto / about:tracing).
        trace: Option<String>,
        /// Print the metrics-registry summary table (from `--metrics`).
        metrics: bool,
        /// Write the JSONL event/timeline stream to this path
        /// (from `--timeline`).
        timeline: Option<String>,
        /// Retry infeasible or budget-tripped specifications through the
        /// graceful-degradation ladder (from `--degrade`).
        degrade: bool,
        /// Feedback-guided subgraph decomposition (from
        /// `--partition <K|auto>`); `None` keeps the pipeline's
        /// size-threshold routing.
        partition: Option<crate::modulo::PartitionCount>,
        /// Worker-thread count override (from `--threads`; 0 = auto).
        threads: Option<usize>,
        /// Persistent content-addressed result cache directory
        /// (from `--cache-dir`).
        cache_dir: Option<String>,
    },
    /// Simulate a scheduled design under reactive workloads, optionally
    /// with deterministic fault injection.
    Simulate {
        /// Path of the design input.
        input: String,
        /// Uniform period for all shareable types.
        all_global: Option<u32>,
        /// Per-type global assignments.
        globals: Vec<(String, u32)>,
        /// Simulated time steps (from `--horizon`).
        horizon: u64,
        /// Workload seed (from `--seed`).
        seed: u64,
        /// Mean gap of the random triggers (from `--mean-gap`).
        mean_gap: u64,
        /// Enable fault injection (from `--faults`).
        faults: bool,
        /// The fault plan used when `faults` is set; knob flags
        /// (`--fault-seed`, `--jitter`, `--drop-prob`, `--outage-rate`,
        /// `--repair`, `--slack`) override the moderate defaults.
        plan: crate::sim::FaultPlan,
        /// Worker-thread count override (from `--threads`; 0 = auto).
        threads: Option<usize>,
    },
    /// Re-check a saved `.sched` file against a design.
    Check {
        /// Path of the design input.
        input: String,
        /// Path of the `.sched` file.
        sched: String,
        /// Uniform period for all shareable types.
        all_global: Option<u32>,
        /// Per-type global assignments.
        globals: Vec<(String, u32)>,
    },
    /// Emit structural VHDL for a scheduled design.
    Vhdl {
        /// Path of the design input.
        input: String,
        /// Uniform period for all shareable types.
        all_global: Option<u32>,
        /// Per-type global assignments.
        globals: Vec<(String, u32)>,
        /// Data-path width in bits.
        width: u32,
    },
    /// Convert a (behavioral) design to the structural `.dfg` format.
    Dfg {
        /// Path of the design input.
        input: String,
    },
    /// Run the scheduling daemon until a client requests shutdown.
    Serve {
        /// Listen address (from `--listen`; `:0` picks a free port).
        listen: String,
        /// Worker threads (from `--workers`; 0 = auto).
        workers: usize,
        /// Bounded job-queue capacity (from `--queue`).
        queue: usize,
        /// Result-cache capacity in entries (from `--cache-capacity`).
        cache_capacity: usize,
        /// Persistent cache snapshot directory (from `--cache-dir`).
        cache_dir: Option<String>,
        /// Default per-job deadline in ms (from `--deadline-ms`).
        deadline_ms: Option<u64>,
        /// Automatic partition-routing threshold in operations
        /// (from `--auto-partition-ops`; 0 disables).
        auto_partition_ops: Option<usize>,
        /// Workload-journal directory (from `--journal-dir`).
        journal_dir: Option<String>,
        /// Journal rotation threshold in bytes
        /// (from `--journal-rotate-bytes`; 0 = never rotate).
        journal_rotate_bytes: Option<u64>,
        /// Worker-thread count for the scheduler itself
        /// (from `--threads`; 0 = auto).
        threads: Option<usize>,
        /// Fleet member addresses (from `--peers`, comma-separated);
        /// empty runs a standalone daemon.
        peers: Vec<String>,
        /// This node's advertised address (from `--advertise`; defaults
        /// to the listen address). Must match how the peers list it.
        advertise: Option<String>,
        /// HTTP/1.1 front-end listen address (from `--http`).
        http: Option<String>,
        /// Non-owner routing mode (from `--route proxy|local`).
        route: crate::serve::RouteMode,
        /// Anti-entropy period in ms (from `--sync-interval-ms`;
        /// 0 disables the background loop).
        sync_interval_ms: Option<u64>,
        /// Replica-set size (from `--replicas`; owner + backups).
        replicas: Option<usize>,
    },
    /// Send one request to a running daemon and print the response.
    Client {
        /// Daemon address, e.g. `127.0.0.1:7733`. A comma-separated
        /// list enables fleet failover: transport errors and typed
        /// `peer-unavailable` answers rotate to the next address.
        addr: String,
        /// The request to send.
        action: ClientCommand,
        /// Connect *and* read timeout in ms (from `--timeout-ms`;
        /// absent = 5 s connect timeout, unlimited read).
        timeout_ms: Option<u64>,
    },
    /// Fetch a daemon's statistics and render them human-readably
    /// (`tcms client <addr> stats` prints the raw JSON instead).
    Stats {
        /// Daemon address, e.g. `127.0.0.1:7733` (comma-separated for
        /// fleet failover, as for `tcms client`).
        addr: String,
        /// Connect *and* read timeout in ms (from `--timeout-ms`;
        /// absent = 5 s connect timeout, unlimited read).
        timeout_ms: Option<u64>,
    },
    /// Print the Graphviz rendering of a design.
    Dot {
        /// Path of the `.dfg` input.
        input: String,
    },
    /// Print a one-line summary of a design.
    Summary {
        /// Path of the `.dfg` input.
        input: String,
    },
    /// Print usage information.
    Help,
}

/// What `tcms client` asks a daemon to do.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientCommand {
    /// Remote `schedule`: the design file is read locally and sent over
    /// the wire.
    Schedule {
        /// Path of the design input.
        input: String,
        /// Schedule options (the same flags as one-shot `schedule`).
        opts: ScheduleOptions,
        /// Per-job deadline in ms (from `--deadline-ms`).
        deadline_ms: Option<u64>,
    },
    /// Remote `simulate`.
    Simulate {
        /// Path of the design input.
        input: String,
        /// Simulation options (the same flags as one-shot `simulate`).
        opts: SimulateOptions,
        /// Per-job deadline in ms (from `--deadline-ms`).
        deadline_ms: Option<u64>,
    },
    /// Liveness probe.
    Ping,
    /// Daemon statistics (cache hit rate, queue depth, counters).
    Stats,
    /// Ask the daemon to shut down gracefully.
    Shutdown,
}

/// Usage text printed by `tcms help`.
pub const USAGE: &str = "\
tcms — time-constrained modulo scheduling with global resource sharing

USAGE:
  tcms schedule <design> [OPTIONS]     schedule and report resources/area
  tcms simulate <design> [OPTIONS]     schedule, then simulate reactive load
  tcms check <design> <file.sched>     re-verify a saved schedule
  tcms vhdl <design> [OPTIONS]         schedule and emit structural VHDL
  tcms dfg <design>                    convert behavioral input to .dfg
  tcms dot <design>                    emit Graphviz
  tcms summary <design>                one-line design summary
  tcms serve [OPTIONS]                 run the NDJSON-over-TCP scheduling daemon
  tcms client <addr> <request>         talk to a running daemon
  tcms stats <addr>                    render a daemon's live statistics
  tcms help                            this text

Inputs may be structural (.dfg) or behavioral (`process p time=9 { y := a*b + c; }`).

SCHEDULE OPTIONS:
  --all-global <ρ>        share every multi-user type globally, period ρ
  --global <TYPE=ρ>       share one type globally over all its users
  --gantt                 print ASCII Gantt charts per block
  --verify <N>            check N randomized grid-aligned executions
  --save <file.sched>     write the schedule to disk
  --degrade               on failure, retry through the degradation ladder
                          (relax periods, demote groups, widen time, rc fallback)
  --partition <K|auto>    decompose into K subgraphs (or one per ~250 ops with
                          `auto`) scheduled in parallel with feedback-frozen
                          cross-partition profiles; `--partition 1` is
                          bit-identical to a monolithic run. Designs with 500+
                          operations partition automatically; results are
                          re-verified against the full spec and bypass the cache
  --threads <N>           worker threads for candidate-force evaluation
                          (0 = auto; also via the TCMS_THREADS env var);
                          results are bit-identical at every thread count
  --cache-dir <DIR>       persistent content-addressed result cache:
                          isomorphic designs re-use earlier schedules

SIMULATE OPTIONS:
  --all-global / --global as above, plus:
  --horizon <N>           simulated steps (default 5000)
  --seed <N>              workload seed (default 0)
  --mean-gap <N>          mean trigger gap of the random workload (default 50)
  --threads <N>           worker threads as above
  --faults                inject deterministic faults (moderate defaults)
  --fault-seed <N>        seed of the fault stream (default 0)
  --jitter <N>            max trigger delay in steps
  --drop-prob <P>         per-attempt authorization-slot drop probability
  --outage-rate <P>       per-step pool outage probability
  --repair <N>            outage repair time in steps
  --slack <N>             deadline allowance beyond the nominal span

OBSERVABILITY OPTIONS (schedule):
  --trace <file.json>     write a Chrome trace_event file (Perfetto/about:tracing)
  --metrics               print the metrics-registry summary table
  --timeline <file.jsonl> write the JSONL span/event/timeline stream

VHDL OPTIONS: --all-global / --global as above, plus --width <bits>

SERVE OPTIONS:
  --listen <addr>         listen address (default 127.0.0.1:7733; :0 = any port)
  --workers <N>           job worker threads (default auto)
  --queue <N>             bounded job-queue capacity (default 256)
  --cache-capacity <N>    result-cache entries (default 1024; 0 disables)
  --cache-dir <DIR>       load/save the cache snapshot across restarts
  --deadline-ms <N>       default per-job deadline
  --auto-partition-ops <N>
                          route designs with N+ operations through the
                          parallel partitioner (default 500; 0 disables)
  --journal-dir <DIR>     capture an append-only workload journal
                          (JSONL; replayable with the repro_replay bench,
                          checkable with trace_check --journal)
  --journal-rotate-bytes <N>
                          seal and rotate the journal when the live file
                          exceeds N bytes (default 0 = never rotate)
  --threads <N>           scheduler worker threads, as for schedule
  --http <addr>           also serve HTTP/1.1 (POST /schedule, GET /stats,
                          GET /healthz); responses carry the NDJSON line

FLEET OPTIONS (serve; all but --http require --peers):
  --peers <a,b,c>         the fleet's advertised addresses, incl. this node;
                          a consistent-hash ring routes each request to its
                          owner and anti-entropy converges the caches
  --advertise <addr>      this node's address as the peers list it
                          (default: the --listen address)
  --replicas <N>          replica-set size, owner + backups (default 2)
  --route <proxy|local>   non-owner behaviour: forward to the owner (proxy,
                          default) or compute locally and push (local)
  --sync-interval-ms <N>  anti-entropy period (default 2000; 0 disables)

CLIENT REQUESTS:
  tcms client <addr> schedule <design> [schedule opts] [--deadline-ms N]
  tcms client <addr> simulate <design> [simulate opts] [--deadline-ms N]
  tcms client <addr> ping | stats | shutdown
  (`--stats` is accepted as an alias for `stats`; `tcms stats <addr>`
  renders the same data as a summary instead of raw JSON)
  [--timeout-ms N]        bound the connect and each read; without it
                          connects time out after 5 s and reads block
                          (also accepted by `tcms stats`)
  <addr> may be a comma-separated list (typically a fleet's --peers):
  transport failures and `peer-unavailable` answers fail over to the
  next address automatically
";

/// Parses a command line (without the program name).
///
/// # Errors
///
/// Returns a human-readable message for unknown commands, missing
/// arguments and malformed options.
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "dot" => {
            let input = it.next().ok_or("dot needs an input file")?.clone();
            Ok(Command::Dot { input })
        }
        "summary" => {
            let input = it.next().ok_or("summary needs an input file")?.clone();
            Ok(Command::Summary { input })
        }
        "schedule" => {
            let input = it.next().ok_or("schedule needs an input file")?.clone();
            let mut all_global = None;
            let mut globals = Vec::new();
            let mut gantt = false;
            let mut verify = 0usize;
            let mut save = None;
            let mut trace = None;
            let mut metrics = false;
            let mut timeline = None;
            let mut degrade = false;
            let mut partition = None;
            let mut threads = None;
            let mut cache_dir = None;
            while let Some(opt) = it.next() {
                match opt.as_str() {
                    "--gantt" => gantt = true,
                    "--degrade" => degrade = true,
                    "--partition" => {
                        let v = it.next().ok_or("--partition needs a count or `auto`")?;
                        partition = Some(parse_partition(v)?);
                    }
                    "--cache-dir" => {
                        cache_dir = Some(it.next().ok_or("--cache-dir needs a path")?.clone());
                    }
                    "--threads" => {
                        let v = it.next().ok_or("--threads needs a count")?;
                        threads = Some(v.parse().map_err(|_| format!("bad count `{v}`"))?);
                    }
                    "--verify" => {
                        let v = it.next().ok_or("--verify needs a count")?;
                        verify = v.parse().map_err(|_| format!("bad count `{v}`"))?;
                    }
                    "--save" => {
                        save = Some(it.next().ok_or("--save needs a path")?.clone());
                    }
                    "--trace" => {
                        trace = Some(it.next().ok_or("--trace needs a path")?.clone());
                    }
                    "--metrics" => metrics = true,
                    "--timeline" => {
                        timeline = Some(it.next().ok_or("--timeline needs a path")?.clone());
                    }
                    other => parse_spec_option(other, &mut it, &mut all_global, &mut globals)?,
                }
            }
            Ok(Command::Schedule {
                input,
                all_global,
                globals,
                gantt,
                verify,
                save,
                trace,
                metrics,
                timeline,
                degrade,
                partition,
                threads,
                cache_dir,
            })
        }
        "simulate" => {
            let input = it.next().ok_or("simulate needs an input file")?.clone();
            let mut all_global = None;
            let mut globals = Vec::new();
            let mut horizon = 5_000u64;
            let mut seed = 0u64;
            let mut mean_gap = 50u64;
            let mut faults = false;
            let mut threads = None;
            let mut plan = crate::sim::FaultPlan::moderate(0);
            fn num<T: std::str::FromStr>(
                it: &mut std::slice::Iter<'_, String>,
                flag: &str,
            ) -> Result<T, String> {
                let v = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
                v.parse().map_err(|_| format!("bad value `{v}` for {flag}"))
            }
            while let Some(opt) = it.next() {
                match opt.as_str() {
                    "--horizon" => horizon = num(&mut it, "--horizon")?,
                    "--seed" => seed = num(&mut it, "--seed")?,
                    "--mean-gap" => mean_gap = num(&mut it, "--mean-gap")?,
                    "--threads" => threads = Some(num(&mut it, "--threads")?),
                    "--faults" => faults = true,
                    "--fault-seed" => plan.seed = num(&mut it, "--fault-seed")?,
                    "--jitter" => plan.trigger_jitter = num(&mut it, "--jitter")?,
                    "--drop-prob" => plan.drop_slot_prob = num(&mut it, "--drop-prob")?,
                    "--outage-rate" => plan.outage_rate = num(&mut it, "--outage-rate")?,
                    "--repair" => plan.repair_time = num(&mut it, "--repair")?,
                    "--slack" => plan.deadline_slack = num(&mut it, "--slack")?,
                    other => parse_spec_option(other, &mut it, &mut all_global, &mut globals)?,
                }
            }
            if horizon == 0 {
                return Err("--horizon must be positive".to_owned());
            }
            if mean_gap == 0 {
                return Err("--mean-gap must be positive".to_owned());
            }
            for (name, p) in [
                ("--drop-prob", plan.drop_slot_prob),
                ("--outage-rate", plan.outage_rate),
            ] {
                if !(p.is_finite() && (0.0..1.0).contains(&p)) {
                    return Err(format!("{name} must be a probability in [0, 1), got {p}"));
                }
            }
            Ok(Command::Simulate {
                input,
                all_global,
                globals,
                horizon,
                seed,
                mean_gap,
                faults,
                plan,
                threads,
            })
        }
        "check" => {
            let input = it.next().ok_or("check needs a design file")?.clone();
            let sched = it.next().ok_or("check needs a .sched file")?.clone();
            let mut all_global = None;
            let mut globals = Vec::new();
            while let Some(opt) = it.next() {
                parse_spec_option(opt, &mut it, &mut all_global, &mut globals)?;
            }
            Ok(Command::Check {
                input,
                sched,
                all_global,
                globals,
            })
        }
        "vhdl" => {
            let input = it.next().ok_or("vhdl needs an input file")?.clone();
            let mut all_global = None;
            let mut globals = Vec::new();
            let mut width = 16;
            while let Some(opt) = it.next() {
                match opt.as_str() {
                    "--width" => {
                        let v = it.next().ok_or("--width needs a bit count")?;
                        width = v.parse().map_err(|_| format!("bad width `{v}`"))?;
                    }
                    other => parse_spec_option(other, &mut it, &mut all_global, &mut globals)?,
                }
            }
            Ok(Command::Vhdl {
                input,
                all_global,
                globals,
                width,
            })
        }
        "dfg" => {
            let input = it.next().ok_or("dfg needs an input file")?.clone();
            Ok(Command::Dfg { input })
        }
        "serve" => {
            let mut listen = "127.0.0.1:7733".to_owned();
            let mut workers = 0usize;
            let mut queue = 256usize;
            let mut cache_capacity = 1024usize;
            let mut cache_dir = None;
            let mut deadline_ms = None;
            let mut auto_partition_ops = None;
            let mut journal_dir = None;
            let mut journal_rotate_bytes = None;
            let mut threads = None;
            let mut peers: Vec<String> = Vec::new();
            let mut advertise = None;
            let mut http = None;
            let mut route = None;
            let mut sync_interval_ms = None;
            let mut replicas = None;
            fn num<T: std::str::FromStr>(
                it: &mut std::slice::Iter<'_, String>,
                flag: &str,
            ) -> Result<T, String> {
                let v = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
                v.parse().map_err(|_| format!("bad value `{v}` for {flag}"))
            }
            while let Some(opt) = it.next() {
                match opt.as_str() {
                    "--listen" => {
                        listen = it.next().ok_or("--listen needs an address")?.clone();
                    }
                    "--workers" => workers = num(&mut it, "--workers")?,
                    "--queue" => queue = num(&mut it, "--queue")?,
                    "--cache-capacity" => cache_capacity = num(&mut it, "--cache-capacity")?,
                    "--cache-dir" => {
                        cache_dir = Some(it.next().ok_or("--cache-dir needs a path")?.clone());
                    }
                    "--deadline-ms" => deadline_ms = Some(num(&mut it, "--deadline-ms")?),
                    "--auto-partition-ops" => {
                        auto_partition_ops = Some(num(&mut it, "--auto-partition-ops")?);
                    }
                    "--journal-dir" => {
                        journal_dir = Some(it.next().ok_or("--journal-dir needs a path")?.clone());
                    }
                    "--journal-rotate-bytes" => {
                        journal_rotate_bytes = Some(num(&mut it, "--journal-rotate-bytes")?);
                    }
                    "--threads" => threads = Some(num(&mut it, "--threads")?),
                    "--peers" => {
                        let v = it.next().ok_or("--peers needs a comma-separated list")?;
                        peers = v
                            .split(',')
                            .map(str::trim)
                            .filter(|s| !s.is_empty())
                            .map(str::to_owned)
                            .collect();
                        if peers.is_empty() {
                            return Err("--peers needs at least one address".to_owned());
                        }
                    }
                    "--advertise" => {
                        advertise = Some(it.next().ok_or("--advertise needs an address")?.clone());
                    }
                    "--http" => {
                        http = Some(it.next().ok_or("--http needs an address")?.clone());
                    }
                    "--route" => {
                        let v = it.next().ok_or("--route needs proxy|local")?;
                        route = Some(crate::serve::RouteMode::parse(v)?);
                    }
                    "--sync-interval-ms" => {
                        sync_interval_ms = Some(num(&mut it, "--sync-interval-ms")?);
                    }
                    "--replicas" => replicas = Some(num(&mut it, "--replicas")?),
                    other => return Err(format!("unknown option `{other}`")),
                }
            }
            if queue == 0 {
                return Err("--queue must be positive".to_owned());
            }
            if peers.is_empty() {
                for (flag, set) in [
                    ("--advertise", advertise.is_some()),
                    ("--route", route.is_some()),
                    ("--sync-interval-ms", sync_interval_ms.is_some()),
                    ("--replicas", replicas.is_some()),
                ] {
                    if set {
                        return Err(format!("{flag} requires --peers"));
                    }
                }
            }
            Ok(Command::Serve {
                listen,
                workers,
                queue,
                cache_capacity,
                cache_dir,
                deadline_ms,
                auto_partition_ops,
                journal_dir,
                journal_rotate_bytes,
                threads,
                peers,
                advertise,
                http,
                route: route.unwrap_or_default(),
                sync_interval_ms,
                replicas,
            })
        }
        "stats" => {
            let addr = it.next().ok_or("stats needs a daemon address")?.clone();
            let mut timeout_ms = None;
            while let Some(opt) = it.next() {
                match opt.as_str() {
                    "--timeout-ms" => {
                        let v = it.next().ok_or("--timeout-ms needs a value")?;
                        timeout_ms = Some(
                            v.parse()
                                .map_err(|_| format!("bad value `{v}` for --timeout-ms"))?,
                        );
                    }
                    other => return Err(format!("unknown option `{other}`")),
                }
            }
            Ok(Command::Stats { addr, timeout_ms })
        }
        "client" => {
            let addr = it.next().ok_or("client needs a daemon address")?.clone();
            let mut timeout_ms = None;
            fn num<T: std::str::FromStr>(
                it: &mut std::slice::Iter<'_, String>,
                flag: &str,
            ) -> Result<T, String> {
                let v = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
                v.parse().map_err(|_| format!("bad value `{v}` for {flag}"))
            }
            // `--timeout-ms` may come before the request verb…
            let request = loop {
                let word = it.next().ok_or("client needs a request")?.clone();
                if word == "--timeout-ms" {
                    timeout_ms = Some(num(&mut it, "--timeout-ms")?);
                } else {
                    break word;
                }
            };
            let action = match request.as_str() {
                "ping" => ClientCommand::Ping,
                "stats" | "--stats" => ClientCommand::Stats,
                "shutdown" => ClientCommand::Shutdown,
                "schedule" => {
                    let input = it
                        .next()
                        .ok_or("client schedule needs a design file")?
                        .clone();
                    let mut opts = ScheduleOptions::default();
                    let mut deadline_ms = None;
                    while let Some(opt) = it.next() {
                        match opt.as_str() {
                            "--gantt" => opts.gantt = true,
                            "--degrade" => opts.degrade = true,
                            "--partition" => {
                                let v = it.next().ok_or("--partition needs a count or `auto`")?;
                                opts.partition = Some(parse_partition(v)?);
                            }
                            "--verify" => opts.verify = num(&mut it, "--verify")?,
                            "--deadline-ms" => deadline_ms = Some(num(&mut it, "--deadline-ms")?),
                            "--timeout-ms" => timeout_ms = Some(num(&mut it, "--timeout-ms")?),
                            other => parse_spec_option(
                                other,
                                &mut it,
                                &mut opts.all_global,
                                &mut opts.globals,
                            )?,
                        }
                    }
                    ClientCommand::Schedule {
                        input,
                        opts,
                        deadline_ms,
                    }
                }
                "simulate" => {
                    let input = it
                        .next()
                        .ok_or("client simulate needs a design file")?
                        .clone();
                    let mut opts = SimulateOptions::default();
                    let mut deadline_ms = None;
                    while let Some(opt) = it.next() {
                        match opt.as_str() {
                            "--horizon" => opts.horizon = num(&mut it, "--horizon")?,
                            "--seed" => opts.seed = num(&mut it, "--seed")?,
                            "--mean-gap" => opts.mean_gap = num(&mut it, "--mean-gap")?,
                            "--deadline-ms" => deadline_ms = Some(num(&mut it, "--deadline-ms")?),
                            "--timeout-ms" => timeout_ms = Some(num(&mut it, "--timeout-ms")?),
                            other => parse_spec_option(
                                other,
                                &mut it,
                                &mut opts.all_global,
                                &mut opts.globals,
                            )?,
                        }
                    }
                    if opts.horizon == 0 {
                        return Err("--horizon must be positive".to_owned());
                    }
                    if opts.mean_gap == 0 {
                        return Err("--mean-gap must be positive".to_owned());
                    }
                    ClientCommand::Simulate {
                        input,
                        opts,
                        deadline_ms,
                    }
                }
                other => {
                    return Err(format!(
                        "unknown client request `{other}` (schedule, simulate, ping, stats, shutdown)"
                    ));
                }
            };
            // …or after a control verb (schedule/simulate consume their
            // own options above, so anything left here is trailing).
            while let Some(opt) = it.next() {
                match opt.as_str() {
                    "--timeout-ms" => timeout_ms = Some(num(&mut it, "--timeout-ms")?),
                    other => return Err(format!("unknown option `{other}`")),
                }
            }
            Ok(Command::Client {
                addr,
                action,
                timeout_ms,
            })
        }
        other => Err(format!("unknown command `{other}` (try `tcms help`)")),
    }
}

/// Parses the `--partition` value: `auto` or a positive subgraph count.
fn parse_partition(v: &str) -> Result<crate::modulo::PartitionCount, String> {
    if v == "auto" {
        return Ok(crate::modulo::PartitionCount::Auto);
    }
    match v.parse::<usize>() {
        Ok(k) if k > 0 => Ok(crate::modulo::PartitionCount::Fixed(k)),
        _ => Err(format!(
            "bad partition count `{v}` (positive number or `auto`)"
        )),
    }
}

/// Parses one `--all-global`/`--global` option shared by several commands.
fn parse_spec_option(
    opt: &str,
    it: &mut std::slice::Iter<'_, String>,
    all_global: &mut Option<u32>,
    globals: &mut Vec<(String, u32)>,
) -> Result<(), String> {
    match opt {
        "--all-global" => {
            let v = it.next().ok_or("--all-global needs a period")?;
            *all_global = Some(v.parse().map_err(|_| format!("bad period `{v}`"))?);
            Ok(())
        }
        "--global" => {
            let v = it.next().ok_or("--global needs TYPE=PERIOD")?;
            let (name, period) = v
                .split_once('=')
                .ok_or_else(|| format!("bad assignment `{v}`"))?;
            let period: u32 = period.parse().map_err(|_| format!("bad period in `{v}`"))?;
            globals.push((name.to_owned(), period));
            Ok(())
        }
        other => Err(format!("unknown option `{other}`")),
    }
}

/// Loads a system from either input language (delegates to the shared
/// serving pipeline so the daemon and the CLI accept identical inputs).
fn load_system(source: &str) -> Result<System, CliError> {
    pipeline::load_system(source).map_err(serve_to_cli)
}

fn build_spec(
    system: &System,
    all_global: Option<u32>,
    globals: &[(String, u32)],
) -> Result<crate::modulo::SharingSpec, CliError> {
    pipeline::build_spec(system, all_global, globals).map_err(serve_to_cli)
}

/// Executes the `schedule` command on already-loaded source text,
/// returning the rendered report.
///
/// # Errors
///
/// Returns a typed [`CliError`] for parse errors, invalid specs,
/// scheduling failures and failed verification.
pub fn schedule_source(
    source: &str,
    all_global: Option<u32>,
    globals: &[(String, u32)],
    want_gantt: bool,
    verify: usize,
) -> Result<String, CliError> {
    schedule_source_full(
        source,
        &ScheduleOptions {
            all_global,
            globals: globals.to_vec(),
            gantt: want_gantt,
            verify,
            degrade: false,
            partition: None,
        },
        &NoopRecorder,
        None,
    )
    .map(|(s, _, _)| s)
}

/// Runs the shared serving pipeline one-shot: same loader, same
/// scheduler invocation, same renderer as a `tcms serve` daemon — which
/// is what makes daemon responses bit-identical to this command's
/// stdout. With a cache, results are content-addressed by the canonical
/// design hash and configuration fingerprint.
fn schedule_source_full(
    source: &str,
    opts: &ScheduleOptions,
    rec: &dyn Recorder,
    cache: Option<&SchedCache>,
) -> Result<(String, System, crate::fds::Schedule), CliError> {
    let ctx = ExecContext {
        cache,
        rec,
        ..ExecContext::default()
    };
    let arts = pipeline::schedule_request(source, opts, &ctx).map_err(serve_to_cli)?;
    Ok((arts.text, arts.system, arts.schedule))
}

/// Executes a parsed command, reading inputs from disk.
///
/// # Errors
///
/// Returns a typed [`CliError`]; the binary maps it to a stable exit
/// code via [`CliError::exit_code`].
pub fn run(cmd: &Command) -> Result<String, CliError> {
    let read = |path: &str| {
        std::fs::read_to_string(path).map_err(|e| CliError::Io {
            path: path.to_owned(),
            message: e.to_string(),
        })
    };
    match cmd {
        Command::Help => Ok(USAGE.to_owned()),
        Command::Dot { input } => {
            let system = load_system(&read(input)?)?;
            Ok(dot::to_dot(&system))
        }
        Command::Summary { input } => {
            let system = load_system(&read(input)?)?;
            Ok(format!("{}\n", display::summary(&system)))
        }
        Command::Schedule {
            input,
            all_global,
            globals,
            gantt,
            verify,
            save,
            trace,
            metrics,
            timeline,
            degrade,
            partition,
            threads,
            cache_dir,
        } => {
            if let Some(n) = threads {
                crate::fds::threads::set(*n);
            }
            let recording = trace.is_some() || *metrics || timeline.is_some();
            let recorder = if recording {
                Some(TraceRecorder::new())
            } else {
                None
            };
            let rec: &dyn Recorder = match &recorder {
                Some(r) => r,
                None => &NoopRecorder,
            };
            // With --cache-dir, warm the content-addressed cache from
            // disk and persist it (including this run's result) after.
            let cache = cache_dir
                .as_deref()
                .map(|dir| {
                    let cache = SchedCache::new(1024, 8);
                    persist::load_snapshot(Path::new(dir), &cache).map_err(|e| CliError::Io {
                        path: dir.to_owned(),
                        message: e.to_string(),
                    })?;
                    Ok::<_, CliError>(cache)
                })
                .transpose()?;
            let opts = ScheduleOptions {
                all_global: *all_global,
                globals: globals.clone(),
                gantt: *gantt,
                verify: *verify,
                degrade: *degrade,
                partition: *partition,
            };
            let (mut out, system, schedule) =
                schedule_source_full(&read(input)?, &opts, rec, cache.as_ref())?;
            if let (Some(cache), Some(dir)) = (&cache, cache_dir.as_deref()) {
                persist::save_snapshot(Path::new(dir), &cache.entries()).map_err(|e| {
                    CliError::Io {
                        path: dir.to_owned(),
                        message: e.to_string(),
                    }
                })?;
            }
            let write = |path: &str, text: String| {
                std::fs::write(path, text).map_err(|e| CliError::Io {
                    path: path.to_owned(),
                    message: e.to_string(),
                })
            };
            if let Some(path) = save {
                write(path, crate::fds::schedule_io::to_sched(&system, &schedule))?;
                out.push_str(&format!("schedule saved to {path}\n"));
            }
            if let Some(recorder) = recorder {
                let data = recorder.finish();
                if let Some(path) = trace {
                    write(path, sink::to_chrome_trace(&data))?;
                    out.push_str(&format!("chrome trace written to {path}\n"));
                }
                if let Some(path) = timeline {
                    write(path, sink::to_jsonl(&data))?;
                    out.push_str(&format!("timeline written to {path}\n"));
                }
                if *metrics {
                    out.push('\n');
                    out.push_str(&data.metrics.render_summary());
                }
            }
            Ok(out)
        }
        Command::Simulate {
            input,
            all_global,
            globals,
            horizon,
            seed,
            mean_gap,
            faults,
            plan,
            threads,
        } => {
            if let Some(n) = threads {
                crate::fds::threads::set(*n);
            }
            let system = load_system(&read(input)?)?;
            let spec = build_spec(&system, *all_global, globals)?;
            let outcome = ModuloScheduler::new(&system, spec.clone())?.run()?;
            outcome
                .schedule
                .verify(&system)
                .map_err(|e| CliError::Verify(e.to_string()))?;
            let sim = crate::sim::Simulator::new(&system, &spec, &outcome.schedule);
            let workloads = vec![
                crate::sim::Trigger::Random {
                    mean_gap: *mean_gap
                };
                system.num_processes()
            ];
            let config = crate::sim::SimConfig {
                horizon: *horizon,
                seed: *seed,
            };
            let (result, metrics) = if *faults {
                let (r, m) = sim.run_with_faults(&workloads, &config, plan);
                (r, Some(m))
            } else {
                (sim.run(&workloads, &config), None)
            };
            let mut out = pipeline::render_simulation(
                &system, &spec, &sim, &result, *horizon, *seed, *mean_gap,
            );
            if let Some(m) = metrics {
                let _ = writeln!(
                    out,
                    "fault injection (seed {}): jitter<={} drop-prob={} outage-rate={} \
                     repair={} slack={}",
                    plan.seed,
                    plan.trigger_jitter,
                    plan.drop_slot_prob,
                    plan.outage_rate,
                    plan.repair_time,
                    plan.deadline_slack
                );
                let _ = writeln!(out, "  jitter injected:          {}", m.jitter_injected);
                let _ = writeln!(out, "  dropped slots:            {}", m.dropped_slots);
                let _ = writeln!(
                    out,
                    "  outages:                  {} ({} instance-steps)",
                    m.outages, m.outage_instance_steps
                );
                let _ = writeln!(
                    out,
                    "  authorization violations: {}",
                    m.authorization_violations
                );
                let _ = writeln!(out, "  missed deadlines:         {}", m.missed_deadlines);
                let _ = writeln!(out, "  time to drain:            {}", m.time_to_drain);
            }
            Ok(out)
        }
        Command::Check {
            input,
            sched,
            all_global,
            globals,
        } => {
            let system = load_system(&read(input)?)?;
            let spec = build_spec(&system, *all_global, globals)?;
            let schedule = crate::fds::schedule_io::from_sched(&system, &read(sched)?)
                .map_err(|e| CliError::Malformed(e.to_string()))?;
            schedule
                .verify(&system)
                .map_err(|e| CliError::Verify(e.to_string()))?;
            let report = crate::modulo::compute_report(&system, &spec, &schedule);
            for seed in 0..10 {
                let acts = random_activations(&system, &spec, &schedule, 3, seed);
                check_execution(&system, &spec, &schedule, &report, &acts)
                    .map_err(|e| CliError::Verify(e.to_string()))?;
            }
            Ok(format!(
                "schedule valid: precedence, deadlines and 10 randomized executions pass; total area {}\n",
                report.total_area()
            ))
        }
        Command::Vhdl {
            input,
            all_global,
            globals,
            width,
        } => {
            let system = load_system(&read(input)?)?;
            let spec = build_spec(&system, *all_global, globals)?;
            let outcome = ModuloScheduler::new(&system, spec.clone())?.run()?;
            let binding = crate::alloc::bind_system(&system, &spec, &outcome.schedule)
                .map_err(|e| CliError::Backend(e.to_string()))?;
            let registers = crate::alloc::allocate_registers(&system, &outcome.schedule);
            crate::alloc::emit_vhdl(
                &system,
                &spec,
                &outcome.schedule,
                &binding,
                &registers,
                &crate::alloc::RtlOptions {
                    width: *width,
                    entity: "tcms_top".into(),
                },
            )
            .map_err(|e| CliError::Backend(e.to_string()))
        }
        Command::Dfg { input } => {
            let system = load_system(&read(input)?)?;
            Ok(display::to_dfg(&system))
        }
        Command::Serve {
            listen,
            workers,
            queue,
            cache_capacity,
            cache_dir,
            deadline_ms,
            auto_partition_ops,
            journal_dir,
            journal_rotate_bytes,
            threads,
            peers,
            advertise,
            http,
            route,
            sync_interval_ms,
            replicas,
        } => {
            if let Some(n) = threads {
                crate::fds::threads::set(*n);
            }
            let fleet = (!peers.is_empty()).then(|| {
                let self_addr = advertise.clone().unwrap_or_else(|| listen.clone());
                let mut fleet = crate::serve::FleetConfig::new(self_addr, peers.clone());
                fleet.route = *route;
                if let Some(n) = replicas {
                    fleet.replicas = *n;
                }
                if let Some(ms) = sync_interval_ms {
                    fleet.sync_interval = (*ms > 0).then(|| std::time::Duration::from_millis(*ms));
                }
                fleet
            });
            let config = ServeConfig {
                listen: listen.clone(),
                workers: *workers,
                queue_capacity: *queue,
                cache_capacity: *cache_capacity,
                cache_shards: 8,
                cache_dir: cache_dir.as_deref().map(std::path::PathBuf::from),
                default_deadline_ms: *deadline_ms,
                auto_partition_ops: auto_partition_ops
                    .unwrap_or(crate::serve::DEFAULT_AUTO_PARTITION_OPS),
                journal_dir: journal_dir.as_deref().map(std::path::PathBuf::from),
                journal_rotate_bytes: journal_rotate_bytes.unwrap_or(0),
                fleet,
                http_listen: http.clone(),
                ..ServeConfig::default()
            };
            let server = Server::start(config).map_err(|e| CliError::Io {
                path: listen.clone(),
                message: e.to_string(),
            })?;
            // Announce the bound address immediately (":0" resolves to a
            // real port) so harnesses can connect, then block until a
            // client's shutdown request drains the daemon.
            println!("tcms-serve listening on {}", server.local_addr());
            if let Some(http_addr) = server.local_http_addr() {
                println!("tcms-serve http on {http_addr}");
            }
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
            server.wait().map_err(|e| CliError::Io {
                path: listen.clone(),
                message: e.to_string(),
            })?;
            Ok("tcms-serve shut down\n".to_owned())
        }
        Command::Client {
            addr,
            action,
            timeout_ms,
        } => {
            let line = match action {
                ClientCommand::Schedule {
                    input,
                    opts,
                    deadline_ms,
                } => crate::serve::client::schedule_request_line(
                    "cli",
                    &read(input)?,
                    opts,
                    *deadline_ms,
                ),
                ClientCommand::Simulate {
                    input,
                    opts,
                    deadline_ms,
                } => crate::serve::client::simulate_request_line(
                    "cli",
                    &read(input)?,
                    opts,
                    *deadline_ms,
                ),
                ClientCommand::Ping => crate::serve::client::control_request_line("cli", "ping"),
                ClientCommand::Stats => crate::serve::client::control_request_line("cli", "stats"),
                ClientCommand::Shutdown => {
                    crate::serve::client::control_request_line("cli", "shutdown")
                }
            };
            let response = daemon_request(addr, &line, *timeout_ms)?;
            if let Some((class, code, message)) = response.error {
                return Err(CliError::Service {
                    class,
                    code,
                    message,
                });
            }
            match response.output() {
                // schedule/simulate responses carry the report verbatim.
                Some(output) => Ok(output.to_owned()),
                // Control responses print as their JSON body.
                None => Ok(format!("{}\n", crate::obs::json::to_string(&response.body))),
            }
        }
        Command::Stats { addr, timeout_ms } => {
            let line = crate::serve::client::control_request_line("cli", "stats");
            let response = daemon_request(addr, &line, *timeout_ms)?;
            if let Some((class, code, message)) = response.error {
                return Err(CliError::Service {
                    class,
                    code,
                    message,
                });
            }
            let body = response.body.as_object().ok_or_else(|| CliError::Service {
                class: "bad-request".into(),
                code: 2,
                message: "stats response body is not an object".into(),
            })?;
            Ok(crate::serve::render_stats(body))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| (*s).to_owned()).collect()
    }

    const SAMPLE: &str = "
resource add delay=1 area=1
resource mul delay=2 area=4 pipelined
process A
block body time=8
op m0 mul
op a0 add
edge m0 a0
process B
block body time=8
op m0 mul
op a0 add
edge m0 a0
";

    #[test]
    fn parse_help_variants() {
        assert_eq!(parse_args(&args(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse_args(&args(&["--help"])).unwrap(), Command::Help);
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
    }

    #[test]
    fn parse_schedule_options() {
        let cmd = parse_args(&args(&[
            "schedule",
            "x.dfg",
            "--all-global",
            "4",
            "--global",
            "mul=2",
            "--gantt",
            "--verify",
            "7",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Schedule {
                input: "x.dfg".into(),
                all_global: Some(4),
                globals: vec![("mul".into(), 2)],
                gantt: true,
                verify: 7,
                save: None,
                trace: None,
                metrics: false,
                timeline: None,
                degrade: false,
                partition: None,
                threads: None,
                cache_dir: None,
            }
        );
    }

    #[test]
    fn parse_threads_option() {
        let cmd = parse_args(&args(&["schedule", "x.dfg", "--threads", "4"])).unwrap();
        match cmd {
            Command::Schedule { threads, .. } => assert_eq!(threads, Some(4)),
            other => panic!("unexpected command {other:?}"),
        }
        let cmd = parse_args(&args(&["simulate", "x.dfg", "--threads", "2"])).unwrap();
        match cmd {
            Command::Simulate { threads, .. } => assert_eq!(threads, Some(2)),
            other => panic!("unexpected command {other:?}"),
        }
        assert!(parse_args(&args(&["schedule", "x.dfg", "--threads"])).is_err());
        assert!(parse_args(&args(&["schedule", "x.dfg", "--threads", "many"])).is_err());
    }

    #[test]
    fn parse_partition_option() {
        use crate::modulo::PartitionCount;
        let cmd = parse_args(&args(&["schedule", "x.dfg", "--partition", "auto"])).unwrap();
        match cmd {
            Command::Schedule { partition, .. } => {
                assert_eq!(partition, Some(PartitionCount::Auto));
            }
            other => panic!("unexpected command {other:?}"),
        }
        let cmd = parse_args(&args(&["schedule", "x.dfg", "--partition", "4"])).unwrap();
        match cmd {
            Command::Schedule { partition, .. } => {
                assert_eq!(partition, Some(PartitionCount::Fixed(4)));
            }
            other => panic!("unexpected command {other:?}"),
        }
        // The client subcommand accepts the same flag.
        let cmd = parse_args(&args(&[
            "client",
            "127.0.0.1:1",
            "schedule",
            "x.dfg",
            "--partition",
            "2",
        ]))
        .unwrap();
        match cmd {
            Command::Client {
                action: ClientCommand::Schedule { opts, .. },
                ..
            } => assert_eq!(opts.partition, Some(PartitionCount::Fixed(2))),
            other => panic!("unexpected command {other:?}"),
        }
        assert!(parse_args(&args(&["schedule", "x.dfg", "--partition"])).is_err());
        assert!(parse_args(&args(&["schedule", "x.dfg", "--partition", "0"])).is_err());
        assert!(parse_args(&args(&["schedule", "x.dfg", "--partition", "soon"])).is_err());
    }

    #[test]
    fn parse_simulate_options() {
        let cmd = parse_args(&args(&[
            "simulate",
            "x.dfg",
            "--all-global",
            "5",
            "--horizon",
            "2000",
            "--faults",
            "--drop-prob",
            "0.1",
            "--repair",
            "40",
        ]))
        .unwrap();
        match cmd {
            Command::Simulate {
                horizon,
                faults,
                plan,
                all_global,
                ..
            } => {
                assert_eq!(horizon, 2000);
                assert_eq!(all_global, Some(5));
                assert!(faults);
                assert!((plan.drop_slot_prob - 0.1).abs() < 1e-12);
                assert_eq!(plan.repair_time, 40);
            }
            other => panic!("unexpected command {other:?}"),
        }
    }

    #[test]
    fn parse_simulate_rejects_degenerate_values() {
        assert!(parse_args(&args(&["simulate", "x.dfg", "--drop-prob", "1.5"])).is_err());
        assert!(parse_args(&args(&["simulate", "x.dfg", "--horizon", "0"])).is_err());
        assert!(parse_args(&args(&["simulate", "x.dfg", "--mean-gap", "0"])).is_err());
        assert!(parse_args(&args(&["simulate", "x.dfg", "--outage-rate", "nan"])).is_err());
    }

    #[test]
    fn parse_observability_options() {
        let cmd = parse_args(&args(&[
            "schedule",
            "x.dfg",
            "--trace",
            "t.json",
            "--metrics",
            "--timeline",
            "tl.jsonl",
        ]))
        .unwrap();
        match cmd {
            Command::Schedule {
                trace,
                metrics,
                timeline,
                ..
            } => {
                assert_eq!(trace.as_deref(), Some("t.json"));
                assert!(metrics);
                assert_eq!(timeline.as_deref(), Some("tl.jsonl"));
            }
            other => panic!("unexpected command {other:?}"),
        }
        assert!(parse_args(&args(&["schedule", "x", "--trace"])).is_err());
        assert!(parse_args(&args(&["schedule", "x", "--timeline"])).is_err());
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(parse_args(&args(&["frob"])).is_err());
        assert!(parse_args(&args(&["schedule"])).is_err());
        assert!(parse_args(&args(&["schedule", "x", "--global", "mul"])).is_err());
        assert!(parse_args(&args(&["schedule", "x", "--all-global", "x"])).is_err());
        assert!(parse_args(&args(&["schedule", "x", "--bogus"])).is_err());
    }

    #[test]
    fn schedule_source_local_and_global() {
        let local = schedule_source(SAMPLE, None, &[], false, 0).unwrap();
        assert!(local.contains("mul        2 instances"), "{local}");
        let global = schedule_source(SAMPLE, None, &[("mul".into(), 2)], false, 3).unwrap();
        assert!(global.contains("shared pool 1"), "{global}");
        assert!(global.contains("conflict-free"));
    }

    #[test]
    fn schedule_source_gantt() {
        let out = schedule_source(SAMPLE, Some(2), &[], true, 0).unwrap();
        assert!(out.contains("A :: body"));
        assert!(out.contains("B :: body"));
    }

    #[test]
    fn schedule_source_reports_unknown_type() {
        let err = schedule_source(SAMPLE, None, &[("div".into(), 2)], false, 0).unwrap_err();
        assert!(err.to_string().contains("unknown resource type"));
        assert_eq!(err.exit_code(), 5);
    }

    #[test]
    fn malformed_source_is_typed() {
        let err = schedule_source("resource add delay=zero", None, &[], false, 0).unwrap_err();
        assert!(matches!(err, CliError::Malformed(_)), "{err:?}");
        assert_eq!(err.exit_code(), 4);
    }

    #[test]
    fn exit_codes_are_stable_and_distinct() {
        use crate::modulo::CoreError;
        let errors = [
            CliError::Usage("u".into()),
            CliError::Io {
                path: "p".into(),
                message: "m".into(),
            },
            CliError::Malformed("m".into()),
            CliError::Spec("s".into()),
            CliError::Schedule(ScheduleError::Infeasible {
                block: "P::b".into(),
                slack: -5,
                binding_resource: "mul".into(),
            }),
            CliError::Schedule(ScheduleError::PeriodGridOverflow {
                process: "P".into(),
            }),
            CliError::Verify("v".into()),
            CliError::Backend("b".into()),
        ];
        let codes: Vec<u8> = errors.iter().map(CliError::exit_code).collect();
        assert_eq!(codes, vec![2, 3, 4, 5, 6, 8, 9, 10]);
        for e in &errors {
            assert!(!e.to_string().is_empty());
            assert_ne!(e.exit_code(), 0, "failures must not exit 0");
        }
        // A wrapped spec error shares the spec class.
        let wrapped = CliError::Schedule(ScheduleError::Spec(CoreError::GroupTooSmall {
            rtype: "mul".into(),
        }));
        assert_eq!(wrapped.exit_code(), 5);
    }

    #[test]
    fn every_core_error_variant_round_trips_to_an_exit_code() {
        use crate::modulo::CoreError;
        // One constructor per CoreError variant: each must display
        // something, convert into a CliError via ScheduleError, and land
        // on its documented exit code (5 for spec problems, 8 for the
        // promoted period-grid overflow).
        let variants: Vec<(CoreError, u8)> = vec![
            (
                CoreError::GroupTooSmall {
                    rtype: "mul".into(),
                },
                5,
            ),
            (
                CoreError::ProcessDoesNotUseType {
                    rtype: "mul".into(),
                    process: "P1".into(),
                },
                5,
            ),
            (
                CoreError::DuplicateProcessInGroup {
                    rtype: "mul".into(),
                    process: "P1".into(),
                },
                5,
            ),
            (
                CoreError::MissingPeriod {
                    rtype: "mul".into(),
                },
                5,
            ),
            (
                CoreError::ZeroPeriod {
                    rtype: "mul".into(),
                },
                5,
            ),
            (
                CoreError::ResourceInfeasible {
                    block: "body".into(),
                    time_range: 15,
                },
                5,
            ),
            (
                CoreError::ZeroInstances {
                    rtype: "mul".into(),
                },
                5,
            ),
            (
                CoreError::PeriodGridOverflow {
                    process: "P1".into(),
                },
                8,
            ),
        ];
        for (core, expected) in variants {
            let display = core.to_string();
            assert!(!display.is_empty());
            let cli: CliError = core.into();
            assert_eq!(cli.exit_code(), expected, "{cli}");
            assert!(!cli.to_string().is_empty());
        }
        // The ScheduleError variants not derived from CoreError.
        let verification = CliError::Schedule(ScheduleError::VerificationFailed {
            detail: "pool overflow at t=3".into(),
        });
        assert_eq!(verification.exit_code(), 9);
        assert!(verification.to_string().contains("re-verification"));
    }

    #[test]
    fn dfg_with_assignment_in_comment_stays_structural() {
        let src = format!("# note: y := a+b comes later\n{SAMPLE}");
        let out = schedule_source(&src, None, &[], false, 0).unwrap();
        assert!(out.contains("2 processes"), "{out}");
    }

    #[test]
    fn behavioral_sources_detected_and_scheduled() {
        let src = "
process a time=8 { y := p * q + r; }
process b time=8 { z := p * q; }
";
        let out = schedule_source(src, Some(4), &[], false, 2).unwrap();
        assert!(out.contains("shared pool 1"), "{out}");
        assert!(out.contains("conflict-free"));
    }

    #[test]
    fn run_reads_missing_file_gracefully() {
        let err = run(&Command::Summary {
            input: "/nonexistent/x.dfg".into(),
        })
        .unwrap_err();
        assert!(err.to_string().contains("cannot access"));
        assert_eq!(err.exit_code(), 3);
    }

    #[test]
    fn run_help() {
        assert!(run(&Command::Help).unwrap().contains("USAGE"));
    }

    #[test]
    fn parse_new_commands() {
        let v = parse_args(&args(&[
            "vhdl",
            "x.dfg",
            "--all-global",
            "3",
            "--width",
            "8",
        ]))
        .unwrap();
        assert_eq!(
            v,
            Command::Vhdl {
                input: "x.dfg".into(),
                all_global: Some(3),
                globals: vec![],
                width: 8,
            }
        );
        let c = parse_args(&args(&["check", "x.dfg", "x.sched", "--global", "mul=2"])).unwrap();
        assert!(matches!(c, Command::Check { .. }));
        assert!(parse_args(&args(&["check", "x.dfg"])).is_err());
        assert!(matches!(
            parse_args(&args(&["dfg", "x.hls"])).unwrap(),
            Command::Dfg { .. }
        ));
    }

    #[test]
    fn schedule_save_then_check_round_trip() {
        let dir = std::env::temp_dir().join("tcms_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let design = dir.join("d.dfg");
        let sched = dir.join("d.sched");
        std::fs::write(&design, SAMPLE).unwrap();
        let out = run(&Command::Schedule {
            input: design.to_string_lossy().into_owned(),
            all_global: Some(2),
            globals: vec![],
            gantt: false,
            verify: 0,
            save: Some(sched.to_string_lossy().into_owned()),
            trace: None,
            metrics: false,
            timeline: None,
            degrade: false,
            partition: None,
            threads: None,
            cache_dir: None,
        })
        .unwrap();
        assert!(out.contains("schedule saved"));
        let check = run(&Command::Check {
            input: design.to_string_lossy().into_owned(),
            sched: sched.to_string_lossy().into_owned(),
            all_global: Some(2),
            globals: vec![],
        })
        .unwrap();
        assert!(check.contains("schedule valid"), "{check}");
    }

    #[test]
    fn schedule_with_observability_writes_valid_sinks() {
        let dir = std::env::temp_dir().join("tcms_cli_test_obs");
        std::fs::create_dir_all(&dir).unwrap();
        let design = dir.join("d.dfg");
        let trace = dir.join("d.trace.json");
        let timeline = dir.join("d.timeline.jsonl");
        std::fs::write(&design, SAMPLE).unwrap();
        let out = run(&Command::Schedule {
            input: design.to_string_lossy().into_owned(),
            all_global: Some(2),
            globals: vec![],
            gantt: false,
            verify: 0,
            save: None,
            trace: Some(trace.to_string_lossy().into_owned()),
            metrics: true,
            timeline: Some(timeline.to_string_lossy().into_owned()),
            degrade: false,
            partition: None,
            threads: None,
            cache_dir: None,
        })
        .unwrap();
        assert!(out.contains("chrome trace written"), "{out}");
        assert!(out.contains("timeline written"), "{out}");
        assert!(out.contains("ifds.iterations"), "{out}");
        let chrome = std::fs::read_to_string(&trace).unwrap();
        assert!(sink::validate_chrome_trace(&chrome).unwrap() > 0);
        let jsonl = std::fs::read_to_string(&timeline).unwrap();
        assert!(sink::validate_jsonl(&jsonl).unwrap() > 0);
    }

    #[test]
    fn vhdl_command_emits_entity() {
        let dir = std::env::temp_dir().join("tcms_cli_test_vhdl");
        std::fs::create_dir_all(&dir).unwrap();
        let design = dir.join("d.dfg");
        std::fs::write(&design, SAMPLE).unwrap();
        let out = run(&Command::Vhdl {
            input: design.to_string_lossy().into_owned(),
            all_global: Some(2),
            globals: vec![],
            width: 8,
        })
        .unwrap();
        assert!(out.contains("entity tcms_top is"));
        assert!(out.contains("unsigned(7 downto 0)"));
    }

    #[test]
    fn dfg_command_converts_behavioral() {
        let dir = std::env::temp_dir().join("tcms_cli_test_dfg");
        std::fs::create_dir_all(&dir).unwrap();
        let design = dir.join("d.hls");
        std::fs::write(&design, "process p time=9 { y := a*b + c; }").unwrap();
        let out = run(&Command::Dfg {
            input: design.to_string_lossy().into_owned(),
        })
        .unwrap();
        assert!(out.contains("process p"));
        assert!(out.contains("op mul1 mul"));
        assert!(out.contains("edge mul1 add2"));
    }

    #[test]
    fn parse_serve_options() {
        let cmd = parse_args(&args(&[
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--workers",
            "3",
            "--queue",
            "32",
            "--cache-capacity",
            "64",
            "--cache-dir",
            "/tmp/c",
            "--deadline-ms",
            "500",
            "--journal-dir",
            "/tmp/j",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                listen: "127.0.0.1:0".into(),
                workers: 3,
                queue: 32,
                cache_capacity: 64,
                cache_dir: Some("/tmp/c".into()),
                deadline_ms: Some(500),
                auto_partition_ops: None,
                journal_dir: Some("/tmp/j".into()),
                journal_rotate_bytes: None,
                threads: None,
                peers: Vec::new(),
                advertise: None,
                http: None,
                route: crate::serve::RouteMode::Proxy,
                sync_interval_ms: None,
                replicas: None,
            }
        );
        assert!(parse_args(&args(&["serve", "--queue", "0"])).is_err());
        assert!(parse_args(&args(&["serve", "--bogus"])).is_err());
        assert!(parse_args(&args(&["serve", "--journal-dir"])).is_err());
        assert!(matches!(
            parse_args(&args(&["serve", "--auto-partition-ops", "0"])).unwrap(),
            Command::Serve {
                auto_partition_ops: Some(0),
                ..
            }
        ));
        assert!(parse_args(&args(&["serve", "--auto-partition-ops", "x"])).is_err());
        assert!(matches!(
            parse_args(&args(&["serve", "--journal-rotate-bytes", "65536"])).unwrap(),
            Command::Serve {
                journal_rotate_bytes: Some(65536),
                ..
            }
        ));
        assert!(parse_args(&args(&["serve", "--journal-rotate-bytes", "x"])).is_err());
    }

    #[test]
    fn parse_serve_fleet_options() {
        let cmd = parse_args(&args(&[
            "serve",
            "--listen",
            "10.0.0.1:7733",
            "--peers",
            "10.0.0.1:7733, 10.0.0.2:7733,10.0.0.3:7733",
            "--advertise",
            "10.0.0.1:7733",
            "--http",
            "0.0.0.0:8080",
            "--route",
            "local",
            "--sync-interval-ms",
            "500",
            "--replicas",
            "3",
        ]))
        .unwrap();
        match cmd {
            Command::Serve {
                peers,
                advertise,
                http,
                route,
                sync_interval_ms,
                replicas,
                ..
            } => {
                // Whitespace around the commas is forgiven.
                assert_eq!(
                    peers,
                    vec!["10.0.0.1:7733", "10.0.0.2:7733", "10.0.0.3:7733"]
                );
                assert_eq!(advertise.as_deref(), Some("10.0.0.1:7733"));
                assert_eq!(http.as_deref(), Some("0.0.0.0:8080"));
                assert_eq!(route, crate::serve::RouteMode::Local);
                assert_eq!(sync_interval_ms, Some(500));
                assert_eq!(replicas, Some(3));
            }
            other => panic!("unexpected command {other:?}"),
        }
        // `--http` stands alone; every other fleet flag needs `--peers`.
        assert!(parse_args(&args(&["serve", "--http", "0.0.0.0:8080"])).is_ok());
        for flags in [
            &["serve", "--advertise", "a:1"][..],
            &["serve", "--route", "proxy"],
            &["serve", "--sync-interval-ms", "100"],
            &["serve", "--replicas", "2"],
        ] {
            assert!(parse_args(&args(flags)).is_err(), "{flags:?}");
        }
        assert!(parse_args(&args(&["serve", "--peers", " , "])).is_err());
        assert!(parse_args(&args(&["serve", "--peers", "a:1", "--route", "x"])).is_err());
    }

    #[test]
    fn parse_stats_subcommand() {
        assert_eq!(
            parse_args(&args(&["stats", "127.0.0.1:7733"])).unwrap(),
            Command::Stats {
                addr: "127.0.0.1:7733".into(),
                timeout_ms: None,
            }
        );
        assert_eq!(
            parse_args(&args(&["stats", "a:1", "--timeout-ms", "750"])).unwrap(),
            Command::Stats {
                addr: "a:1".into(),
                timeout_ms: Some(750),
            }
        );
        assert!(parse_args(&args(&["stats"])).is_err());
        assert!(parse_args(&args(&["stats", "a:1", "--timeout-ms"])).is_err());
        assert!(parse_args(&args(&["stats", "a:1", "--bogus"])).is_err());
    }

    #[test]
    fn parse_client_requests() {
        let cmd = parse_args(&args(&[
            "client",
            "127.0.0.1:7733",
            "schedule",
            "x.dfg",
            "--all-global",
            "4",
            "--verify",
            "2",
            "--deadline-ms",
            "250",
        ]))
        .unwrap();
        match cmd {
            Command::Client { addr, action, .. } => {
                assert_eq!(addr, "127.0.0.1:7733");
                match action {
                    ClientCommand::Schedule {
                        input,
                        opts,
                        deadline_ms,
                    } => {
                        assert_eq!(input, "x.dfg");
                        assert_eq!(opts.all_global, Some(4));
                        assert_eq!(opts.verify, 2);
                        assert_eq!(deadline_ms, Some(250));
                    }
                    other => panic!("unexpected action {other:?}"),
                }
            }
            other => panic!("unexpected command {other:?}"),
        }
        for request in ["ping", "stats", "shutdown"] {
            assert!(matches!(
                parse_args(&args(&["client", "a:1", request])).unwrap(),
                Command::Client { .. }
            ));
        }
        // `--stats` is a flag-spelled alias for the `stats` request.
        assert!(matches!(
            parse_args(&args(&["client", "a:1", "--stats"])).unwrap(),
            Command::Client {
                action: ClientCommand::Stats,
                ..
            }
        ));
        assert!(parse_args(&args(&["client", "a:1", "frob"])).is_err());
        assert!(parse_args(&args(&["client", "a:1"])).is_err());
        assert!(parse_args(&args(&["client", "a:1", "simulate", "x", "--horizon", "0"])).is_err());
        // `--timeout-ms` is accepted before the request verb, after a
        // control verb, and among schedule/simulate options.
        for argv in [
            vec!["client", "a:1", "--timeout-ms", "250", "ping"],
            vec!["client", "a:1", "ping", "--timeout-ms", "250"],
            vec![
                "client",
                "a:1",
                "schedule",
                "x.dfg",
                "--all-global",
                "4",
                "--timeout-ms",
                "250",
            ],
        ] {
            assert!(matches!(
                parse_args(&args(&argv)).unwrap(),
                Command::Client {
                    timeout_ms: Some(250),
                    ..
                }
            ));
        }
        assert!(parse_args(&args(&["client", "a:1", "ping", "--timeout-ms"])).is_err());
        assert!(parse_args(&args(&["client", "a:1", "ping", "--bogus"])).is_err());
    }

    #[test]
    fn service_errors_map_to_exit_codes() {
        // Remote scheduling classes keep their one-shot exit codes.
        let remote = CliError::Service {
            class: "infeasible".into(),
            code: 6,
            message: "m".into(),
        };
        assert_eq!(remote.exit_code(), 6);
        // Service-only classes fold to the dedicated code 11.
        for code in [429u16, 408, 413, 503] {
            let e = CliError::Service {
                class: "overloaded".into(),
                code,
                message: "m".into(),
            };
            assert_eq!(e.exit_code(), 11);
            assert!(e.to_string().contains("service error"));
        }
        // A daemon-internal failure (worker panic, wire 500) gets its
        // own exit code so operators can distinguish "the daemon
        // crashed on this job" from ordinary service pushback.
        let internal = serve_to_cli(ServeError::Internal("scheduler panicked".into()));
        assert_eq!(internal.exit_code(), 12);
        assert!(internal.to_string().contains("internal/500"));
        let too_large = serve_to_cli(ServeError::TooLarge { limit: 1024 });
        assert_eq!(too_large.exit_code(), 11);
        assert!(too_large.to_string().contains("too-large/413"));
        // An unknown-action rejection (wire code 404) is pinned to the
        // same fold: a version-skewed daemon exits 11, never something
        // that collides with a scheduling failure.
        let skew = serve_to_cli(ServeError::UnknownAction("frobnicate".into()));
        assert_eq!(skew.exit_code(), 11);
        assert!(skew.to_string().contains("unknown-action/404"));
    }

    #[test]
    fn schedule_cache_dir_round_trip_is_bit_identical() {
        let dir = std::env::temp_dir().join(format!("tcms_cli_cache_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let design = dir.join("d.dfg");
        std::fs::write(&design, SAMPLE).unwrap();
        let cmd = |cache: bool| Command::Schedule {
            input: design.to_string_lossy().into_owned(),
            all_global: Some(2),
            globals: vec![],
            gantt: false,
            verify: 1,
            save: None,
            trace: None,
            metrics: false,
            timeline: None,
            degrade: false,
            partition: None,
            threads: None,
            cache_dir: cache.then(|| dir.join("cache").to_string_lossy().into_owned()),
        };
        let plain = run(&cmd(false)).unwrap();
        let miss = run(&cmd(true)).unwrap();
        let hit = run(&cmd(true)).unwrap();
        assert_eq!(plain, miss, "cache miss output matches cache-less run");
        assert_eq!(plain, hit, "cache hit output matches cache-less run");
        assert!(
            crate::serve::persist::snapshot_path(&dir.join("cache")).exists(),
            "snapshot persisted"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
