//! Command-line interface of the `tcms` binary.
//!
//! ```text
//! tcms schedule <design> [--all-global ρ] [--global TYPE=ρ]... [--gantt] [--verify N]
//! tcms dot <design>
//! tcms summary <design>
//! ```
//!
//! `<design>` is either a structural `.dfg` file or a behavioral source
//! (detected by the `:=` assignment operator; compiled with
//! [`crate::ir::frontend`] against the paper's add/sub/mul library).
//!
//! The parsing and execution live here (and are unit tested); the binary
//! in `src/bin/tcms.rs` only wires stdin/stdout.

use std::fmt::Write as _;

use crate::fds::gantt;
use crate::ir::generators::paper_library;
use crate::ir::{display, dot, frontend, parse, System};
use crate::modulo::{check_execution, random_activations, ModuloScheduler, SharingSpec};
use crate::obs::{sink, NoopRecorder, Recorder, TraceRecorder};

/// A parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Schedule a design and print the report.
    Schedule {
        /// Path of the `.dfg` input.
        input: String,
        /// Uniform period for all shareable types (from `--all-global`).
        all_global: Option<u32>,
        /// Per-type `TYPE=PERIOD` global assignments (from `--global`).
        globals: Vec<(String, u32)>,
        /// Print ASCII Gantt charts (from `--gantt`).
        gantt: bool,
        /// Number of randomized execution checks (from `--verify N`).
        verify: usize,
        /// Write the schedule in `.sched` format to this path
        /// (from `--save`).
        save: Option<String>,
        /// Write a Chrome `trace_event` JSON file to this path
        /// (from `--trace`; open with Perfetto / about:tracing).
        trace: Option<String>,
        /// Print the metrics-registry summary table (from `--metrics`).
        metrics: bool,
        /// Write the JSONL event/timeline stream to this path
        /// (from `--timeline`).
        timeline: Option<String>,
    },
    /// Re-check a saved `.sched` file against a design.
    Check {
        /// Path of the design input.
        input: String,
        /// Path of the `.sched` file.
        sched: String,
        /// Uniform period for all shareable types.
        all_global: Option<u32>,
        /// Per-type global assignments.
        globals: Vec<(String, u32)>,
    },
    /// Emit structural VHDL for a scheduled design.
    Vhdl {
        /// Path of the design input.
        input: String,
        /// Uniform period for all shareable types.
        all_global: Option<u32>,
        /// Per-type global assignments.
        globals: Vec<(String, u32)>,
        /// Data-path width in bits.
        width: u32,
    },
    /// Convert a (behavioral) design to the structural `.dfg` format.
    Dfg {
        /// Path of the design input.
        input: String,
    },
    /// Print the Graphviz rendering of a design.
    Dot {
        /// Path of the `.dfg` input.
        input: String,
    },
    /// Print a one-line summary of a design.
    Summary {
        /// Path of the `.dfg` input.
        input: String,
    },
    /// Print usage information.
    Help,
}

/// Usage text printed by `tcms help`.
pub const USAGE: &str = "\
tcms — time-constrained modulo scheduling with global resource sharing

USAGE:
  tcms schedule <design> [OPTIONS]     schedule and report resources/area
  tcms check <design> <file.sched>     re-verify a saved schedule
  tcms vhdl <design> [OPTIONS]         schedule and emit structural VHDL
  tcms dfg <design>                    convert behavioral input to .dfg
  tcms dot <design>                    emit Graphviz
  tcms summary <design>                one-line design summary
  tcms help                            this text

Inputs may be structural (.dfg) or behavioral (`process p time=9 { y := a*b + c; }`).

SCHEDULE OPTIONS:
  --all-global <ρ>        share every multi-user type globally, period ρ
  --global <TYPE=ρ>       share one type globally over all its users
  --gantt                 print ASCII Gantt charts per block
  --verify <N>            check N randomized grid-aligned executions
  --save <file.sched>     write the schedule to disk

OBSERVABILITY OPTIONS (schedule):
  --trace <file.json>     write a Chrome trace_event file (Perfetto/about:tracing)
  --metrics               print the metrics-registry summary table
  --timeline <file.jsonl> write the JSONL span/event/timeline stream

VHDL OPTIONS: --all-global / --global as above, plus --width <bits>
";

/// Parses a command line (without the program name).
///
/// # Errors
///
/// Returns a human-readable message for unknown commands, missing
/// arguments and malformed options.
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "dot" => {
            let input = it.next().ok_or("dot needs an input file")?.clone();
            Ok(Command::Dot { input })
        }
        "summary" => {
            let input = it.next().ok_or("summary needs an input file")?.clone();
            Ok(Command::Summary { input })
        }
        "schedule" => {
            let input = it.next().ok_or("schedule needs an input file")?.clone();
            let mut all_global = None;
            let mut globals = Vec::new();
            let mut gantt = false;
            let mut verify = 0usize;
            let mut save = None;
            let mut trace = None;
            let mut metrics = false;
            let mut timeline = None;
            while let Some(opt) = it.next() {
                match opt.as_str() {
                    "--gantt" => gantt = true,
                    "--verify" => {
                        let v = it.next().ok_or("--verify needs a count")?;
                        verify = v.parse().map_err(|_| format!("bad count `{v}`"))?;
                    }
                    "--save" => {
                        save = Some(it.next().ok_or("--save needs a path")?.clone());
                    }
                    "--trace" => {
                        trace = Some(it.next().ok_or("--trace needs a path")?.clone());
                    }
                    "--metrics" => metrics = true,
                    "--timeline" => {
                        timeline = Some(it.next().ok_or("--timeline needs a path")?.clone());
                    }
                    other => parse_spec_option(other, &mut it, &mut all_global, &mut globals)?,
                }
            }
            Ok(Command::Schedule {
                input,
                all_global,
                globals,
                gantt,
                verify,
                save,
                trace,
                metrics,
                timeline,
            })
        }
        "check" => {
            let input = it.next().ok_or("check needs a design file")?.clone();
            let sched = it.next().ok_or("check needs a .sched file")?.clone();
            let mut all_global = None;
            let mut globals = Vec::new();
            while let Some(opt) = it.next() {
                parse_spec_option(opt, &mut it, &mut all_global, &mut globals)?;
            }
            Ok(Command::Check {
                input,
                sched,
                all_global,
                globals,
            })
        }
        "vhdl" => {
            let input = it.next().ok_or("vhdl needs an input file")?.clone();
            let mut all_global = None;
            let mut globals = Vec::new();
            let mut width = 16;
            while let Some(opt) = it.next() {
                match opt.as_str() {
                    "--width" => {
                        let v = it.next().ok_or("--width needs a bit count")?;
                        width = v.parse().map_err(|_| format!("bad width `{v}`"))?;
                    }
                    other => parse_spec_option(other, &mut it, &mut all_global, &mut globals)?,
                }
            }
            Ok(Command::Vhdl {
                input,
                all_global,
                globals,
                width,
            })
        }
        "dfg" => {
            let input = it.next().ok_or("dfg needs an input file")?.clone();
            Ok(Command::Dfg { input })
        }
        other => Err(format!("unknown command `{other}` (try `tcms help`)")),
    }
}

/// Parses one `--all-global`/`--global` option shared by several commands.
fn parse_spec_option(
    opt: &str,
    it: &mut std::slice::Iter<'_, String>,
    all_global: &mut Option<u32>,
    globals: &mut Vec<(String, u32)>,
) -> Result<(), String> {
    match opt {
        "--all-global" => {
            let v = it.next().ok_or("--all-global needs a period")?;
            *all_global = Some(v.parse().map_err(|_| format!("bad period `{v}`"))?);
            Ok(())
        }
        "--global" => {
            let v = it.next().ok_or("--global needs TYPE=PERIOD")?;
            let (name, period) = v
                .split_once('=')
                .ok_or_else(|| format!("bad assignment `{v}`"))?;
            let period: u32 = period.parse().map_err(|_| format!("bad period in `{v}`"))?;
            globals.push((name.to_owned(), period));
            Ok(())
        }
        other => Err(format!("unknown option `{other}`")),
    }
}

/// Loads a system from either input language. A file whose first
/// non-comment keyword is `resource` is structural `.dfg` (so a `:=`
/// inside a comment cannot misroute it); otherwise the presence of `:=`
/// selects the behavioral compiler.
fn load_system(source: &str) -> Result<System, String> {
    let first_keyword = source
        .lines()
        .map(|l| l.split('#').next().unwrap_or("").trim())
        .find(|l| !l.is_empty())
        .and_then(|l| l.split_whitespace().next())
        .unwrap_or("");
    let behavioral = first_keyword != "resource" && source.contains(":=");
    if behavioral {
        let (lib, _) = paper_library();
        frontend::compile(source, lib).map_err(|e| e.to_string())
    } else {
        parse::parse_system(source).map_err(|e| e.to_string())
    }
}

fn build_spec(
    system: &System,
    all_global: Option<u32>,
    globals: &[(String, u32)],
) -> Result<SharingSpec, String> {
    let mut spec = match all_global {
        Some(period) => SharingSpec::all_global(system, period),
        None => SharingSpec::all_local(system),
    };
    for (name, period) in globals {
        let k = system
            .library()
            .by_name(name)
            .ok_or_else(|| format!("unknown resource type `{name}`"))?;
        spec.set_global(k, system.users_of_type(k), *period);
    }
    spec.validate(system).map_err(|e| e.to_string())?;
    Ok(spec)
}

/// Executes the `schedule` command on already-loaded source text,
/// returning the rendered report.
///
/// # Errors
///
/// Returns a message for parse errors, invalid specs and failed
/// verification.
pub fn schedule_source(
    source: &str,
    all_global: Option<u32>,
    globals: &[(String, u32)],
    want_gantt: bool,
    verify: usize,
) -> Result<String, String> {
    schedule_source_full(
        source,
        all_global,
        globals,
        want_gantt,
        verify,
        &NoopRecorder,
    )
    .map(|(s, _, _)| s)
}

fn schedule_source_full(
    source: &str,
    all_global: Option<u32>,
    globals: &[(String, u32)],
    want_gantt: bool,
    verify: usize,
    rec: &dyn Recorder,
) -> Result<(String, System, crate::fds::Schedule), String> {
    let system = load_system(source)?;
    let spec = build_spec(&system, all_global, globals)?;
    let outcome = ModuloScheduler::new(&system, spec.clone())
        .map_err(|e| e.to_string())?
        .run_recorded(rec);
    outcome
        .schedule
        .verify(&system)
        .map_err(|e| e.to_string())?;
    let report = outcome.report();

    let mut out = String::new();
    let _ = writeln!(out, "{}", display::summary(&system));
    let _ = writeln!(out, "iterations: {}", outcome.iterations);
    for (k, rt) in system.library().iter() {
        let tr = report.of_type(k);
        let _ = write!(out, "{:<8} {:>3} instances", rt.name(), tr.instances());
        if let Some(auth) = &tr.authorization {
            let _ = write!(
                out,
                "  (shared pool {}, period {}",
                auth.pool(),
                auth.period()
            );
            let locals: u32 = tr.local_counts.iter().map(|&(_, c)| c).sum();
            if locals > 0 {
                let _ = write!(out, ", +{locals} local");
            }
            let _ = write!(out, ")");
        }
        out.push('\n');
    }
    let _ = writeln!(out, "total area: {}", report.total_area());

    if verify > 0 {
        for seed in 0..verify as u64 {
            let acts = random_activations(&system, &spec, &outcome.schedule, 3, seed);
            check_execution(&system, &spec, &outcome.schedule, &report, &acts)
                .map_err(|e| e.to_string())?;
        }
        let _ = writeln!(
            out,
            "verified {verify} randomized grid-aligned executions: conflict-free"
        );
    }
    if want_gantt {
        let _ = writeln!(
            out,
            "\n{}",
            gantt::render_system(&system, &outcome.schedule)
        );
    }
    let schedule = outcome.schedule.clone();
    Ok((out, system, schedule))
}

/// Executes a parsed command, reading inputs from disk.
///
/// # Errors
///
/// Returns a human-readable message on any failure.
pub fn run(cmd: &Command) -> Result<String, String> {
    let read = |path: &str| {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
    };
    match cmd {
        Command::Help => Ok(USAGE.to_owned()),
        Command::Dot { input } => {
            let system = load_system(&read(input)?)?;
            Ok(dot::to_dot(&system))
        }
        Command::Summary { input } => {
            let system = load_system(&read(input)?)?;
            Ok(format!("{}\n", display::summary(&system)))
        }
        Command::Schedule {
            input,
            all_global,
            globals,
            gantt,
            verify,
            save,
            trace,
            metrics,
            timeline,
        } => {
            let recording = trace.is_some() || *metrics || timeline.is_some();
            let recorder = if recording {
                Some(TraceRecorder::new())
            } else {
                None
            };
            let rec: &dyn Recorder = match &recorder {
                Some(r) => r,
                None => &NoopRecorder,
            };
            let (mut out, system, schedule) =
                schedule_source_full(&read(input)?, *all_global, globals, *gantt, *verify, rec)?;
            if let Some(path) = save {
                let text = crate::fds::schedule_io::to_sched(&system, &schedule);
                std::fs::write(path, text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
                out.push_str(&format!("schedule saved to {path}\n"));
            }
            if let Some(recorder) = recorder {
                let data = recorder.finish();
                if let Some(path) = trace {
                    std::fs::write(path, sink::to_chrome_trace(&data))
                        .map_err(|e| format!("cannot write `{path}`: {e}"))?;
                    out.push_str(&format!("chrome trace written to {path}\n"));
                }
                if let Some(path) = timeline {
                    std::fs::write(path, sink::to_jsonl(&data))
                        .map_err(|e| format!("cannot write `{path}`: {e}"))?;
                    out.push_str(&format!("timeline written to {path}\n"));
                }
                if *metrics {
                    out.push('\n');
                    out.push_str(&data.metrics.render_summary());
                }
            }
            Ok(out)
        }
        Command::Check {
            input,
            sched,
            all_global,
            globals,
        } => {
            let system = load_system(&read(input)?)?;
            let spec = build_spec(&system, *all_global, globals)?;
            let schedule = crate::fds::schedule_io::from_sched(&system, &read(sched)?)
                .map_err(|e| e.to_string())?;
            schedule.verify(&system).map_err(|e| e.to_string())?;
            let report = crate::modulo::compute_report(&system, &spec, &schedule);
            for seed in 0..10 {
                let acts = random_activations(&system, &spec, &schedule, 3, seed);
                check_execution(&system, &spec, &schedule, &report, &acts)
                    .map_err(|e| e.to_string())?;
            }
            Ok(format!(
                "schedule valid: precedence, deadlines and 10 randomized executions pass; total area {}\n",
                report.total_area()
            ))
        }
        Command::Vhdl {
            input,
            all_global,
            globals,
            width,
        } => {
            let system = load_system(&read(input)?)?;
            let spec = build_spec(&system, *all_global, globals)?;
            let outcome = ModuloScheduler::new(&system, spec.clone())
                .map_err(|e| e.to_string())?
                .run();
            let binding = crate::alloc::bind_system(&system, &spec, &outcome.schedule)
                .map_err(|e| e.to_string())?;
            let registers = crate::alloc::allocate_registers(&system, &outcome.schedule);
            crate::alloc::emit_vhdl(
                &system,
                &spec,
                &outcome.schedule,
                &binding,
                &registers,
                &crate::alloc::RtlOptions {
                    width: *width,
                    entity: "tcms_top".into(),
                },
            )
            .map_err(|e| e.to_string())
        }
        Command::Dfg { input } => {
            let system = load_system(&read(input)?)?;
            Ok(display::to_dfg(&system))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| (*s).to_owned()).collect()
    }

    const SAMPLE: &str = "
resource add delay=1 area=1
resource mul delay=2 area=4 pipelined
process A
block body time=8
op m0 mul
op a0 add
edge m0 a0
process B
block body time=8
op m0 mul
op a0 add
edge m0 a0
";

    #[test]
    fn parse_help_variants() {
        assert_eq!(parse_args(&args(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse_args(&args(&["--help"])).unwrap(), Command::Help);
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
    }

    #[test]
    fn parse_schedule_options() {
        let cmd = parse_args(&args(&[
            "schedule",
            "x.dfg",
            "--all-global",
            "4",
            "--global",
            "mul=2",
            "--gantt",
            "--verify",
            "7",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Schedule {
                input: "x.dfg".into(),
                all_global: Some(4),
                globals: vec![("mul".into(), 2)],
                gantt: true,
                verify: 7,
                save: None,
                trace: None,
                metrics: false,
                timeline: None,
            }
        );
    }

    #[test]
    fn parse_observability_options() {
        let cmd = parse_args(&args(&[
            "schedule",
            "x.dfg",
            "--trace",
            "t.json",
            "--metrics",
            "--timeline",
            "tl.jsonl",
        ]))
        .unwrap();
        match cmd {
            Command::Schedule {
                trace,
                metrics,
                timeline,
                ..
            } => {
                assert_eq!(trace.as_deref(), Some("t.json"));
                assert!(metrics);
                assert_eq!(timeline.as_deref(), Some("tl.jsonl"));
            }
            other => panic!("unexpected command {other:?}"),
        }
        assert!(parse_args(&args(&["schedule", "x", "--trace"])).is_err());
        assert!(parse_args(&args(&["schedule", "x", "--timeline"])).is_err());
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(parse_args(&args(&["frob"])).is_err());
        assert!(parse_args(&args(&["schedule"])).is_err());
        assert!(parse_args(&args(&["schedule", "x", "--global", "mul"])).is_err());
        assert!(parse_args(&args(&["schedule", "x", "--all-global", "x"])).is_err());
        assert!(parse_args(&args(&["schedule", "x", "--bogus"])).is_err());
    }

    #[test]
    fn schedule_source_local_and_global() {
        let local = schedule_source(SAMPLE, None, &[], false, 0).unwrap();
        assert!(local.contains("mul        2 instances"), "{local}");
        let global = schedule_source(SAMPLE, None, &[("mul".into(), 2)], false, 3).unwrap();
        assert!(global.contains("shared pool 1"), "{global}");
        assert!(global.contains("conflict-free"));
    }

    #[test]
    fn schedule_source_gantt() {
        let out = schedule_source(SAMPLE, Some(2), &[], true, 0).unwrap();
        assert!(out.contains("A :: body"));
        assert!(out.contains("B :: body"));
    }

    #[test]
    fn schedule_source_reports_unknown_type() {
        let err = schedule_source(SAMPLE, None, &[("div".into(), 2)], false, 0).unwrap_err();
        assert!(err.contains("unknown resource type"));
    }

    #[test]
    fn dfg_with_assignment_in_comment_stays_structural() {
        let src = format!("# note: y := a+b comes later\n{SAMPLE}");
        let out = schedule_source(&src, None, &[], false, 0).unwrap();
        assert!(out.contains("2 processes"), "{out}");
    }

    #[test]
    fn behavioral_sources_detected_and_scheduled() {
        let src = "
process a time=8 { y := p * q + r; }
process b time=8 { z := p * q; }
";
        let out = schedule_source(src, Some(4), &[], false, 2).unwrap();
        assert!(out.contains("shared pool 1"), "{out}");
        assert!(out.contains("conflict-free"));
    }

    #[test]
    fn run_reads_missing_file_gracefully() {
        let err = run(&Command::Summary {
            input: "/nonexistent/x.dfg".into(),
        })
        .unwrap_err();
        assert!(err.contains("cannot read"));
    }

    #[test]
    fn run_help() {
        assert!(run(&Command::Help).unwrap().contains("USAGE"));
    }

    #[test]
    fn parse_new_commands() {
        let v = parse_args(&args(&[
            "vhdl",
            "x.dfg",
            "--all-global",
            "3",
            "--width",
            "8",
        ]))
        .unwrap();
        assert_eq!(
            v,
            Command::Vhdl {
                input: "x.dfg".into(),
                all_global: Some(3),
                globals: vec![],
                width: 8,
            }
        );
        let c = parse_args(&args(&["check", "x.dfg", "x.sched", "--global", "mul=2"])).unwrap();
        assert!(matches!(c, Command::Check { .. }));
        assert!(parse_args(&args(&["check", "x.dfg"])).is_err());
        assert!(matches!(
            parse_args(&args(&["dfg", "x.hls"])).unwrap(),
            Command::Dfg { .. }
        ));
    }

    #[test]
    fn schedule_save_then_check_round_trip() {
        let dir = std::env::temp_dir().join("tcms_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let design = dir.join("d.dfg");
        let sched = dir.join("d.sched");
        std::fs::write(&design, SAMPLE).unwrap();
        let out = run(&Command::Schedule {
            input: design.to_string_lossy().into_owned(),
            all_global: Some(2),
            globals: vec![],
            gantt: false,
            verify: 0,
            save: Some(sched.to_string_lossy().into_owned()),
            trace: None,
            metrics: false,
            timeline: None,
        })
        .unwrap();
        assert!(out.contains("schedule saved"));
        let check = run(&Command::Check {
            input: design.to_string_lossy().into_owned(),
            sched: sched.to_string_lossy().into_owned(),
            all_global: Some(2),
            globals: vec![],
        })
        .unwrap();
        assert!(check.contains("schedule valid"), "{check}");
    }

    #[test]
    fn schedule_with_observability_writes_valid_sinks() {
        let dir = std::env::temp_dir().join("tcms_cli_test_obs");
        std::fs::create_dir_all(&dir).unwrap();
        let design = dir.join("d.dfg");
        let trace = dir.join("d.trace.json");
        let timeline = dir.join("d.timeline.jsonl");
        std::fs::write(&design, SAMPLE).unwrap();
        let out = run(&Command::Schedule {
            input: design.to_string_lossy().into_owned(),
            all_global: Some(2),
            globals: vec![],
            gantt: false,
            verify: 0,
            save: None,
            trace: Some(trace.to_string_lossy().into_owned()),
            metrics: true,
            timeline: Some(timeline.to_string_lossy().into_owned()),
        })
        .unwrap();
        assert!(out.contains("chrome trace written"), "{out}");
        assert!(out.contains("timeline written"), "{out}");
        assert!(out.contains("ifds.iterations"), "{out}");
        let chrome = std::fs::read_to_string(&trace).unwrap();
        assert!(sink::validate_chrome_trace(&chrome).unwrap() > 0);
        let jsonl = std::fs::read_to_string(&timeline).unwrap();
        assert!(sink::validate_jsonl(&jsonl).unwrap() > 0);
    }

    #[test]
    fn vhdl_command_emits_entity() {
        let dir = std::env::temp_dir().join("tcms_cli_test_vhdl");
        std::fs::create_dir_all(&dir).unwrap();
        let design = dir.join("d.dfg");
        std::fs::write(&design, SAMPLE).unwrap();
        let out = run(&Command::Vhdl {
            input: design.to_string_lossy().into_owned(),
            all_global: Some(2),
            globals: vec![],
            width: 8,
        })
        .unwrap();
        assert!(out.contains("entity tcms_top is"));
        assert!(out.contains("unsigned(7 downto 0)"));
    }

    #[test]
    fn dfg_command_converts_behavioral() {
        let dir = std::env::temp_dir().join("tcms_cli_test_dfg");
        std::fs::create_dir_all(&dir).unwrap();
        let design = dir.join("d.hls");
        std::fs::write(&design, "process p time=9 { y := a*b + c; }").unwrap();
        let out = run(&Command::Dfg {
            input: design.to_string_lossy().into_owned(),
        })
        .unwrap();
        assert!(out.contains("process p"));
        assert!(out.contains("op mul1 mul"));
        assert!(out.contains("edge mul1 add2"));
    }
}
