//! Quickstart: build a tiny two-process system by hand, share one
//! multiplier between both processes with a period of 3, and inspect the
//! result.
//!
//! Run with `cargo run --example quickstart`.

use tcms::ir::{ResourceLibrary, ResourceType, SystemBuilder};
use tcms::modulo::{ModuloScheduler, SharingSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the operator library: what the hardware can do.
    let mut lib = ResourceLibrary::new();
    let add = lib.add(ResourceType::new("add", 1).with_area(1))?;
    let mul = lib.add(ResourceType::new("mul", 2).pipelined().with_area(4))?;

    // 2. Describe two independent, reactive processes. Each block is a
    //    small data-flow graph with a time budget.
    let mut builder = SystemBuilder::new(lib);

    let p0 = builder.add_process("sensor_filter");
    let b0 = builder.add_block(p0, "body", 9)?;
    let x0 = builder.add_op(b0, "scale", mul)?;
    let x1 = builder.add_op(b0, "bias", add)?;
    let x2 = builder.add_op_with_preds(b0, "mix", add, &[x0, x1])?;
    let _ = builder.add_op_with_preds(b0, "gain", mul, &[x2])?;

    let p1 = builder.add_process("actuator_loop");
    let b1 = builder.add_block(p1, "body", 12)?;
    let y0 = builder.add_op(b1, "err", add)?;
    let y1 = builder.add_op_with_preds(b1, "prop", mul, &[y0])?;
    let y2 = builder.add_op_with_preds(b1, "integ", mul, &[y0])?;
    let _ = builder.add_op_with_preds(b1, "sum", add, &[y1, y2])?;

    let system = builder.build()?;
    println!("{}", tcms::ir::display::summary(&system));

    // 3. Share the expensive multiplier across both processes (period 3);
    //    the adder stays local.
    let mut spec = SharingSpec::all_local(&system);
    spec.set_global(mul, vec![p0, p1], 3);

    let outcome = ModuloScheduler::new(&system, spec)?.run()?;
    outcome.schedule.verify(&system)?;

    // 4. Inspect: start times, the authorization table, the area.
    for (bid, block) in system.blocks() {
        println!(
            "\n{}::{}",
            system.process(block.process()).name(),
            block.name()
        );
        for &o in block.ops() {
            println!(
                "  {:<6} @ step {}",
                system.op(o).name(),
                outcome.schedule.expect_start(o)
            );
        }
        let _ = bid;
    }

    let report = outcome.report();
    let auth = report
        .of_type(mul)
        .authorization
        .as_ref()
        .expect("mul is global");
    println!(
        "\nshared multipliers: {} (period {})",
        auth.pool(),
        auth.period()
    );
    for (p, grants) in auth.grants() {
        println!(
            "  {:<14} grants per slot: {:?}",
            system.process(*p).name(),
            grants
        );
    }
    println!("total area: {}", report.total_area());

    // Traditional scheduling would need one multiplier per process.
    assert!(auth.pool() < 2, "sharing beats one-per-process");
    Ok(())
}
