//! Sharing infrastructure resources: a system bus and a single-port
//! memory, modelled as resource types like any functional unit — "the
//! considered resources range from simple adders, memories or busses to
//! more complex functions" (paper §1.1).
//!
//! Three DMA-style channel processes each do load → process → store. The
//! memory port and the bus are globally shared with period 3; the modulo
//! scheduler staggers the channels' accesses so ONE port and ONE bus serve
//! all three reactive channels.
//!
//! Run with `cargo run --release --example shared_bus`.

use tcms::fds::gantt;
use tcms::ir::{ResourceLibrary, ResourceType, SystemBuilder};
use tcms::modulo::{ModuloScheduler, SharingSpec};
use tcms::sim::{SimConfig, Simulator, Trigger};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut lib = ResourceLibrary::new();
    // A (synchronous) memory access occupies the port for one cycle; the
    // bus transfers in 1; the ALU computes in 1.
    let mem = lib.add(ResourceType::new("mem_port", 1).with_area(6))?;
    let bus = lib.add(ResourceType::new("bus", 1).with_area(3))?;
    let alu = lib.add(ResourceType::new("alu", 1).with_area(1))?;

    let mut b = SystemBuilder::new(lib);
    let mut procs = Vec::new();
    for name in ["chan0", "chan1", "chan2"] {
        let p = b.add_process(name);
        let blk = b.add_block(p, "xfer", 12)?;
        let load = b.add_op(blk, "load", mem)?;
        let to_alu = b.add_op_with_preds(blk, "rd_bus", bus, &[load])?;
        let compute = b.add_op_with_preds(blk, "compute", alu, &[to_alu])?;
        let wr_bus = b.add_op_with_preds(blk, "wr_bus", bus, &[compute])?;
        let _store = b.add_op_with_preds(blk, "store", mem, &[wr_bus])?;
        procs.push(p);
    }
    let system = b.build()?;

    let mut spec = SharingSpec::all_local(&system);
    spec.set_global(mem, procs.clone(), 3);
    spec.set_global(bus, procs.clone(), 3);

    let outcome = ModuloScheduler::new(&system, spec.clone())?.run()?;
    outcome.schedule.verify(&system)?;
    let report = outcome.report();

    println!("{}", tcms::ir::display::summary(&system));
    println!(
        "\nshared memory ports: {}   shared buses: {}   (3 channels, local flow: 3+3)",
        report.instances(mem),
        report.instances(bus)
    );
    println!("total area: {}\n", report.total_area());
    print!("{}", gantt::render_system(&system, &outcome.schedule));

    // Drive the channels with independent random DMA requests.
    let sim = Simulator::new(&system, &spec, &outcome.schedule);
    let workloads = vec![Trigger::Random { mean_gap: 25 }; 3];
    let result = sim.run(
        &workloads,
        &SimConfig {
            horizon: 3_000,
            seed: 11,
        },
    );
    assert!(result.conflicts.is_empty());
    println!(
        "\n{} transfers simulated, zero port/bus conflicts, port utilization {:.0}%",
        result.activations,
        100.0 * result.utilization[mem.index()]
    );

    // Staggered slots let a single port and bus serve all three channels
    // (a dedicated-per-channel flow would need three of each).
    assert!(report.instances(mem) <= 2);
    assert!(report.instances(bus) <= 2);
    Ok(())
}
