//! Design-space exploration: the §3.2 period trade-off, the exhaustive
//! period enumeration of the paper's implementation, the pruned search of
//! its future-work section, and automatic scope selection.
//!
//! Run with `cargo run --release --example period_exploration`.

use tcms::fds::FdsConfig;
use tcms::ir::generators::paper_system;
use tcms::modulo::explore::{auto_assign, pruned_best_period_assignment, sweep_uniform_periods};
use tcms::modulo::SharingSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (system, types) = paper_system()?;
    let config = FdsConfig::default();

    println!("uniform period sweep (global +,-,* over their users):");
    println!("period  add  sub  mul  area");
    for p in sweep_uniform_periods(&system, [1, 2, 3, 5, 10, 15], &config)? {
        println!(
            "{:>6}  {:>3}  {:>3}  {:>3}  {:>4}",
            p.period,
            p.report.instances(types.add),
            p.report.instances(types.sub),
            p.report.instances(types.mul),
            p.report.total_area()
        );
    }

    // Pruned search over non-uniform period assignments (future work item
    // "find the optimal periods without a complete enumeration"). The
    // candidate space is capped via the multiplier only to keep the
    // example fast.
    let mut base = SharingSpec::all_local(&system);
    base.set_global(types.mul, system.users_of_type(types.mul), 5);
    if let Some((spec, report, evaluated)) = pruned_best_period_assignment(&system, &base, &config)?
    {
        println!(
            "\npruned period search over the multiplier: best period {} -> area {} ({} schedules evaluated)",
            spec.period(types.mul).expect("mul global"),
            report.total_area(),
            evaluated
        );
    }

    // Automatic scope selection (the other future-work item).
    let (spec, report) = auto_assign(&system, 5, &config)?;
    println!("\nautomatic scope selection at period 5:");
    for (k, rt) in system.library().iter() {
        println!(
            "  {:<4} -> {}",
            rt.name(),
            if spec.is_global(k) { "global" } else { "local" }
        );
    }
    println!("  area {}", report.total_area());
    Ok(())
}
