//! From schedule to structure: bind the paper system's schedule to
//! functional-unit instances, allocate registers, estimate multiplexers
//! and emit a datapath netlist plus one controller — answering the
//! paper's open question about interconnect overhead.
//!
//! Run with `cargo run --release --example datapath_synthesis`.

use tcms::alloc::{
    allocate_registers, bind_system, build_controller, build_datapath, full_area_report,
};
use tcms::ir::generators::paper_system;
use tcms::modulo::{ModuloScheduler, SharingSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (system, _types) = paper_system()?;

    let mut totals = Vec::new();
    for (label, spec) in [
        ("global", SharingSpec::all_global(&system, 5)),
        ("local", SharingSpec::all_local(&system)),
    ] {
        let outcome = ModuloScheduler::new(&system, spec.clone())?.run()?;
        let binding = bind_system(&system, &spec, &outcome.schedule)?;
        let registers = allocate_registers(&system, &outcome.schedule);
        let datapath = build_datapath(&system, &spec, &outcome.schedule, &binding, &registers);
        let area = full_area_report(&system, &spec, &outcome.schedule, &binding);
        println!(
            "{label:>6}: {} FUs, {} registers, {} muxes | FU area {} + reg {:.1} + mux {:.1} = {:.1}",
            datapath.num_fus(),
            datapath.num_registers(),
            datapath.num_muxes(),
            area.fu_area,
            area.register_area,
            area.mux_area,
            area.total()
        );
        totals.push(area.total());

        if label == "global" {
            println!("\nshared-pool datapath:\n{}", datapath.render(&system));
            let p4_block = system
                .process(system.process_by_name("P4").expect("paper process"))
                .blocks()[0];
            let controller =
                build_controller(&system, p4_block, &outcome.schedule, &binding, &registers);
            println!("{}", controller.render(&system));
        }
    }
    println!(
        "sharing keeps winning with interconnect priced in: {:.1} vs {:.1}",
        totals[0], totals[1]
    );
    assert!(totals[0] < totals[1]);
    Ok(())
}
