//! Reactive execution: the scheduled paper system driven by spontaneous
//! (random), periodic and bursty triggers. The resource monitor proves
//! that the static periodic authorization replaces a runtime executive —
//! no shared pool is ever overdrawn, whatever the environment does.
//!
//! Run with `cargo run --release --example reactive_simulation`.

use tcms::ir::generators::paper_system;
use tcms::modulo::{ModuloScheduler, SharingSpec};
use tcms::sim::{trace, SimConfig, Simulator, Trigger};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (system, types) = paper_system()?;
    let spec = SharingSpec::all_global(&system, 5);
    let outcome = ModuloScheduler::new(&system, spec.clone())?.run()?;
    let sim = Simulator::new(&system, &spec, &outcome.schedule);

    // A mixed environment: two sporadic filters, one periodic filter, one
    // bursty and one sporadic solver.
    let workloads = vec![
        Trigger::Random { mean_gap: 60 },
        Trigger::Random { mean_gap: 45 },
        Trigger::Periodic {
            interval: 75,
            offset: 10,
        },
        Trigger::Burst {
            count: 3,
            gap_within: 2,
            gap_between: 150,
        },
        Trigger::Random { mean_gap: 30 },
    ];
    let result = sim.run(
        &workloads,
        &SimConfig {
            horizon: 5_000,
            seed: 2026,
        },
    );

    println!("first events:");
    print!("{}", trace::render_events(&system, &result.events, 15));

    println!("\ncompleted activations: {}", result.activations);
    println!(
        "mean wait (queue + grid alignment): {:.1} steps",
        result.mean_wait
    );
    println!(
        "mean trigger-to-completion latency: {:.1} steps",
        result.mean_latency
    );
    for (k, rt) in system.library().iter() {
        if spec.is_global(k) {
            println!(
                "{:<4}: peak {} of {} shared, utilization {:.1}%",
                rt.name(),
                result.peak_usage[k.index()],
                sim.report().instances(k),
                100.0 * result.utilization[k.index()]
            );
        }
    }

    assert!(result.conflicts.is_empty(), "static authorization suffices");
    println!("\nno conflicts over 5000 steps — the access control needs no runtime executive");

    let _ = types;
    Ok(())
}
