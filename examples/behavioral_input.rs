//! Writing the paper's workloads as equations: the behavioral frontend
//! compiles arithmetic assignments into data-flow blocks, which then go
//! through the full modulo-scheduling flow.
//!
//! Run with `cargo run --release --example behavioral_input`.

use tcms::fds::gantt;
use tcms::ir::frontend::compile;
use tcms::ir::generators::paper_library;
use tcms::modulo::{ModuloScheduler, SharingSpec};

/// Two independent Euler integrators (the HAL diffeq loop, written as in
/// the paper's equation) plus a small control law, sharing one multiplier
/// pool.
const SOURCE: &str = "
# dy/dx solver, one Euler step (HAL benchmark)
process solver_a time=15 {
    u1 := u - 3*x*u*dx - 3*y*dx;
    x1 := x + dx;
    y1 := y + u*dx;
    c  := x1 - a;
}

process solver_b time=15 {
    u1 := u - 3*x*u*dx - 3*y*dx;
    x1 := x + dx;
    y1 := y + u*dx;
    c  := x1 - a;
}

# PI controller: out = kp*e + ki*acc
process controller time=10 {
    acc1 := acc + e;
    out  := kp*e + ki*acc1;
}
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (lib, types) = paper_library();
    let system = compile(SOURCE, lib)?;
    println!("{}", tcms::ir::display::summary(&system));

    let spec = SharingSpec::all_global(&system, 5);
    let outcome = ModuloScheduler::new(&system, spec)?.run()?;
    outcome.schedule.verify(&system)?;

    let report = outcome.report();
    println!(
        "\nshared multipliers: {} for 3 processes (local flow would need 3)",
        report.instances(types.mul)
    );
    println!("total area: {}\n", report.total_area());
    print!("{}", gantt::render_system(&system, &outcome.schedule));

    assert!(report.instances(types.mul) < 3);
    Ok(())
}
