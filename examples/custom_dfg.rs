//! Loading a system from the `.dfg` text format, scheduling it, and
//! exporting Graphviz for inspection.
//!
//! Run with `cargo run --example custom_dfg`.

use tcms::ir::{dot, parse};
use tcms::modulo::{ModuloScheduler, SharingSpec};

const DESIGN: &str = "
# Two reactive channel decoders sharing one MAC-style multiplier.
resource add delay=1 area=1
resource mul delay=2 area=4 pipelined

process chan0
block body time=10
op m0 mul
op m1 mul
op acc0 add
op acc1 add
edge m0 acc0
edge m1 acc1
edge acc0 acc1

process chan1
block body time=8
op m0 mul
op scale add
edge m0 scale
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = parse::parse_system(DESIGN)?;
    println!("{}", tcms::ir::display::summary(&system));

    let mul = system.library().by_name("mul").expect("declared above");
    let mut spec = SharingSpec::all_local(&system);
    spec.set_global(mul, system.users_of_type(mul), 2);

    let outcome = ModuloScheduler::new(&system, spec)?.run()?;
    outcome.schedule.verify(&system)?;

    for (_, block) in system.blocks() {
        println!(
            "\n{}::{}",
            system.process(block.process()).name(),
            block.name()
        );
        for &o in block.ops() {
            println!(
                "  {:<6} @ {}",
                system.op(o).name(),
                outcome.schedule.expect_start(o)
            );
        }
    }
    let report = outcome.report();
    println!(
        "\nshared multipliers: {} — area {}",
        report.instances(mul),
        report.total_area()
    );

    println!(
        "\nGraphviz (pipe into `dot -Tsvg`):\n{}",
        dot::to_dot(&system)
    );
    Ok(())
}
