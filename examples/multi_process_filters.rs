//! The paper's evaluation workload end to end: three elliptical wave
//! filters and two differential-equation solver loops, scheduled with
//! global resource sharing and compared against the traditional
//! one-pool-per-process flow, then verified under randomized grid-aligned
//! executions.
//!
//! Run with `cargo run --release --example multi_process_filters`.

use tcms::ir::generators::paper_system;
use tcms::modulo::{check_execution, random_activations, ModuloScheduler, SharingSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (system, types) = paper_system()?;
    println!("{}", tcms::ir::display::summary(&system));

    // The paper's assignment: adder and multiplier shared by all five
    // processes, subtracter by the two diffeq processes, period 5.
    let spec = SharingSpec::all_global(&system, 5);
    let global = ModuloScheduler::new(&system, spec.clone())?.run()?;
    let local = ModuloScheduler::new(&system, SharingSpec::all_local(&system))?.run()?;

    let (g, l) = (global.report(), local.report());
    println!("\n              global   local");
    for (k, rt) in system.library().iter() {
        println!(
            "{:<12}  {:>6}  {:>6}",
            rt.name(),
            g.instances(k),
            l.instances(k)
        );
    }
    println!(
        "{:<12}  {:>6}  {:>6}",
        "area",
        g.total_area(),
        l.total_area()
    );
    println!(
        "\narea ratio {:.2} — the paper reports 1.65 with its (OCR-lost) time budgets",
        l.total_area() as f64 / g.total_area() as f64
    );

    // Traditional scheduling cannot go below one multiplier per process.
    assert_eq!(l.instances(types.mul), 5);
    assert!(g.instances(types.mul) < 5);

    // The paper's core guarantee: any grid-aligned execution stays within
    // the shared pools — no runtime executive needed.
    for seed in 0..20 {
        let acts = random_activations(&system, &spec, &global.schedule, 3, seed);
        check_execution(&system, &spec, &global.schedule, &g, &acts)?;
    }
    println!("verified 20 randomized grid-aligned executions: no pool ever overdrawn");
    Ok(())
}
