//! Full backend flow: schedule the paper system, bind it, and emit one
//! synthesizable-style VHDL entity whose per-process FSMs wait for their
//! period-grid slot — the access authorization cast into hardware, with
//! no arbiter anywhere.
//!
//! Run with `cargo run --release --example vhdl_export > tcms_top.vhd`.

use tcms::alloc::{allocate_registers, bind_system, emit_vhdl, RtlOptions};
use tcms::ir::generators::paper_system;
use tcms::modulo::{ModuloScheduler, SharingSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (system, _) = paper_system()?;
    let spec = SharingSpec::all_global(&system, 5);
    let outcome = ModuloScheduler::new(&system, spec.clone())?.run()?;
    let binding = bind_system(&system, &spec, &outcome.schedule)?;
    let registers = allocate_registers(&system, &outcome.schedule);
    let vhdl = emit_vhdl(
        &system,
        &spec,
        &outcome.schedule,
        &binding,
        &registers,
        &RtlOptions {
            width: 16,
            entity: "tcms_top".into(),
        },
    )?;
    println!("{vhdl}");
    eprintln!(
        "-- {} lines of VHDL, {} shared + local functional units",
        vhdl.lines().count(),
        system
            .library()
            .ids()
            .map(|k| binding.total_instances(k))
            .sum::<u32>()
    );
    Ok(())
}
