//! End-to-end acceptance of the graceful-degradation ladder: an
//! over-constrained paper spec fails the plain scheduler with a typed
//! `Infeasible` verdict, the ladder rescues it with a verified feasible
//! schedule that names the winning rung, and already-feasible specs are
//! bit-identical with and without the orchestrator.

use tcms::cli::{run, CliError, Command};
use tcms::fds::FdsConfig;
use tcms::ir::generators::paper_system;
use tcms::modulo::{
    check_execution, compute_report, random_activations, schedule_with_degradation, LadderConfig,
    ModuloScheduler, Rung, ScheduleError, SharingSpec,
};

fn design_path(name: &str) -> String {
    format!("{}/designs/{name}", env!("CARGO_MANIFEST_DIR"))
}

/// All-global spec with the multiplier period bumped to 7: the grid
/// spacing becomes lcm(5, 7) = 35, past the EWF spacing budget of 30.
fn over_constrained() -> (tcms::ir::System, SharingSpec) {
    let (system, types) = paper_system().unwrap();
    let mut spec = SharingSpec::all_global(&system, 5);
    spec.set_period(types.mul, 7);
    (system, spec)
}

#[test]
fn plain_run_rejects_over_constrained_spec_with_infeasible() {
    let (system, spec) = over_constrained();
    let err = ModuloScheduler::new(&system, spec)
        .unwrap()
        .run()
        .unwrap_err();
    match err {
        ScheduleError::Infeasible {
            slack,
            binding_resource,
            ..
        } => {
            assert!(slack < 0, "slack must report the deficit, got {slack}");
            assert_eq!(binding_resource, "mul");
        }
        other => panic!("expected Infeasible, got {other:?}"),
    }
}

#[test]
fn ladder_rescues_over_constrained_spec_with_verified_schedule() {
    let (system, spec) = over_constrained();
    let outcome = schedule_with_degradation(
        &system,
        &spec,
        &FdsConfig::default(),
        &LadderConfig::default(),
    )
    .unwrap();
    assert_ne!(outcome.rung, Rung::Direct);
    assert!(outcome.attempts.len() >= 2, "{:?}", outcome.attempts);
    assert!(outcome.summary().contains(outcome.rung.name()));

    // Independently re-verify the emitted schedule: structurally valid
    // and conflict-free under randomized grid-aligned activations.
    let final_system = outcome.system.as_ref().unwrap_or(&system);
    outcome.schedule.verify(final_system).unwrap();
    let report = compute_report(final_system, &outcome.spec, &outcome.schedule);
    for seed in 0..3 {
        let acts = random_activations(final_system, &outcome.spec, &outcome.schedule, 3, seed);
        check_execution(
            final_system,
            &outcome.spec,
            &outcome.schedule,
            &report,
            &acts,
        )
        .unwrap();
    }
}

#[test]
fn feasible_spec_is_bit_identical_with_and_without_the_ladder() {
    let (system, _) = paper_system().unwrap();
    let spec = SharingSpec::all_global(&system, 5);
    let plain = ModuloScheduler::new(&system, spec.clone())
        .unwrap()
        .run()
        .unwrap();
    let laddered = schedule_with_degradation(
        &system,
        &spec,
        &FdsConfig::default(),
        &LadderConfig::default(),
    )
    .unwrap();
    assert_eq!(laddered.rung, Rung::Direct);
    assert_eq!(laddered.schedule, plain.schedule);
    assert_eq!(laddered.iterations, plain.iterations);
}

#[test]
fn cli_without_degrade_exits_infeasible_and_with_degrade_recovers() {
    let cmd = |degrade: bool| Command::Schedule {
        input: design_path("paper_table1.dfg"),
        all_global: Some(5),
        globals: vec![("mul".into(), 7)],
        gantt: false,
        verify: 3,
        save: None,
        trace: None,
        metrics: false,
        timeline: None,
        degrade,
        partition: None,
        threads: None,
        cache_dir: None,
    };
    let err = run(&cmd(false)).unwrap_err();
    assert!(matches!(
        err,
        CliError::Schedule(ScheduleError::Infeasible { .. })
    ));
    assert_eq!(err.exit_code(), 6);

    let out = run(&cmd(true)).unwrap();
    assert!(out.contains("degradation: degraded to rung"), "{out}");
    assert!(out.contains("relax-periods"), "{out}");
    assert!(out.contains("conflict-free"), "{out}");
}

#[test]
fn cli_fault_simulation_is_deterministic_per_seed() {
    let cmd = Command::Simulate {
        input: design_path("paper_table1.dfg"),
        all_global: Some(5),
        globals: vec![],
        horizon: 2_000,
        seed: 1,
        mean_gap: 40,
        faults: true,
        plan: tcms::sim::FaultPlan::moderate(7),
        threads: None,
    };
    let out = run(&cmd).unwrap();
    assert!(out.contains("fault injection (seed 7)"), "{out}");
    assert!(out.contains("missed deadlines"), "{out}");
    assert!(out.contains("dropped slots"), "{out}");
    assert_eq!(
        out,
        run(&cmd).unwrap(),
        "same seeds must reproduce bit-identically"
    );
}
