//! Every file in `tests/corpus/` is malformed on purpose — syntax errors,
//! unknown identifiers, structural violations (cycles, self edges,
//! duplicate names) and numeric abuse (zero delays, overflowing time
//! ranges). The CLI must reject each with a *typed* error and the stable
//! nonzero exit code for malformed input, never a panic and never silent
//! truncation.

use tcms::cli::{run, CliError, Command};

fn corpus_files() -> Vec<std::path::PathBuf> {
    let dir = format!("{}/tests/corpus", env!("CARGO_MANIFEST_DIR"));
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .expect("corpus directory exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.is_file())
        .collect();
    files.sort();
    files
}

#[test]
fn corpus_has_at_least_fifteen_cases() {
    assert!(
        corpus_files().len() >= 15,
        "corpus shrank to {} cases",
        corpus_files().len()
    );
}

#[test]
fn every_corpus_file_yields_a_typed_malformed_error() {
    for path in corpus_files() {
        let input = path.to_string_lossy().into_owned();
        let err = run(&Command::Summary {
            input: input.clone(),
        })
        .unwrap_err();
        assert!(
            matches!(err, CliError::Malformed(_)),
            "{input}: expected Malformed, got {err:?}"
        );
        assert_eq!(err.exit_code(), 4, "{input}");
        assert!(!err.to_string().is_empty(), "{input}");
        // The same file must fail identically through the scheduling path.
        let sched_err = run(&Command::Schedule {
            input: input.clone(),
            all_global: Some(5),
            globals: vec![],
            gantt: false,
            verify: 0,
            save: None,
            trace: None,
            metrics: false,
            timeline: None,
            degrade: false,
            partition: None,
            threads: None,
            cache_dir: None,
        })
        .unwrap_err();
        assert!(
            matches!(sched_err, CliError::Malformed(_)),
            "{input}: schedule path gave {sched_err:?}"
        );
    }
}

#[test]
fn binary_exits_nonzero_with_diagnostic_on_malformed_input() {
    // End to end through the real process: exit status 4 and a diagnostic
    // on stderr, nothing on stdout.
    let sample = format!(
        "{}/tests/corpus/unknown_keyword.dfg",
        env!("CARGO_MANIFEST_DIR")
    );
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_tcms"))
        .args(["summary", &sample])
        .output()
        .expect("tcms binary runs");
    assert_eq!(out.status.code(), Some(4), "{out:?}");
    assert!(out.stdout.is_empty(), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("malformed input"), "{stderr}");
}

#[test]
fn oversized_behavioral_time_range_is_rejected_not_truncated() {
    // `time=4294967297` is 2^32 + 1: a truncating cast would silently
    // build a block with time range 1.
    let path = format!(
        "{}/tests/corpus/huge_time_range.hls",
        env!("CARGO_MANIFEST_DIR")
    );
    let err = run(&Command::Summary { input: path }).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("exceeds the u32 limit"), "{msg}");
}
