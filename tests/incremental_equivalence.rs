//! Property tests for the incremental force-evaluation core: every
//! dirty-region shortcut must be observationally equivalent to the
//! from-scratch reference it replaces.
//!
//! Three layers are pinned down, mirroring the refactor:
//!
//! 1. `DistributionSet::apply_op_change` sequences vs a from-scratch
//!    `DistributionSet::build` of the final frame table.
//! 2. Incremental `force()` vs `force_naive()` for both the classic
//!    per-block evaluator and the modulo evaluator, after arbitrary
//!    commit sequences on random systems.
//! 3. The cached engine run vs the cache-free reference run — here the
//!    requirement is *bit-identity* of the produced schedules, because
//!    both paths fold the same incremental distribution and the cache
//!    may only skip work, never change a value.
//!
//! Random systems come from `tcms::ir::generators::random_system`;
//! commit sequences are random single-op frame shrinks propagated with
//! `constrained_frames` so the table stays precedence-consistent, same
//! as the engine does during gradual time-frame reduction.

use proptest::prelude::*;

use tcms::fds::dist::DistributionSet;
use tcms::fds::{ClassicEvaluator, FdsConfig, ForceEvaluator};
use tcms::ir::generators::{random_system, RandomSystemConfig};
use tcms::ir::{FrameTable, OpId, System, TimeFrame};
use tcms::modulo::{ModuloEvaluator, ModuloScheduler, SharingSpec};

const TOL: f64 = 1e-9;

fn small_config() -> RandomSystemConfig {
    RandomSystemConfig {
        processes: 3,
        blocks_per_process: 1,
        layers: 3,
        ops_per_layer: (1, 3),
        edge_prob: 0.4,
        slack: 2.5,
        type_weights: [2, 1, 2],
    }
}

/// Applies one random single-op frame shrink, propagated through the
/// op's block so the table stays consistent. Returns the changed set
/// (possibly empty when the op is already fixed).
fn random_shrink(
    system: &System,
    frames: &FrameTable,
    op_pick: usize,
    side: u32,
) -> Vec<(OpId, TimeFrame)> {
    let ops: Vec<_> = system.op_ids().collect();
    let o = ops[op_pick % ops.len()];
    let fr = frames.get(o);
    if fr.is_fixed() {
        return Vec::new();
    }
    let nf = if side.is_multiple_of(2) {
        TimeFrame::new(fr.asap + 1, fr.alap)
    } else {
        TimeFrame::new(fr.asap, fr.alap - 1)
    };
    let block = system.op(o).block();
    let solved = tcms::ir::frames::constrained_frames(system, block, |q| {
        if q == o {
            nf
        } else {
            frames.get(q)
        }
    })
    .expect("shrinking within a consistent frame stays feasible");
    solved
        .into_iter()
        .filter(|&(q, f)| f != frames.get(q))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Layer 1: dirty-region distribution updates match a full rebuild.
    #[test]
    fn incremental_distributions_match_scratch_build(
        seed in 0u64..500,
        shrinks in prop::collection::vec((0usize..64, 0u32..4), 1..16),
    ) {
        let (system, _) = random_system(&small_config(), seed).unwrap();
        let mut frames = FrameTable::initial(&system);
        let mut dist = DistributionSet::build(&system, &frames);

        for (op_pick, side) in shrinks {
            for (q, f) in random_shrink(&system, &frames, op_pick, side) {
                let (lo, hi) = dist.apply_op_change(&system, q, frames.get(q), f);
                prop_assert!(lo <= hi, "dirty region must be a valid range");
                frames.set(q, f);
            }
        }

        let rebuilt = DistributionSet::build(&system, &frames);
        for (bid, block) in system.blocks() {
            for k in system.types_used_by_block(bid) {
                let inc = dist.get(bid, k);
                let full = rebuilt.get(bid, k);
                for (t, (a, b)) in inc.iter().zip(full).enumerate() {
                    prop_assert!(
                        (a - b).abs() < TOL,
                        "block {} type {k} t={t}: incremental {a} vs rebuilt {b}",
                        block.name()
                    );
                }
            }
        }
    }

    /// Layer 2a: the classic evaluator's incremental force equals the
    /// from-scratch oracle after arbitrary commit sequences.
    #[test]
    fn classic_incremental_force_matches_naive(
        seed in 0u64..500,
        shrinks in prop::collection::vec((0usize..64, 0u32..4), 0..10),
        probe in 0usize..64,
    ) {
        let (system, _) = random_system(&small_config(), seed).unwrap();
        let scope: Vec<_> = system.block_ids().collect();
        let mut frames = FrameTable::initial(&system);
        let mut eval = ClassicEvaluator::new(&system, &scope, FdsConfig::default());

        for (op_pick, side) in shrinks {
            let changed = random_shrink(&system, &frames, op_pick, side);
            eval.commit(&frames, &changed);
            for &(q, f) in &changed {
                frames.set(q, f);
            }
        }

        let ops: Vec<_> = system.op_ids().collect();
        let o = ops[probe % ops.len()];
        let fr = frames.get(o);
        for pin in [fr.asap, fr.alap] {
            let cand = vec![(o, TimeFrame::new(pin, pin))];
            let inc = eval.force(&frames, &cand);
            let naive = eval.force_naive(&frames, &cand);
            prop_assert!(
                (inc - naive).abs() < TOL,
                "op {o:?} pinned to {pin}: incremental {inc} vs naive {naive}"
            );
        }
    }

    /// Layer 2b: same property for the modulo evaluator — the globally
    /// coupled force (D-hat / M_p / G_k chain) stays equal to a force
    /// computed over a field rebuilt from scratch.
    #[test]
    fn modulo_incremental_force_matches_naive(
        seed in 0u64..500,
        period in 2u32..5,
        shrinks in prop::collection::vec((0usize..64, 0u32..4), 0..10),
        probe in 0usize..64,
    ) {
        let (system, _) = random_system(&small_config(), seed).unwrap();
        let spec = SharingSpec::all_global(&system, period);
        prop_assume!(tcms::modulo::period::spacing_feasible(&system, &spec));

        let mut frames = FrameTable::initial(&system);
        let mut eval =
            ModuloEvaluator::new(&system, spec, FdsConfig::default(), &frames);

        for (op_pick, side) in shrinks {
            let changed = random_shrink(&system, &frames, op_pick, side);
            eval.commit(&frames, &changed);
            for &(q, f) in &changed {
                frames.set(q, f);
            }
        }

        let ops: Vec<_> = system.op_ids().collect();
        let o = ops[probe % ops.len()];
        let fr = frames.get(o);
        for pin in [fr.asap, fr.alap] {
            let cand = vec![(o, TimeFrame::new(pin, pin))];
            let inc = eval.force(&frames, &cand);
            let naive = eval.force_naive(&frames, &cand);
            prop_assert!(
                (inc - naive).abs() < TOL,
                "op {o:?} pinned to {pin}: incremental {inc} vs naive {naive}"
            );
        }
    }

    /// Layer 2c: batched candidate evaluation is bit-identical to one
    /// `force()` call per candidate — and both to the from-scratch
    /// oracle — after arbitrary commit sequences. This is the contract
    /// the engine's batched sweep stands on.
    #[test]
    fn batched_forces_match_scalar_and_naive(
        seed in 0u64..500,
        period in 2u32..5,
        shrinks in prop::collection::vec((0usize..64, 0u32..4), 0..8),
    ) {
        let (system, _) = random_system(&small_config(), seed).unwrap();
        let spec = SharingSpec::all_global(&system, period);
        prop_assume!(tcms::modulo::period::spacing_feasible(&system, &spec));

        let mut frames = FrameTable::initial(&system);
        let mut eval =
            ModuloEvaluator::new(&system, spec, FdsConfig::default(), &frames);
        for (op_pick, side) in shrinks {
            let changed = random_shrink(&system, &frames, op_pick, side);
            eval.commit(&frames, &changed);
            for &(q, f) in &changed {
                frames.set(q, f);
            }
        }

        // Both frame ends of every op, scored as one batch.
        let mut candidates: Vec<Vec<(OpId, TimeFrame)>> = Vec::new();
        for o in system.op_ids() {
            let fr = frames.get(o);
            candidates.push(vec![(o, TimeFrame::new(fr.asap, fr.asap))]);
            candidates.push(vec![(o, TimeFrame::new(fr.alap, fr.alap))]);
        }
        let views: Vec<&[(OpId, TimeFrame)]> =
            candidates.iter().map(|c| c.as_slice()).collect();
        let batched = eval.force_batch(&frames, &views);
        prop_assert_eq!(batched.len(), views.len());
        for (i, cand) in views.iter().enumerate() {
            let scalar = eval.force(&frames, cand);
            prop_assert_eq!(
                batched[i].to_bits(), scalar.to_bits(),
                "seed {}: candidate {} batched {} vs scalar {}",
                seed, i, batched[i], scalar
            );
        }
    }

    /// Layer 3: the cached scheduler run is bit-identical to the
    /// cache-free reference run — same start times, same iteration
    /// count, same allocation — on random multi-process systems.
    #[test]
    fn cached_scheduler_run_is_bit_identical(
        seed in 0u64..200,
        period in 2u32..5,
    ) {
        let (system, _) = random_system(&small_config(), seed).unwrap();
        let spec = SharingSpec::all_global(&system, period);
        prop_assume!(tcms::modulo::period::spacing_feasible(&system, &spec));

        let cached = ModuloScheduler::new(&system, spec.clone())
            .unwrap()
            .run().unwrap();
        let naive = ModuloScheduler::new(&system, spec)
            .unwrap()
            .run_naive().unwrap();

        prop_assert_eq!(
            cached.schedule.starts(),
            naive.schedule.starts(),
            "cached and naive runs must place every op identically"
        );
        prop_assert_eq!(cached.iterations, naive.iterations);
        // The cache may only skip evaluations, never add them.
        prop_assert!(cached.stats.ops_evaluated <= naive.stats.ops_evaluated);
        prop_assert_eq!(naive.stats.cache_hits, 0);
    }
}

/// The precise-dirtying commit path (distribution versions bump only when
/// bits actually change; context stamps are gated on `dist_changed`) must
/// keep the paper-system cache hit-rate at or above its measured level —
/// a regression here silently degrades the incremental engine without
/// failing any equivalence test.
#[test]
fn paper_system_cache_hit_rate_clears_floor() {
    let (sys, _) = tcms::ir::generators::paper_system().unwrap();
    let spec = SharingSpec::all_global(&sys, 5);
    let out = ModuloScheduler::new(&sys, spec).unwrap().run().unwrap();
    assert!(
        out.stats.cache_hits > 0,
        "the paper system must hit the cache"
    );
    let rate = out.stats.hit_rate();
    assert!(
        rate >= 0.12,
        "paper-system hit rate regressed: {rate:.3} (measured 0.130 at the slab refactor)"
    );
    assert_eq!(
        out.stats.batched_evals, out.stats.ops_evaluated,
        "every fresh pair must go through the batched entry point"
    );
}
