//! Property tests of the canonicalization pass that keys the serve
//! cache: *any* permutation of declaration order — resources, processes,
//! blocks, operations, edges — yields the same canonical hash and text
//! and therefore hits the same cache entry, while every *semantic* edit
//! (delay, area, pipelining, time budget, dependency structure) produces
//! a different hash.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tcms::ir::canon::Canonicalization;
use tcms::ir::parse::parse_system;
use tcms::serve::cache::{Disposition, SchedCache};
use tcms::serve::pipeline::{schedule_request, ExecContext, ScheduleOptions};

/// A design as structured declarations, so it can be rendered in any
/// order without changing its meaning.
#[derive(Debug, Clone)]
struct Design {
    /// `(name, delay, area, pipelined)` per resource type.
    resources: Vec<(String, u32, u32, bool)>,
    /// `(process name, blocks)`.
    processes: Vec<(String, Vec<Block>)>,
}

#[derive(Debug, Clone)]
struct Block {
    name: String,
    time: u64,
    /// `(op name, resource index)`.
    ops: Vec<(String, usize)>,
    /// `(from op index, to op index)`, always forward so the graph is
    /// acyclic by construction.
    edges: Vec<(usize, usize)>,
}

/// In-place Fisher–Yates (the vendored rand shim has no `shuffle`).
fn shuffle<T>(v: &mut [T], rng: &mut StdRng) {
    for i in (1..v.len()).rev() {
        let j: usize = rng.random_range(0..=i);
        v.swap(i, j);
    }
}

/// Draws a small random multi-process design. Every block gets a
/// generous time budget so the designs also schedule feasibly under an
/// all-global period of 4 (used by the cache-hit property below).
fn random_design(seed: u64) -> Design {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_res: usize = rng.random_range(2..=3);
    let resources: Vec<(String, u32, u32, bool)> = (0..n_res)
        .map(|r| {
            (
                format!("r{r}"),
                rng.random_range(1..=2u32),
                rng.random_range(1..=4u32),
                rng.random_bool(0.3),
            )
        })
        .collect();
    let n_proc: usize = rng.random_range(1..=2);
    let processes = (0..n_proc)
        .map(|p| {
            let n_blocks: usize = rng.random_range(1..=2);
            let blocks = (0..n_blocks)
                .map(|b| {
                    let n_ops: usize = rng.random_range(2..=5);
                    let ops: Vec<(String, usize)> = (0..n_ops)
                        .map(|o| (format!("o{o}"), rng.random_range(0..n_res)))
                        .collect();
                    let mut edges = Vec::new();
                    for to in 1..n_ops {
                        if rng.random_bool(0.6) {
                            let from: usize = rng.random_range(0..to);
                            edges.push((from, to));
                        }
                    }
                    Block {
                        name: format!("b{b}"),
                        // Worst case: every op serialized at max delay 2
                        // on a shared grid of period 4.
                        time: 8 * n_ops as u64 + 16,
                        ops,
                        edges,
                    }
                })
                .collect();
            (format!("p{p}"), blocks)
        })
        .collect();
    Design {
        resources,
        processes,
    }
}

/// Renders the design as `.dfg` text. With `perm_seed`, every
/// independently orderable declaration group is shuffled: resources
/// among themselves, processes, blocks within a process, ops within a
/// block, edges within a block. (Structural rules of the format still
/// hold: resources precede processes, ops precede the edges that name
/// them.)
fn render(design: &Design, perm_seed: Option<u64>) -> String {
    let mut rng = StdRng::seed_from_u64(perm_seed.unwrap_or(0));
    let permute = perm_seed.is_some();
    let mut text = String::new();
    let mut resources = design.resources.clone();
    if permute {
        shuffle(&mut resources, &mut rng);
    }
    for (name, delay, area, pipelined) in &resources {
        let pipe = if *pipelined { " pipelined" } else { "" };
        text.push_str(&format!(
            "resource {name} delay={delay} area={area}{pipe}\n"
        ));
    }
    let mut processes = design.processes.clone();
    if permute {
        shuffle(&mut processes, &mut rng);
    }
    for (pname, blocks) in &processes {
        text.push_str(&format!("process {pname}\n"));
        let mut blocks = blocks.clone();
        if permute {
            shuffle(&mut blocks, &mut rng);
        }
        for block in &blocks {
            text.push_str(&format!("block {} time={}\n", block.name, block.time));
            let mut ops = block.ops.clone();
            let mut edges = block.edges.clone();
            if permute {
                shuffle(&mut ops, &mut rng);
                shuffle(&mut edges, &mut rng);
            }
            for (oname, res) in &ops {
                text.push_str(&format!("op {oname} {}\n", design.resources[*res].0));
            }
            for (from, to) in &edges {
                text.push_str(&format!(
                    "edge {} {}\n",
                    block.ops[*from].0, block.ops[*to].0
                ));
            }
        }
    }
    text
}

/// Applies one semantic mutation selected by `choice`. Every arm changes
/// the scheduling problem, so the canonical hash must change.
fn mutate(design: &Design, choice: usize) -> Design {
    let mut d = design.clone();
    match choice % 5 {
        0 => d.resources[0].1 += 1,                // delay
        1 => d.resources[0].2 += 1,                // area
        2 => d.resources[0].3 = !d.resources[0].3, // pipelining
        3 => d.processes[0].1[0].time += 1,        // block time budget
        4 => {
            // Dependency structure: toggle the edge 0 -> last op.
            let block = &mut d.processes[0].1[0];
            let probe = (0, block.ops.len() - 1);
            match block.edges.iter().position(|e| *e == probe) {
                Some(i) => {
                    block.edges.remove(i);
                }
                None => block.edges.push(probe),
            }
        }
        _ => unreachable!(),
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_declaration_permutation_hashes_identically(seed in 0u64..u64::MAX, perm in 0u64..u64::MAX) {
        let design = random_design(seed);
        let plain = parse_system(&render(&design, None)).unwrap();
        let shuffled = parse_system(&render(&design, Some(perm))).unwrap();
        let a = Canonicalization::of(&plain);
        let b = Canonicalization::of(&shuffled);
        prop_assert_eq!(a.hash(), b.hash());
        prop_assert_eq!(a.text(), b.text());
        // The canonical op order names the same operations in the same
        // canonical sequence on both sides.
        let names = |sys: &tcms::ir::System, c: &Canonicalization| -> Vec<String> {
            c.op_order().iter().map(|&op| sys.op(op).name().to_owned()).collect()
        };
        prop_assert_eq!(names(&plain, &a), names(&shuffled, &b));
    }

    #[test]
    fn semantic_mutations_never_collide(seed in 0u64..u64::MAX, choice in 0usize..5) {
        let design = random_design(seed);
        let mutated = mutate(&design, choice);
        let original = parse_system(&render(&design, None)).unwrap();
        let changed = parse_system(&render(&mutated, None)).unwrap();
        prop_assert_ne!(
            Canonicalization::of(&original).hash(),
            Canonicalization::of(&changed).hash(),
            "mutation arm {} collided", choice
        );
    }
}

proptest! {
    // Each case runs the real scheduler twice, so keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn permuted_designs_hit_the_same_cache_entry(seed in 0u64..u64::MAX, perm in 0u64..u64::MAX) {
        let design = random_design(seed);
        let cache = SchedCache::new(64, 4);
        let opts = ScheduleOptions {
            all_global: Some(4),
            ..ScheduleOptions::default()
        };
        let ctx = ExecContext {
            cache: Some(&cache),
            ..ExecContext::default()
        };
        let first = schedule_request(&render(&design, None), &opts, &ctx).unwrap();
        prop_assert_eq!(first.disposition, Disposition::Miss);
        let second = schedule_request(&render(&design, Some(perm)), &opts, &ctx).unwrap();
        prop_assert_eq!(second.disposition, Disposition::Hit);
        // The report renders in the requester's declaration order, so
        // the *bytes* may differ across permutations — but the replayed
        // schedule must assign every operation the same start time, read
        // off in canonical op order (identical on both sides).
        let canonical_starts = |art: &tcms::serve::ScheduleArtifacts| -> Vec<Option<u32>> {
            Canonicalization::of(&art.system)
                .op_order()
                .iter()
                .map(|&op| art.schedule.start(op))
                .collect()
        };
        prop_assert_eq!(canonical_starts(&first), canonical_starts(&second));
    }
}

/// The canonical text itself is stable across repeated computation (a
/// cheap guard against accidental iteration-order nondeterminism).
#[test]
fn canonicalization_is_deterministic() {
    let design = random_design(7);
    let sys = parse_system(&render(&design, None)).unwrap();
    let a = Canonicalization::of(&sys);
    let b = Canonicalization::of(&sys);
    assert_eq!(a.hash(), b.hash());
    assert_eq!(a.text(), b.text());
    assert_eq!(a.op_order(), b.op_order());
}
