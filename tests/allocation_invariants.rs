//! Property tests of the allocation stack: binding, register allocation
//! and lifetimes uphold their invariants on random systems.

use proptest::prelude::*;

use tcms::alloc::{allocate_registers, bind_system, value_lifetimes};
use tcms::ir::generators::{random_system, RandomSystemConfig};
use tcms::modulo::{ModuloScheduler, SharingSpec};

fn scheduled(
    seed: u64,
    period: u32,
) -> Option<(tcms::ir::System, SharingSpec, tcms::fds::Schedule)> {
    let cfg = RandomSystemConfig {
        processes: 3,
        blocks_per_process: 2,
        layers: 3,
        ops_per_layer: (1, 3),
        edge_prob: 0.5,
        slack: 2.0,
        type_weights: [3, 1, 2],
    };
    let (system, _) = random_system(&cfg, seed).unwrap();
    let spec = SharingSpec::all_global(&system, period);
    if !tcms::modulo::period::spacing_feasible(&system, &spec) {
        return None;
    }
    let out = ModuloScheduler::new(&system, spec.clone())
        .unwrap()
        .run()
        .unwrap();
    let schedule = out.schedule.clone();
    Some((system, spec, schedule))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn binding_never_double_books_an_instance(
        seed in 0u64..400,
        period in 2u32..5,
    ) {
        let Some((system, spec, schedule)) = scheduled(seed, period) else {
            return Ok(());
        };
        let binding = bind_system(&system, &spec, &schedule).unwrap();
        // Within one block: overlapping same-type ops on distinct units.
        for (bid, block) in system.blocks() {
            let _ = bid;
            for (i, &a) in block.ops().iter().enumerate() {
                for &b in &block.ops()[i + 1..] {
                    if system.op(a).resource_type() != system.op(b).resource_type() {
                        continue;
                    }
                    let (sa, sb) = (schedule.expect_start(a), schedule.expect_start(b));
                    let (oa, ob) = (system.occupancy(a), system.occupancy(b));
                    let overlap = sa < sb + ob && sb < sa + oa;
                    if overlap {
                        prop_assert_ne!(binding.instance(a), binding.instance(b));
                    }
                }
            }
        }
    }

    #[test]
    fn cross_process_slot_overlaps_use_distinct_units(
        seed in 0u64..400,
        period in 2u32..5,
    ) {
        let Some((system, spec, schedule)) = scheduled(seed, period) else {
            return Ok(());
        };
        let binding = bind_system(&system, &spec, &schedule).unwrap();
        for k in spec.global_types(&system) {
            let p = spec.period(k).unwrap();
            let mut all = Vec::new();
            for &proc in spec.group(k).unwrap() {
                for &b in system.process(proc).blocks() {
                    for o in system.ops_of_type(b, k) {
                        all.push((proc, o));
                    }
                }
            }
            for (i, &(pa, a)) in all.iter().enumerate() {
                for &(pb, b) in &all[i + 1..] {
                    if pa == pb {
                        continue;
                    }
                    let slots = |o| {
                        let s = schedule.expect_start(o);
                        (s..s + system.occupancy(o))
                            .map(|t| t % p)
                            .collect::<std::collections::HashSet<_>>()
                    };
                    if !slots(a).is_disjoint(&slots(b)) {
                        prop_assert_ne!(binding.instance(a), binding.instance(b));
                    }
                }
            }
        }
    }

    #[test]
    fn registers_never_hold_two_live_values(
        seed in 0u64..400,
        period in 2u32..5,
    ) {
        let Some((system, _, schedule)) = scheduled(seed, period) else {
            return Ok(());
        };
        let regs = allocate_registers(&system, &schedule);
        for (bid, _) in system.blocks() {
            let lts = value_lifetimes(&system, bid, &schedule);
            for (i, a) in lts.iter().enumerate() {
                for b in &lts[i + 1..] {
                    if a.overlaps(b) {
                        prop_assert_ne!(
                            regs.register(a.op),
                            regs.register(b.op),
                            "overlapping values {} and {} share a register",
                            system.op(a.op).name(),
                            system.op(b.op).name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn lifetimes_are_well_formed(
        seed in 0u64..400,
        period in 2u32..5,
    ) {
        let Some((system, _, schedule)) = scheduled(seed, period) else {
            return Ok(());
        };
        for (bid, block) in system.blocks() {
            let makespan = schedule.block_makespan(&system, bid);
            for lt in value_lifetimes(&system, bid, &schedule) {
                prop_assert!(lt.birth <= lt.death);
                prop_assert!(lt.death <= makespan.max(lt.birth));
                prop_assert_eq!(
                    lt.birth,
                    schedule.expect_start(lt.op) + system.delay(lt.op)
                );
            }
            let _ = block;
        }
    }
}
