//! End-to-end observability guarantees on the paper's 5-process example:
//! recording must never change scheduling results, and both sink formats
//! must round-trip through their validating parsers with well-formed span
//! nesting.

use tcms::ir::generators::paper_system;
use tcms::modulo::{ModuloScheduler, SharingSpec};
use tcms::obs::{sink, Recorder, TraceData, TraceEventKind, TraceRecorder};

/// Schedules the paper system twice — plain and recorded — and returns
/// the recorded run's trace data for the sink tests.
fn schedule_both() -> TraceData {
    let (system, _) = paper_system().expect("paper system builds");
    let spec = SharingSpec::all_global(&system, 5);

    let plain = ModuloScheduler::new(&system, spec.clone())
        .expect("valid spec")
        .run()
        .unwrap();

    let rec = TraceRecorder::new();
    let recorded = ModuloScheduler::new(&system, spec)
        .expect("valid spec")
        .run_recorded(&rec)
        .unwrap();

    // The tentpole invariant: recording is observation only. Identical
    // schedules, identical iteration counts, identical resource report.
    assert_eq!(
        plain.schedule, recorded.schedule,
        "recording changed the schedule"
    );
    assert_eq!(plain.iterations, recorded.iterations);
    assert_eq!(plain.report().total_area(), recorded.report().total_area());

    rec.finish()
}

#[test]
fn recording_is_bit_identical_and_sinks_validate() {
    let data = schedule_both();
    assert!(!data.events.is_empty(), "recorded run captured no events");
    assert!(!data.metrics.is_empty(), "recorded run captured no metrics");

    // Span nesting is well-formed on the raw event stream.
    sink::check_span_nesting(&data.events).expect("balanced spans");

    // JSONL round-trips through the parser and stays well-nested.
    let jsonl = sink::to_jsonl(&data);
    let records = sink::parse_jsonl(&jsonl).expect("every line parses");
    assert_eq!(records.len(), data.events.len());
    sink::check_jsonl_nesting(&records).expect("nesting survives the sink");
    assert_eq!(sink::validate_jsonl(&jsonl).expect("valid"), records.len());

    // The S3 convergence timeline is present: one "ifds" point per
    // committed iteration, plus the per-iteration field samples.
    let timeline_phases: Vec<String> = records
        .iter()
        .filter(|r| r.get("type").and_then(|t| t.as_str()) == Some("timeline"))
        .filter_map(|r| r.get("phase").and_then(|p| p.as_str()).map(str::to_owned))
        .collect();
    assert!(
        timeline_phases.iter().any(|p| p == "ifds"),
        "missing ifds convergence timeline"
    );
    assert!(
        timeline_phases.iter().any(|p| p == "field"),
        "missing M_p/G_k field timeline"
    );

    // The Chrome trace validates and contains the scheduler spans.
    let chrome = sink::to_chrome_trace(&data);
    assert!(sink::validate_chrome_trace(&chrome).expect("valid trace") > 0);
    assert!(chrome.contains("s3.schedule"));
    assert!(chrome.contains("ifds.reduce"));
}

#[test]
fn field_timeline_tracks_every_slot_of_the_shared_types() {
    let data = schedule_both();
    // Every global type of the paper spec has period 5 → the field
    // timeline must carry G.<type>.slot0..slot4 and the per-process
    // M.<process> series for the multiplier.
    let mut series: Vec<String> = Vec::new();
    for ev in &data.events {
        if let TraceEventKind::Point(p) = &ev.kind {
            if p.phase == "field" {
                for (name, _) in &p.values {
                    if !series.contains(name) {
                        series.push(name.clone());
                    }
                }
            }
        }
    }
    for slot in 0..5 {
        assert!(
            series.iter().any(|s| s == &format!("G.mul.slot{slot}")),
            "missing G.mul.slot{slot} in {series:?}"
        );
    }
    assert!(series.iter().any(|s| s == "G.mul.peak"));
    assert!(series.iter().any(|s| s.starts_with("M.mul.P4.slot")));
}

#[test]
fn noop_recorder_records_nothing() {
    let rec = tcms::obs::NoopRecorder;
    assert!(!rec.enabled());
    let (system, _) = paper_system().expect("paper system builds");
    let spec = SharingSpec::all_global(&system, 5);
    // Running through the recorded path with the no-op recorder is the
    // default `run()`; it must succeed and produce a complete schedule.
    let out = ModuloScheduler::new(&system, spec)
        .expect("valid spec")
        .run_recorded(&rec)
        .unwrap();
    out.schedule.verify(&system).expect("complete schedule");
}
