//! Full-stack pipeline tests: IR → coupled modulo scheduling → binding →
//! register allocation → datapath/controller → reactive simulation, on
//! randomized systems.

use tcms::alloc::fsm::build_controllers;
use tcms::alloc::{allocate_registers, bind_system, build_datapath, full_area_report};
use tcms::ir::generators::{random_system, RandomSystemConfig};
use tcms::modulo::{ModuloScheduler, SharingSpec};
use tcms::sim::{SimConfig, Simulator, Trigger};

fn pipeline(seed: u64) {
    let cfg = RandomSystemConfig {
        processes: 3,
        blocks_per_process: 2,
        layers: 4,
        ops_per_layer: (1, 3),
        edge_prob: 0.5,
        slack: 2.5,
        type_weights: [3, 1, 2],
    };
    let (system, _) = random_system(&cfg, seed).unwrap();
    let spec = SharingSpec::all_global(&system, 3);
    if !tcms::modulo::period::spacing_feasible(&system, &spec) {
        return;
    }
    let outcome = ModuloScheduler::new(&system, spec.clone())
        .unwrap()
        .run()
        .unwrap();
    outcome.schedule.verify(&system).unwrap();

    let binding = bind_system(&system, &spec, &outcome.schedule).unwrap();
    let registers = allocate_registers(&system, &outcome.schedule);
    let datapath = build_datapath(&system, &spec, &outcome.schedule, &binding, &registers);
    assert_eq!(
        datapath.num_fus() as u32,
        system
            .library()
            .ids()
            .map(|k| binding.total_instances(k))
            .sum::<u32>()
    );

    let controllers = build_controllers(&system, &spec, &outcome.schedule, &binding, &registers);
    let issued: usize = controllers
        .iter()
        .flat_map(|c| c.words.iter().map(|w| w.issues.len()))
        .sum();
    assert_eq!(issued, system.num_ops(), "every op issued exactly once");

    let area = full_area_report(&system, &spec, &outcome.schedule, &binding);
    assert!(area.total() >= area.fu_area as f64);

    let sim = Simulator::new(&system, &spec, &outcome.schedule);
    let workloads = vec![Trigger::Random { mean_gap: 20 }; system.num_processes()];
    let result = sim.run(
        &workloads,
        &SimConfig {
            horizon: 2_000,
            seed,
        },
    );
    assert!(result.conflicts.is_empty(), "seed {seed}");
}

#[test]
fn pipeline_runs_on_many_seeds() {
    for seed in 0..12 {
        pipeline(seed);
    }
}

#[test]
fn pipeline_with_multiblock_processes() {
    // Blocks of one process must share pools without ever conflicting.
    let cfg = RandomSystemConfig {
        processes: 2,
        blocks_per_process: 3,
        layers: 3,
        ops_per_layer: (2, 3),
        edge_prob: 0.6,
        slack: 2.0,
        type_weights: [2, 1, 2],
    };
    let (system, _) = random_system(&cfg, 77).unwrap();
    let spec = SharingSpec::all_global(&system, 2);
    if !tcms::modulo::period::spacing_feasible(&system, &spec) {
        return;
    }
    let outcome = ModuloScheduler::new(&system, spec.clone())
        .unwrap()
        .run()
        .unwrap();
    outcome.schedule.verify(&system).unwrap();
    let report = outcome.report();
    for seed in 0..10 {
        let acts = tcms::modulo::random_activations(&system, &spec, &outcome.schedule, 3, seed);
        tcms::modulo::check_execution(&system, &spec, &outcome.schedule, &report, &acts).unwrap();
    }
}
