//! Cross-thread-count determinism suite.
//!
//! The parallel force sweeps (S3), the shared-incumbent period search
//! and the split exact search all promise *bit-identical* results at
//! every worker-thread count. These tests pin that promise end to end
//! on randomized systems: anything the CLI can print — schedules,
//! reports, exploration winners — must not change when the thread count
//! does.
//!
//! The thread override is process-global, so every test serializes on
//! one mutex and restores the automatic setting before releasing it.

use std::sync::{Mutex, MutexGuard};

use tcms::fds::threads;
use tcms::ir::generators::{random_system, RandomSystemConfig};
use tcms::ir::System;
use tcms::modulo::explore::{auto_assign, pruned_best_period_assignment};
use tcms::modulo::{ModuloScheduler, ScheduleReport, SharingSpec};

static THREADS: Mutex<()> = Mutex::new(());

fn threads_lock() -> MutexGuard<'static, ()> {
    THREADS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The thread counts every result is pinned across. 1 is the sequential
/// reference; the others exercise the parallel paths (oversubscribed on
/// small machines, which is exactly the point — determinism must not
/// depend on the hardware).
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn test_systems() -> Vec<(u64, System)> {
    let cfg = RandomSystemConfig {
        processes: 3,
        blocks_per_process: 1,
        layers: 4,
        ops_per_layer: (1, 3),
        edge_prob: 0.4,
        slack: 2.5,
        type_weights: [2, 1, 2],
    };
    (0..6)
        .map(|seed| (seed, random_system(&cfg, seed).unwrap().0))
        .collect()
}

/// Schedules under the first feasible spec of a small candidate ladder,
/// so every random seed contributes a run instead of being skipped.
fn schedule_any(sys: &System) -> (Vec<Option<u32>>, u64, ScheduleReport) {
    for period in [2u32, 3, 4] {
        let spec = SharingSpec::all_global(sys, period);
        if let Ok(out) = ModuloScheduler::new(sys, spec).unwrap().run() {
            let report = out.report();
            return (out.schedule.starts().to_vec(), out.iterations, report);
        }
    }
    let out = ModuloScheduler::new(sys, SharingSpec::all_local(sys))
        .unwrap()
        .run()
        .unwrap();
    let report = out.report();
    (out.schedule.starts().to_vec(), out.iterations, report)
}

#[test]
fn coupled_schedules_are_bit_identical_across_thread_counts() {
    let _guard = threads_lock();
    for (seed, sys) in test_systems() {
        threads::set(1);
        let reference = schedule_any(&sys);
        for n in THREAD_COUNTS {
            threads::set(n);
            let run = schedule_any(&sys);
            assert_eq!(
                reference.0, run.0,
                "seed {seed}, threads {n}: start times must be bit-identical"
            );
            assert_eq!(
                reference.1, run.1,
                "seed {seed}, threads {n}: iteration counts must match"
            );
            assert_eq!(
                reference.2.total_area(),
                run.2.total_area(),
                "seed {seed}, threads {n}: reported area must match"
            );
        }
    }
    threads::set(0);
}

/// The batched candidate sweep (`run`, which scores placements through
/// `ForceEvaluator::force_batch` and the candidate cache) must match the
/// scalar, cache-free reference run (`run_naive`) bit-identically at
/// every thread count — pinning batching, caching and parallelism in one
/// comparison.
#[test]
fn batched_runs_match_scalar_reference_across_thread_counts() {
    let _guard = threads_lock();
    for (seed, sys) in test_systems().into_iter().take(3) {
        threads::set(1);
        let Some(reference) = run_naive_any(&sys) else {
            continue;
        };
        for n in THREAD_COUNTS {
            threads::set(n);
            let run = schedule_any(&sys);
            assert_eq!(
                reference.0, run.0,
                "seed {seed}, threads {n}: batched starts must equal the scalar reference"
            );
            assert_eq!(
                reference.1, run.1,
                "seed {seed}, threads {n}: iteration counts must match the scalar reference"
            );
        }
    }
    threads::set(0);
}

/// `schedule_any`'s ladder, but through the scalar cache-free oracle so
/// both paths pick the same spec.
fn run_naive_any(sys: &System) -> Option<(Vec<Option<u32>>, u64)> {
    for period in [2u32, 3, 4] {
        let spec = SharingSpec::all_global(sys, period);
        if let Ok(out) = ModuloScheduler::new(sys, spec).unwrap().run_naive() {
            return Some((out.schedule.starts().to_vec(), out.iterations));
        }
    }
    let out = ModuloScheduler::new(sys, SharingSpec::all_local(sys))
        .unwrap()
        .run_naive()
        .ok()?;
    Some((out.schedule.starts().to_vec(), out.iterations))
}

#[test]
fn explore_winners_are_bit_identical_across_thread_counts() {
    let _guard = threads_lock();
    let fds = tcms::fds::FdsConfig::default();
    for (seed, sys) in test_systems() {
        let base = SharingSpec::all_global(&sys, 2);
        if base.global_types(&sys).is_empty() {
            continue; // no shareable type: nothing to explore
        }
        threads::set(1);
        let reference = pruned_best_period_assignment(&sys, &base, &fds).unwrap();
        for n in THREAD_COUNTS {
            threads::set(n);
            let run = pruned_best_period_assignment(&sys, &base, &fds).unwrap();
            match (&reference, &run) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(
                        a.0, b.0,
                        "seed {seed}, threads {n}: winning spec must be identical"
                    );
                    assert_eq!(
                        a.1.total_area(),
                        b.1.total_area(),
                        "seed {seed}, threads {n}: winning area must be identical"
                    );
                }
                _ => panic!("seed {seed}, threads {n}: feasibility must not depend on threads"),
            }
        }
    }
    threads::set(0);
}

#[test]
fn auto_assign_is_bit_identical_across_thread_counts() {
    let _guard = threads_lock();
    let fds = tcms::fds::FdsConfig::default();
    for (seed, sys) in test_systems().into_iter().take(3) {
        threads::set(1);
        let reference = auto_assign(&sys, 2, &fds).unwrap();
        for n in THREAD_COUNTS {
            threads::set(n);
            let run = auto_assign(&sys, 2, &fds).unwrap();
            assert_eq!(
                reference.0, run.0,
                "seed {seed}, threads {n}: auto-assigned spec must be identical"
            );
            assert_eq!(
                reference.1.total_area(),
                run.1.total_area(),
                "seed {seed}, threads {n}: auto-assign area must be identical"
            );
        }
    }
    threads::set(0);
}
