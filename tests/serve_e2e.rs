//! End-to-end acceptance of the `tcms-serve` daemon over real loopback
//! TCP: malformed corpus inputs come back as typed wire errors, daemon
//! responses are bit-identical to the one-shot CLI on both cache miss
//! and hit, simultaneous identical requests coalesce into a single
//! scheduler run, warm hits perform zero IFDS iterations, and the
//! installed `tcms serve` / `tcms client` binaries round-trip.

use std::io::{BufRead, BufReader};
use std::process::{Command as Proc, Stdio};
use std::sync::{Arc, Barrier};

use tcms::cli::{run, Command};
use tcms::obs::json::JsonValue;
use tcms::serve::client::{control_request_line, schedule_request_line};
use tcms::serve::{Client, ScheduleOptions, ServeConfig, Server};

fn corpus_files() -> Vec<std::path::PathBuf> {
    let dir = format!("{}/tests/corpus", env!("CARGO_MANIFEST_DIR"));
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .expect("corpus directory exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.is_file())
        .collect();
    files.sort();
    files
}

fn design_path(name: &str) -> String {
    format!("{}/designs/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn start_server() -> Server {
    Server::start(ServeConfig {
        listen: "127.0.0.1:0".into(),
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("daemon starts on loopback")
}

/// Reads one numeric field out of a `stats` response.
fn stat(client: &mut Client, field: &str) -> u64 {
    let resp = client
        .request(&control_request_line("stats", "stats"))
        .expect("stats round-trip");
    assert!(resp.is_ok(), "{resp:?}");
    let v = resp
        .body
        .get(field)
        .and_then(JsonValue::as_f64)
        .unwrap_or_else(|| panic!("stats response lacks `{field}`: {resp:?}"));
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    {
        v as u64
    }
}

/// Every malformed corpus file must come back as the same typed wire
/// error the one-shot CLI reports: class `malformed`, code 4 — never a
/// dropped connection, never a panic, never a success.
#[test]
fn corpus_replays_get_typed_malformed_errors() {
    let server = start_server();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let opts = ScheduleOptions {
        all_global: Some(5),
        ..ScheduleOptions::default()
    };
    for path in corpus_files() {
        let design = std::fs::read_to_string(&path).unwrap();
        let id = path.file_name().unwrap().to_string_lossy().into_owned();
        let resp = client
            .request(&schedule_request_line(&id, &design, &opts, None))
            .expect("response arrives");
        let (class, code, message) = resp
            .error
            .clone()
            .unwrap_or_else(|| panic!("{id}: malformed input was accepted: {resp:?}"));
        assert_eq!(class, "malformed", "{id}: {message}");
        assert_eq!(code, 4, "{id}");
        assert!(!message.is_empty(), "{id}");
    }
    // The daemon survived twenty poison pills and still answers.
    assert!(client
        .request(&control_request_line("alive", "ping"))
        .expect("ping after corpus")
        .is_ok());
    server.shutdown();
    server.wait().unwrap();
}

/// The daemon's schedule output must match the one-shot CLI byte for
/// byte, on the cold-cache miss AND on the warm-cache hit.
#[test]
fn daemon_output_is_bit_identical_to_one_shot_cli() {
    let input = design_path("paper_table1.dfg");
    let one_shot = run(&Command::Schedule {
        input: input.clone(),
        all_global: Some(5),
        globals: vec![],
        gantt: true,
        verify: 2,
        save: None,
        trace: None,
        metrics: false,
        timeline: None,
        degrade: false,
        partition: None,
        threads: None,
        cache_dir: None,
    })
    .unwrap();

    let server = start_server();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let design = std::fs::read_to_string(&input).unwrap();
    let opts = ScheduleOptions {
        all_global: Some(5),
        gantt: true,
        verify: 2,
        ..ScheduleOptions::default()
    };
    for (round, expected_cache) in [("cold", "miss"), ("warm", "hit")] {
        let resp = client
            .request(&schedule_request_line(round, &design, &opts, None))
            .expect("response arrives");
        assert!(resp.is_ok(), "{round}: {resp:?}");
        assert_eq!(resp.cache(), Some(expected_cache), "{round}");
        assert_eq!(resp.output(), Some(one_shot.as_str()), "{round}");
    }
    server.shutdown();
    server.wait().unwrap();
}

/// Two identical requests fired simultaneously must produce exactly one
/// scheduler run: the loser of the single-flight race waits for the
/// winner's result instead of recomputing it.
#[test]
fn simultaneous_identical_requests_run_the_scheduler_once() {
    let server = start_server();
    let addr = server.local_addr();
    let design = std::fs::read_to_string(design_path("paper_table1.dfg")).unwrap();
    let barrier = Arc::new(Barrier::new(2));
    let workers: Vec<_> = (0..2)
        .map(|i| {
            let design = design.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let line = schedule_request_line(
                    &format!("race-{i}"),
                    &design,
                    &ScheduleOptions {
                        all_global: Some(5),
                        ..ScheduleOptions::default()
                    },
                    None,
                );
                barrier.wait();
                client.request(&line).expect("response arrives")
            })
        })
        .collect();
    let responses: Vec<_> = workers.into_iter().map(|h| h.join().unwrap()).collect();
    for resp in &responses {
        assert!(resp.is_ok(), "{resp:?}");
    }
    // Both answers carry the same bytes regardless of who computed them.
    assert_eq!(responses[0].output(), responses[1].output());

    let mut client = Client::connect(addr).expect("connect");
    assert_eq!(
        stat(&mut client, "scheduler_runs"),
        1,
        "single-flight must collapse the race to one run"
    );
    server.shutdown();
    server.wait().unwrap();
}

/// A warm-cache hit must not touch the scheduler at all: the IFDS
/// iteration counter stays flat while the hit counter advances.
#[test]
fn warm_hit_performs_zero_ifds_iterations() {
    let server = start_server();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let design = std::fs::read_to_string(design_path("paper_table1.dfg")).unwrap();
    let opts = ScheduleOptions {
        all_global: Some(5),
        ..ScheduleOptions::default()
    };

    let cold = client
        .request(&schedule_request_line("cold", &design, &opts, None))
        .expect("response arrives");
    assert!(cold.is_ok(), "{cold:?}");
    assert_eq!(cold.cache(), Some("miss"));
    let after_cold = stat(&mut client, "ifds_iterations");
    assert!(after_cold > 0, "a fresh run must report its iterations");

    let warm = client
        .request(&schedule_request_line("warm", &design, &opts, None))
        .expect("response arrives");
    assert!(warm.is_ok(), "{warm:?}");
    assert_eq!(warm.cache(), Some("hit"));
    assert_eq!(
        stat(&mut client, "ifds_iterations"),
        after_cold,
        "a warm hit must perform zero IFDS iterations"
    );
    assert_eq!(warm.output(), cold.output());
    server.shutdown();
    server.wait().unwrap();
}

/// The installed binaries round-trip: `tcms serve` boots and announces
/// its address, `tcms client schedule` gets the schedule, `tcms client
/// shutdown` stops the daemon cleanly.
#[test]
fn serve_and_client_binaries_round_trip() {
    let bin = env!("CARGO_BIN_EXE_tcms");
    let mut daemon = Proc::new(bin)
        .args(["serve", "--listen", "127.0.0.1:0", "--workers", "1"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon spawns");
    let mut banner = String::new();
    // Keep the pipe alive until the daemon exits: its farewell line must
    // not hit a closed stdout.
    let mut daemon_stdout = BufReader::new(daemon.stdout.take().expect("piped stdout"));
    daemon_stdout
        .read_line(&mut banner)
        .expect("daemon announces itself");
    let addr = banner
        .trim()
        .strip_prefix("tcms-serve listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .to_owned();

    let schedule = Proc::new(bin)
        .args([
            "client",
            &addr,
            "schedule",
            &design_path("paper_table1.dfg"),
            "--all-global",
            "5",
            "--verify",
            "2",
        ])
        .output()
        .expect("client runs");
    assert!(
        schedule.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&schedule.stderr)
    );
    let out = String::from_utf8_lossy(&schedule.stdout);
    assert!(out.contains("conflict-free"), "{out}");
    assert!(out.contains("total area: 14"), "{out}");

    let stop = Proc::new(bin)
        .args(["client", &addr, "shutdown"])
        .output()
        .expect("client runs");
    assert!(stop.status.success());
    let status = daemon.wait().expect("daemon exits");
    assert!(status.success(), "daemon exit: {status:?}");
    let mut farewell = String::new();
    daemon_stdout.read_line(&mut farewell).expect("farewell");
    assert_eq!(farewell.trim(), "tcms-serve shut down");
}

/// A mixed hit/miss/error workload captured in the journal must (a)
/// record the exact disposition/outcome sequence, and (b) replay
/// bit-identically against a fresh daemon.
#[test]
fn journal_captures_mixed_workload_and_replays_bit_identically() {
    let dir = std::env::temp_dir().join(format!("tcms_e2e_journal_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::start(ServeConfig {
        listen: "127.0.0.1:0".into(),
        workers: 2,
        journal_dir: Some(dir.clone()),
        ..ServeConfig::default()
    })
    .expect("daemon starts");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let design_a = std::fs::read_to_string(design_path("paper_table1.dfg")).unwrap();
    let design_b = "resource add delay=1 area=1\nprocess P\nblock body time=4\nop a0 add\n";
    let opts = ScheduleOptions {
        all_global: Some(5),
        ..ScheduleOptions::default()
    };
    // miss, hit, miss, hit, malformed — a single pipelined client keeps
    // the order deterministic.
    let mut originals = Vec::new();
    for (id, design) in [
        ("a1", design_a.as_str()),
        ("a2", design_a.as_str()),
        ("b1", design_b),
        ("b2", design_b),
        ("bad", "resource add delay=zero"),
    ] {
        let line = schedule_request_line(id, design, &opts, None);
        let resp = client.request(&line).expect("response arrives");
        originals.push((line, resp));
    }
    server.shutdown();
    server.wait().unwrap();

    let path = tcms::serve::journal::journal_path(&dir);
    let (records, report) = tcms::serve::load_journal(&path).expect("journal loads");
    assert_eq!((report.loaded, report.skipped), (5, 0));
    assert!(!report.torn_tail);
    let sequence: Vec<_> = records
        .iter()
        .map(|r| (r.outcome.as_str(), r.disposition.as_deref(), r.code))
        .collect();
    assert_eq!(
        sequence,
        vec![
            ("ok", Some("miss"), 0),
            ("ok", Some("hit"), 0),
            ("ok", Some("miss"), 0),
            ("ok", Some("hit"), 0),
            ("malformed", None, 4),
        ],
        "the journal records the exact disposition sequence"
    );
    // Both cached designs share config fingerprints but not spec hashes.
    assert_eq!(records[0].spec, records[1].spec);
    assert_ne!(records[0].spec, records[2].spec);
    assert!(records[4].spec.is_none());

    // Replay the journaled raw lines against a *fresh* daemon: every
    // response must be bit-identical to the original run.
    let replay_server = start_server();
    let mut replay_client = Client::connect(replay_server.local_addr()).expect("connect");
    for (record, (line, original)) in records.iter().zip(&originals) {
        assert_eq!(&record.request, line, "raw request preserved verbatim");
        let replayed = replay_client
            .request(&record.request)
            .expect("replay response arrives");
        assert_eq!(
            replayed.output(),
            original.output(),
            "replayed output is bit-identical"
        );
        match (&replayed.error, &original.error) {
            (None, None) => {}
            (Some((rc, rn, _)), Some((oc, on, _))) => {
                assert_eq!((rc, rn), (oc, on), "error class/code preserved");
            }
            other => panic!("replay outcome diverged: {other:?}"),
        }
    }
    replay_server.shutdown();
    replay_server.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn final line — the crash artifact — is skipped with a warning
/// flag by both the lenient loader and the strict validator, and a
/// reopened writer truncates it before appending.
#[test]
fn truncated_journal_tail_is_skipped_and_flagged() {
    let dir = std::env::temp_dir().join(format!("tcms_e2e_torn_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::start(ServeConfig {
        listen: "127.0.0.1:0".into(),
        workers: 1,
        journal_dir: Some(dir.clone()),
        ..ServeConfig::default()
    })
    .expect("daemon starts");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let design = std::fs::read_to_string(design_path("paper_table1.dfg")).unwrap();
    let opts = ScheduleOptions {
        all_global: Some(5),
        ..ScheduleOptions::default()
    };
    for id in ["x1", "x2"] {
        assert!(client
            .request(&schedule_request_line(id, &design, &opts, None))
            .expect("response")
            .is_ok());
    }
    server.shutdown();
    server.wait().unwrap();

    // Simulate a crash mid-append.
    let path = tcms::serve::journal::journal_path(&dir);
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(b"{\"seq\":2,\"ts_us\":1,\"acti").unwrap();
    }
    let content = std::fs::read_to_string(&path).unwrap();
    let check = tcms::obs::validate_journal(&content).expect("strict validator tolerates the tail");
    assert_eq!(check.records, 2);
    assert!(check.torn_tail, "validator flags the torn tail");
    let (records, report) = tcms::serve::load_journal(&path).expect("lenient loader");
    assert_eq!(records.len(), 2);
    assert_eq!((report.loaded, report.skipped), (2, 1));
    assert!(report.torn_tail, "loader flags the torn tail");

    // Recovery: a restarted daemon truncates the tear and continues the
    // sequence without gluing onto the half-written line.
    let server = Server::start(ServeConfig {
        listen: "127.0.0.1:0".into(),
        workers: 1,
        journal_dir: Some(dir.clone()),
        ..ServeConfig::default()
    })
    .expect("daemon restarts over torn journal");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    assert!(client
        .request(&schedule_request_line("x3", &design, &opts, None))
        .expect("response")
        .is_ok());
    server.shutdown();
    server.wait().unwrap();
    let (records, report) = tcms::serve::load_journal(&path).expect("journal loads clean");
    assert!(!report.torn_tail);
    assert_eq!(
        records.iter().map(|r| r.seq).collect::<Vec<_>>(),
        vec![0, 1, 2],
        "sequence continues across the recovered tear"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// An unknown action comes back as the typed `unknown-action`/404 wire
/// error — never a dropped connection — and the daemon keeps serving.
#[test]
fn unknown_action_gets_typed_404_and_daemon_survives() {
    let server = start_server();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let resp = client
        .request(r#"{"id":"f","action":"frobnicate"}"#)
        .expect("response arrives");
    let (class, code, message) = resp.error.clone().expect("typed error");
    assert_eq!((class.as_str(), code), ("unknown-action", 404));
    assert!(message.contains("frobnicate"), "{message}");
    assert!(client
        .request(&control_request_line("alive", "ping"))
        .expect("ping after rejection")
        .is_ok());
    server.shutdown();
    server.wait().unwrap();
}

/// `tcms stats` renders the live registry: headline counts, per-shard
/// cache occupancy and the metric summary lines all appear.
#[test]
fn stats_subcommand_renders_live_introspection() {
    let server = start_server();
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let design = std::fs::read_to_string(design_path("paper_table1.dfg")).unwrap();
    let opts = ScheduleOptions {
        all_global: Some(5),
        ..ScheduleOptions::default()
    };
    for id in ["s1", "s2"] {
        assert!(client
            .request(&schedule_request_line(id, &design, &opts, None))
            .expect("response")
            .is_ok());
    }
    // `--timeout-ms` bounds the stats round-trip; against a healthy
    // daemon it must not change the outcome.
    let rendered = run(&Command::Stats {
        addr,
        timeout_ms: Some(2_000),
    })
    .expect("stats renders");
    for needle in [
        "daemon:",
        "worker panics",
        "worker restarts",
        "cache:",
        "hit rate",
        "shard",
        "journal:",
        "serve.requests.schedule",
        "serve.cache.hit",
        "serve.exec_us.miss",
        "serve.queue_wait_us",
    ] {
        assert!(
            rendered.contains(needle),
            "missing {needle:?} in:\n{rendered}"
        );
    }
    server.shutdown();
    server.wait().unwrap();
}

/// Every way a cache snapshot can rot on disk — a flipped bit, a
/// truncated tail, a zero-length file — must be detected by the
/// checksum trailer, quarantined to `cache.jsonl.corrupt`, and survived
/// with a cold start: the restarted daemon recomputes (miss), re-saves,
/// and serves hits again.
#[test]
fn corrupt_snapshots_quarantine_and_daemon_starts_cold() {
    use tcms::serve::persist::{quarantine_path, snapshot_path};
    let design = std::fs::read_to_string(design_path("paper_table1.dfg")).unwrap();
    let opts = ScheduleOptions {
        all_global: Some(5),
        ..ScheduleOptions::default()
    };
    type Corruptor = fn(&std::path::Path);
    let corruptions: [(&str, Corruptor); 3] = [
        ("bit-flip", |p| {
            let mut bytes = std::fs::read(p).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x01;
            std::fs::write(p, bytes).unwrap();
        }),
        ("truncate", |p| {
            let bytes = std::fs::read(p).unwrap();
            std::fs::write(p, &bytes[..bytes.len() * 2 / 3]).unwrap();
        }),
        ("zero-length", |p| {
            std::fs::write(p, b"").unwrap();
        }),
    ];
    for (tag, corrupt) in corruptions {
        let dir =
            std::env::temp_dir().join(format!("tcms_e2e_snapcorrupt_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let boot = |workers| {
            Server::start(ServeConfig {
                listen: "127.0.0.1:0".into(),
                workers,
                cache_dir: Some(dir.clone()),
                ..ServeConfig::default()
            })
            .expect("daemon starts")
        };
        // Warm a snapshot.
        let server = boot(2);
        let mut client = Client::connect(server.local_addr()).expect("connect");
        let resp = client
            .request(&schedule_request_line("warmup", &design, &opts, None))
            .expect("response");
        assert_eq!(resp.cache(), Some("miss"), "{tag}");
        server.shutdown();
        server.wait().unwrap();
        assert!(snapshot_path(&dir).exists(), "{tag}: snapshot saved");

        corrupt(&snapshot_path(&dir));

        // Restart: the rot is caught, moved aside, and the daemon is
        // cold but alive.
        let server = boot(2);
        assert!(
            quarantine_path(&dir).exists(),
            "{tag}: corrupt snapshot quarantined, not deleted"
        );
        assert_eq!(server.counter("serve.snapshot.quarantined"), 1, "{tag}");
        let mut client = Client::connect(server.local_addr()).expect("connect");
        for (id, expected) in [("cold", "miss"), ("rewarmed", "hit")] {
            let resp = client
                .request(&schedule_request_line(id, &design, &opts, None))
                .expect("response");
            assert!(resp.is_ok(), "{tag}/{id}: {resp:?}");
            assert_eq!(resp.cache(), Some(expected), "{tag}/{id}");
        }
        server.shutdown();
        server.wait().unwrap();

        // The re-saved snapshot is intact: one more boot loads it warm.
        let server = boot(1);
        let mut client = Client::connect(server.local_addr()).expect("connect");
        let resp = client
            .request(&schedule_request_line("reloaded", &design, &opts, None))
            .expect("response");
        assert_eq!(resp.cache(), Some("hit"), "{tag}: snapshot round-trips");
        server.shutdown();
        server.wait().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// With `--journal-rotate-bytes`, a busy daemon seals and rotates its
/// journal mid-run; every sealed segment passes the strict validator,
/// and the directory loader reassembles the full uninterrupted history.
#[test]
fn journal_rotation_seals_segments_under_live_load() {
    let dir = std::env::temp_dir().join(format!("tcms_e2e_rotate_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::start(ServeConfig {
        listen: "127.0.0.1:0".into(),
        workers: 1,
        journal_dir: Some(dir.clone()),
        journal_rotate_bytes: 2_048,
        ..ServeConfig::default()
    })
    .expect("daemon starts");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let design = std::fs::read_to_string(design_path("paper_table1.dfg")).unwrap();
    let opts = ScheduleOptions {
        all_global: Some(5),
        ..ScheduleOptions::default()
    };
    let rounds = 12;
    for i in 0..rounds {
        assert!(client
            .request(&schedule_request_line(
                &format!("r{i}"),
                &design,
                &opts,
                None
            ))
            .expect("response")
            .is_ok());
    }
    let rotated = server.journal_stats().expect("journal enabled").rotated;
    assert!(rotated >= 1, "the workload crossed the rotation threshold");
    server.shutdown();
    server.wait().unwrap();

    for n in 1..=rotated {
        let content = std::fs::read_to_string(tcms::serve::journal::rotated_path(&dir, n)).unwrap();
        let check = tcms::obs::validate_journal(&content)
            .unwrap_or_else(|e| panic!("segment {n} fails validation: {e}"));
        assert!(check.sealed, "segment {n} carries its seal trailer");
        assert!(!check.torn_tail);
    }
    let (records, report) = tcms::serve::load_journal_dir(&dir).expect("directory loads");
    assert_eq!(report.loaded, rounds, "no record lost to rotation");
    assert_eq!(
        records.iter().map(|r| r.seq).collect::<Vec<_>>(),
        (0..rounds as u64).collect::<Vec<_>>(),
        "one gapless sequence across all segments"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A zero-length live journal — the classic crash-at-create artifact —
/// is quarantined on boot; the daemon starts with a fresh journal and
/// keeps recording.
#[test]
fn zero_length_journal_quarantines_and_daemon_boots() {
    let dir = std::env::temp_dir().join(format!("tcms_e2e_jnlzero_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(tcms::serve::journal::journal_path(&dir), b"").unwrap();
    let server = Server::start(ServeConfig {
        listen: "127.0.0.1:0".into(),
        workers: 1,
        journal_dir: Some(dir.clone()),
        ..ServeConfig::default()
    })
    .expect("daemon boots over the empty journal");
    assert!(
        dir.join(tcms::serve::journal::JOURNAL_CORRUPT).exists(),
        "empty journal moved aside, not deleted"
    );
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let design = std::fs::read_to_string(design_path("paper_table1.dfg")).unwrap();
    assert!(client
        .request(&schedule_request_line(
            "j0",
            &design,
            &ScheduleOptions {
                all_global: Some(5),
                ..ScheduleOptions::default()
            },
            None,
        ))
        .expect("response")
        .is_ok());
    server.shutdown();
    server.wait().unwrap();
    let (records, _) = tcms::serve::load_journal(&tcms::serve::journal::journal_path(&dir))
        .expect("fresh journal loads");
    assert_eq!(records.len(), 1, "recording resumed after quarantine");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The `--timeout-ms` client flag fails fast against a black-hole
/// address instead of hanging the CLI (the original `connect` blocked
/// indefinitely on unroutable addresses).
#[test]
fn client_timeout_flag_fails_fast_on_dead_addresses() {
    let started = std::time::Instant::now();
    // Port 1 on loopback: nothing listens; connect errors immediately
    // or times out — either way the bound is the flag, not TCP defaults.
    let err = run(&Command::Stats {
        addr: "127.0.0.1:1".into(),
        timeout_ms: Some(300),
    })
    .expect_err("no daemon there");
    assert!(started.elapsed() < std::time::Duration::from_secs(5));
    assert_eq!(err.exit_code(), 3, "transport failures are I/O errors");
}
