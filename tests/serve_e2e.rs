//! End-to-end acceptance of the `tcms-serve` daemon over real loopback
//! TCP: malformed corpus inputs come back as typed wire errors, daemon
//! responses are bit-identical to the one-shot CLI on both cache miss
//! and hit, simultaneous identical requests coalesce into a single
//! scheduler run, warm hits perform zero IFDS iterations, and the
//! installed `tcms serve` / `tcms client` binaries round-trip.

use std::io::{BufRead, BufReader};
use std::process::{Command as Proc, Stdio};
use std::sync::{Arc, Barrier};

use tcms::cli::{run, Command};
use tcms::obs::json::JsonValue;
use tcms::serve::client::{control_request_line, schedule_request_line};
use tcms::serve::{Client, ScheduleOptions, ServeConfig, Server};

fn corpus_files() -> Vec<std::path::PathBuf> {
    let dir = format!("{}/tests/corpus", env!("CARGO_MANIFEST_DIR"));
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .expect("corpus directory exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.is_file())
        .collect();
    files.sort();
    files
}

fn design_path(name: &str) -> String {
    format!("{}/designs/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn start_server() -> Server {
    Server::start(ServeConfig {
        listen: "127.0.0.1:0".into(),
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("daemon starts on loopback")
}

/// Reads one numeric field out of a `stats` response.
fn stat(client: &mut Client, field: &str) -> u64 {
    let resp = client
        .request(&control_request_line("stats", "stats"))
        .expect("stats round-trip");
    assert!(resp.is_ok(), "{resp:?}");
    let v = resp
        .body
        .get(field)
        .and_then(JsonValue::as_f64)
        .unwrap_or_else(|| panic!("stats response lacks `{field}`: {resp:?}"));
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    {
        v as u64
    }
}

/// Every malformed corpus file must come back as the same typed wire
/// error the one-shot CLI reports: class `malformed`, code 4 — never a
/// dropped connection, never a panic, never a success.
#[test]
fn corpus_replays_get_typed_malformed_errors() {
    let server = start_server();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let opts = ScheduleOptions {
        all_global: Some(5),
        ..ScheduleOptions::default()
    };
    for path in corpus_files() {
        let design = std::fs::read_to_string(&path).unwrap();
        let id = path.file_name().unwrap().to_string_lossy().into_owned();
        let resp = client
            .request(&schedule_request_line(&id, &design, &opts, None))
            .expect("response arrives");
        let (class, code, message) = resp
            .error
            .clone()
            .unwrap_or_else(|| panic!("{id}: malformed input was accepted: {resp:?}"));
        assert_eq!(class, "malformed", "{id}: {message}");
        assert_eq!(code, 4, "{id}");
        assert!(!message.is_empty(), "{id}");
    }
    // The daemon survived twenty poison pills and still answers.
    assert!(client
        .request(&control_request_line("alive", "ping"))
        .expect("ping after corpus")
        .is_ok());
    server.shutdown();
    server.wait().unwrap();
}

/// The daemon's schedule output must match the one-shot CLI byte for
/// byte, on the cold-cache miss AND on the warm-cache hit.
#[test]
fn daemon_output_is_bit_identical_to_one_shot_cli() {
    let input = design_path("paper_table1.dfg");
    let one_shot = run(&Command::Schedule {
        input: input.clone(),
        all_global: Some(5),
        globals: vec![],
        gantt: true,
        verify: 2,
        save: None,
        trace: None,
        metrics: false,
        timeline: None,
        degrade: false,
        threads: None,
        cache_dir: None,
    })
    .unwrap();

    let server = start_server();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let design = std::fs::read_to_string(&input).unwrap();
    let opts = ScheduleOptions {
        all_global: Some(5),
        gantt: true,
        verify: 2,
        ..ScheduleOptions::default()
    };
    for (round, expected_cache) in [("cold", "miss"), ("warm", "hit")] {
        let resp = client
            .request(&schedule_request_line(round, &design, &opts, None))
            .expect("response arrives");
        assert!(resp.is_ok(), "{round}: {resp:?}");
        assert_eq!(resp.cache(), Some(expected_cache), "{round}");
        assert_eq!(resp.output(), Some(one_shot.as_str()), "{round}");
    }
    server.shutdown();
    server.wait().unwrap();
}

/// Two identical requests fired simultaneously must produce exactly one
/// scheduler run: the loser of the single-flight race waits for the
/// winner's result instead of recomputing it.
#[test]
fn simultaneous_identical_requests_run_the_scheduler_once() {
    let server = start_server();
    let addr = server.local_addr();
    let design = std::fs::read_to_string(design_path("paper_table1.dfg")).unwrap();
    let barrier = Arc::new(Barrier::new(2));
    let workers: Vec<_> = (0..2)
        .map(|i| {
            let design = design.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let line = schedule_request_line(
                    &format!("race-{i}"),
                    &design,
                    &ScheduleOptions {
                        all_global: Some(5),
                        ..ScheduleOptions::default()
                    },
                    None,
                );
                barrier.wait();
                client.request(&line).expect("response arrives")
            })
        })
        .collect();
    let responses: Vec<_> = workers.into_iter().map(|h| h.join().unwrap()).collect();
    for resp in &responses {
        assert!(resp.is_ok(), "{resp:?}");
    }
    // Both answers carry the same bytes regardless of who computed them.
    assert_eq!(responses[0].output(), responses[1].output());

    let mut client = Client::connect(addr).expect("connect");
    assert_eq!(
        stat(&mut client, "scheduler_runs"),
        1,
        "single-flight must collapse the race to one run"
    );
    server.shutdown();
    server.wait().unwrap();
}

/// A warm-cache hit must not touch the scheduler at all: the IFDS
/// iteration counter stays flat while the hit counter advances.
#[test]
fn warm_hit_performs_zero_ifds_iterations() {
    let server = start_server();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let design = std::fs::read_to_string(design_path("paper_table1.dfg")).unwrap();
    let opts = ScheduleOptions {
        all_global: Some(5),
        ..ScheduleOptions::default()
    };

    let cold = client
        .request(&schedule_request_line("cold", &design, &opts, None))
        .expect("response arrives");
    assert!(cold.is_ok(), "{cold:?}");
    assert_eq!(cold.cache(), Some("miss"));
    let after_cold = stat(&mut client, "ifds_iterations");
    assert!(after_cold > 0, "a fresh run must report its iterations");

    let warm = client
        .request(&schedule_request_line("warm", &design, &opts, None))
        .expect("response arrives");
    assert!(warm.is_ok(), "{warm:?}");
    assert_eq!(warm.cache(), Some("hit"));
    assert_eq!(
        stat(&mut client, "ifds_iterations"),
        after_cold,
        "a warm hit must perform zero IFDS iterations"
    );
    assert_eq!(warm.output(), cold.output());
    server.shutdown();
    server.wait().unwrap();
}

/// The installed binaries round-trip: `tcms serve` boots and announces
/// its address, `tcms client schedule` gets the schedule, `tcms client
/// shutdown` stops the daemon cleanly.
#[test]
fn serve_and_client_binaries_round_trip() {
    let bin = env!("CARGO_BIN_EXE_tcms");
    let mut daemon = Proc::new(bin)
        .args(["serve", "--listen", "127.0.0.1:0", "--workers", "1"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon spawns");
    let mut banner = String::new();
    // Keep the pipe alive until the daemon exits: its farewell line must
    // not hit a closed stdout.
    let mut daemon_stdout = BufReader::new(daemon.stdout.take().expect("piped stdout"));
    daemon_stdout
        .read_line(&mut banner)
        .expect("daemon announces itself");
    let addr = banner
        .trim()
        .strip_prefix("tcms-serve listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .to_owned();

    let schedule = Proc::new(bin)
        .args([
            "client",
            &addr,
            "schedule",
            &design_path("paper_table1.dfg"),
            "--all-global",
            "5",
            "--verify",
            "2",
        ])
        .output()
        .expect("client runs");
    assert!(
        schedule.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&schedule.stderr)
    );
    let out = String::from_utf8_lossy(&schedule.stdout);
    assert!(out.contains("conflict-free"), "{out}");
    assert!(out.contains("total area: 14"), "{out}");

    let stop = Proc::new(bin)
        .args(["client", &addr, "shutdown"])
        .output()
        .expect("client runs");
    assert!(stop.status.success());
    let status = daemon.wait().expect("daemon exits");
    assert!(status.success(), "daemon exit: {status:?}");
    let mut farewell = String::new();
    daemon_stdout.read_line(&mut farewell).expect("farewell");
    assert_eq!(farewell.trim(), "tcms-serve shut down");
}
