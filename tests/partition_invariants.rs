//! Property tests of the feedback-guided partitioned driver: whatever
//! feasible system we decompose, the merged schedule must satisfy every
//! structural and execution invariant of a monolithic run, a single
//! partition must *be* the monolithic run bit for bit, and neither
//! promise may bend when the worker-thread count changes.

use std::sync::{Mutex, MutexGuard};

use proptest::prelude::*;

use tcms::fds::{threads, FdsConfig};
use tcms::ir::generators::{random_system, RandomSystemConfig};
use tcms::modulo::{
    check_execution, compute_report, random_activations, schedule_partitioned, ModuloScheduler,
    PartitionConfig, PartitionCount, SharingSpec,
};

static THREADS: Mutex<()> = Mutex::new(());

fn threads_lock() -> MutexGuard<'static, ()> {
    THREADS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn fixed(k: usize) -> PartitionConfig {
    PartitionConfig {
        count: PartitionCount::Fixed(k),
        ..PartitionConfig::default()
    }
}

fn partition_config() -> impl Strategy<Value = (RandomSystemConfig, u64, u32, usize)> {
    (
        2usize..6, // processes
        2usize..5, // layers
        1usize..4, // max ops per layer
        0u64..500, // system seed
        3u32..7,   // period
        1usize..4, // partitions
    )
        .prop_map(|(procs, layers, maxops, seed, period, parts)| {
            (
                RandomSystemConfig {
                    processes: procs,
                    blocks_per_process: 1,
                    layers,
                    ops_per_layer: (1, maxops),
                    edge_prob: 0.4,
                    slack: 2.0,
                    type_weights: [3, 1, 2],
                },
                seed,
                period,
                parts,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The merged schedule of any partition count passes the same
    /// verification a monolithic schedule must: structural validity plus
    /// simulated executions against the full-spec authorization pools.
    #[test]
    fn merged_partitioned_schedules_verify((cfg, seed, period, parts) in partition_config()) {
        let (system, _) = random_system(&cfg, seed).unwrap();
        let spec = SharingSpec::all_global(&system, period);
        prop_assume!(tcms::modulo::period::spacing_feasible(&system, &spec));
        prop_assume!(ModuloScheduler::new(&system, spec.clone()).unwrap().run().is_ok());
        let out = schedule_partitioned(&system, spec.clone(), &FdsConfig::default(), &fixed(parts))
            .unwrap();
        prop_assert_eq!(out.schedule.assigned(), system.num_ops());
        out.schedule.verify(&system).unwrap();
        let report = compute_report(&system, &spec, &out.schedule);
        for act_seed in 0..3 {
            let acts = random_activations(&system, &spec, &out.schedule, 3, act_seed);
            check_execution(&system, &spec, &out.schedule, &report, &acts).unwrap();
        }
    }

    /// `--partition 1` is not "almost" the monolithic scheduler — it is
    /// the monolithic scheduler: identical start times, identical
    /// iteration count.
    #[test]
    fn single_partition_equals_monolithic((cfg, seed, period, _parts) in partition_config()) {
        let (system, _) = random_system(&cfg, seed).unwrap();
        let spec = SharingSpec::all_global(&system, period);
        prop_assume!(tcms::modulo::period::spacing_feasible(&system, &spec));
        let Ok(mono) = ModuloScheduler::new(&system, spec.clone()).unwrap().run() else {
            return Ok(());
        };
        let part = schedule_partitioned(&system, spec, &FdsConfig::default(), &fixed(1)).unwrap();
        prop_assert_eq!(part.partitions, 1);
        prop_assert_eq!(mono.schedule.starts(), part.schedule.starts());
        prop_assert_eq!(mono.iterations, part.iterations());
    }
}

/// Both the partitioned merge and its single-partition degeneration are
/// pinned across worker-thread counts: the decomposition parallelism
/// must never leak the machine into the result.
#[test]
fn partitioned_results_are_bit_identical_across_thread_counts() {
    let _guard = threads_lock();
    let cfg = RandomSystemConfig {
        processes: 5,
        blocks_per_process: 1,
        layers: 4,
        ops_per_layer: (1, 3),
        edge_prob: 0.4,
        slack: 2.5,
        type_weights: [2, 1, 2],
    };
    for seed in 0..4u64 {
        let (system, _) = random_system(&cfg, seed).unwrap();
        let spec = SharingSpec::all_global(&system, 4);
        threads::set(1);
        let mono_ref = ModuloScheduler::new(&system, spec.clone())
            .unwrap()
            .run()
            .unwrap();
        let part_ref =
            schedule_partitioned(&system, spec.clone(), &FdsConfig::default(), &fixed(2)).unwrap();
        for n in [1usize, 2, 4] {
            threads::set(n);
            let part =
                schedule_partitioned(&system, spec.clone(), &FdsConfig::default(), &fixed(2))
                    .unwrap();
            assert_eq!(
                part.schedule.starts(),
                part_ref.schedule.starts(),
                "seed {seed}: {n} threads changed the merged schedule"
            );
            let one = schedule_partitioned(&system, spec.clone(), &FdsConfig::default(), &fixed(1))
                .unwrap();
            assert_eq!(
                one.schedule.starts(),
                mono_ref.schedule.starts(),
                "seed {seed}: --partition 1 at {n} threads diverged from monolithic"
            );
            assert_eq!(one.iterations(), mono_ref.iterations);
        }
        threads::set(0);
    }
}
