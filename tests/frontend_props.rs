//! Property tests of the behavioral frontend: random expression programs
//! always lower to valid, schedulable systems with the expected operation
//! bounds.

use proptest::prelude::*;

use tcms::fds::{schedule_system_local, FdsConfig};
use tcms::ir::frontend::{compile, Expr};
use tcms::ir::generators::paper_library;

/// Random expression trees over a small variable pool.
fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        prop::sample::select(vec!["a", "b", "c", "d"]).prop_map(|v| Expr::Var(v.into())),
        (0u64..10).prop_map(Expr::Const),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::Add(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::Sub(Box::new(l), Box::new(r))),
            (inner.clone(), inner).prop_map(|(l, r)| Expr::Mul(Box::new(l), Box::new(r))),
        ]
    })
}

/// Renders an expression back to surface syntax (fully parenthesised).
fn render(e: &Expr) -> String {
    match e {
        Expr::Var(v) => v.clone(),
        Expr::Const(n) => n.to_string(),
        Expr::Add(l, r) => format!("({} + {})", render(l), render(r)),
        Expr::Sub(l, r) => format!("({} - {})", render(l), render(r)),
        Expr::Mul(l, r) => format!("({} * {})", render(l), render(r)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_programs_compile_and_schedule(exprs in prop::collection::vec(expr_strategy(), 1..4)) {
        let mut src = String::from("process p time=200 {\n");
        for (i, e) in exprs.iter().enumerate() {
            src.push_str(&format!("  v{i} := {};\n", render(e)));
        }
        src.push_str("}\n");
        let (lib, _) = paper_library();
        let sys = compile(&src, lib).unwrap();
        // CSE can only shrink the op count relative to the tree size.
        let tree_ops: usize = exprs.iter().map(Expr::op_count).sum();
        prop_assert!(sys.num_ops() <= tree_ops);
        // Whatever came out must be schedulable end to end.
        if sys.num_ops() > 0 {
            let out = schedule_system_local(&sys, &FdsConfig::default()).unwrap();
            out.schedule.verify(&sys).unwrap();
        }
    }

    #[test]
    fn compilation_is_deterministic(exprs in prop::collection::vec(expr_strategy(), 1..3)) {
        let mut src = String::from("process p time=200 {\n");
        for (i, e) in exprs.iter().enumerate() {
            src.push_str(&format!("  v{i} := {};\n", render(e)));
        }
        src.push_str("}\n");
        let compile_once = || {
            let (lib, _) = paper_library();
            tcms::ir::display::to_dfg(&compile(&src, lib).unwrap())
        };
        prop_assert_eq!(compile_once(), compile_once());
    }

    #[test]
    fn cse_never_changes_the_critical_path_upper_bound(e in expr_strategy()) {
        // A single expression's critical path is bounded by the depth-wise
        // worst case: every level a multiplication (delay 2).
        let src = format!("process p time=500 {{ y := {}; }}", render(&e));
        let (lib, _) = paper_library();
        let sys = compile(&src, lib).unwrap();
        if sys.num_ops() > 0 {
            let blk = sys.block_ids().next().unwrap();
            let depth = expr_depth(&e);
            prop_assert!(sys.critical_path(blk) <= 2 * depth);
        }
    }
}

fn expr_depth(e: &Expr) -> u32 {
    match e {
        Expr::Var(_) | Expr::Const(_) => 0,
        Expr::Add(l, r) | Expr::Sub(l, r) | Expr::Mul(l, r) => 1 + expr_depth(l).max(expr_depth(r)),
    }
}
