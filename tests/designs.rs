//! The checked-in `designs/` inputs stay loadable, schedulable and in
//! sync with the generators, and the CLI round-trips them.

use tcms::cli::{run, Command};
use tcms::ir::display::to_dfg;
use tcms::ir::generators::paper_system;
use tcms::ir::parse::parse_system;

fn design_path(name: &str) -> String {
    format!("{}/designs/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn checked_in_table1_matches_generator() {
    let text = std::fs::read_to_string(design_path("paper_table1.dfg")).unwrap();
    let parsed = parse_system(&text).unwrap();
    let (generated, _) = paper_system().unwrap();
    assert_eq!(
        to_dfg(&parsed),
        to_dfg(&generated),
        "regenerate with gen_designs"
    );
}

#[test]
fn cli_schedules_checked_in_dfg() {
    let out = run(&Command::Schedule {
        input: design_path("paper_table1.dfg"),
        all_global: Some(5),
        globals: vec![],
        gantt: false,
        verify: 3,
        save: None,
        trace: None,
        metrics: false,
        timeline: None,
        degrade: false,
        partition: None,
        threads: None,
        cache_dir: None,
    })
    .unwrap();
    assert!(out.contains("conflict-free"), "{out}");
    assert!(out.contains("total area: 14"), "{out}");
}

#[test]
fn cli_schedules_checked_in_behavioral() {
    let out = run(&Command::Schedule {
        input: design_path("diffeq_pair.hls"),
        all_global: Some(5),
        globals: vec![],
        gantt: false,
        verify: 3,
        save: None,
        trace: None,
        metrics: false,
        timeline: None,
        degrade: false,
        partition: None,
        threads: None,
        cache_dir: None,
    })
    .unwrap();
    // Two diffeq solvers share a single multiplier pool.
    assert!(out.contains("mul"), "{out}");
    assert!(out.contains("conflict-free"), "{out}");
}

#[test]
fn cli_emits_vhdl_for_checked_in_design() {
    let out = run(&Command::Vhdl {
        input: design_path("diffeq_pair.hls"),
        all_global: Some(5),
        globals: vec![],
        width: 12,
    })
    .unwrap();
    assert!(out.contains("entity tcms_top is"));
    assert!(out.contains("unsigned(11 downto 0)"));
    assert!(out.contains("(slot_cnt mod 5)"));
}
