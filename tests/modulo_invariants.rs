//! Property tests of the paper's central soundness claim: whatever
//! feasible system we schedule and however its blocks are (grid-aligned)
//! activated, the computed shared instance counts are never exceeded.

use proptest::prelude::*;

use tcms::fds::FdsConfig;
use tcms::ir::generators::{random_system, RandomSystemConfig};
use tcms::modulo::{
    check_execution, compute_report, random_activations, ModuloScheduler, SharingSpec,
};

fn small_config() -> impl Strategy<Value = (RandomSystemConfig, u64, u32)> {
    (
        2usize..5,  // processes
        1usize..3,  // blocks per process
        2usize..5,  // layers
        1usize..4,  // max ops per layer
        0u64..1000, // system seed
        2u32..7,    // period
    )
        .prop_map(|(procs, blocks, layers, maxops, seed, period)| {
            (
                RandomSystemConfig {
                    processes: procs,
                    blocks_per_process: blocks,
                    layers,
                    ops_per_layer: (1, maxops),
                    edge_prob: 0.4,
                    slack: 2.0,
                    type_weights: [3, 1, 2],
                },
                seed,
                period,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_systems_schedule_validly((cfg, seed, period) in small_config()) {
        let (system, _) = random_system(&cfg, seed).unwrap();
        let spec = SharingSpec::all_global(&system, period);
        prop_assume!(tcms::modulo::period::spacing_feasible(&system, &spec));
        let outcome = ModuloScheduler::new(&system, spec).unwrap().run().unwrap();
        outcome.schedule.verify(&system).unwrap();
    }

    #[test]
    fn shared_pools_never_overdrawn((cfg, seed, period) in small_config()) {
        let (system, _) = random_system(&cfg, seed).unwrap();
        let spec = SharingSpec::all_global(&system, period);
        prop_assume!(tcms::modulo::period::spacing_feasible(&system, &spec));
        let outcome = ModuloScheduler::new(&system, spec.clone()).unwrap().run().unwrap();
        let report = compute_report(&system, &spec, &outcome.schedule);
        for act_seed in 0..4 {
            let acts = random_activations(&system, &spec, &outcome.schedule, 3, act_seed);
            check_execution(&system, &spec, &outcome.schedule, &report, &acts)
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
        }
    }

    #[test]
    fn global_never_beats_local_area_by_accident_backwards(
        (cfg, seed, period) in small_config()
    ) {
        // Sharing can at worst match the local instance floor per type:
        // the shared pool never needs MORE instances than the sum of the
        // per-process peaks the local run produces for the same type.
        let (system, _) = random_system(&cfg, seed).unwrap();
        let spec = SharingSpec::all_global(&system, period);
        prop_assume!(tcms::modulo::period::spacing_feasible(&system, &spec));
        let cfg_fds = FdsConfig::default();
        let global = ModuloScheduler::new(&system, spec.clone())
            .unwrap()
            .with_config(cfg_fds.clone())
            .run().unwrap();
        let g = global.report();
        for k in spec.global_types(&system) {
            let worst: u32 = spec
                .group(k)
                .unwrap()
                .iter()
                .map(|&p| {
                    system
                        .process(p)
                        .blocks()
                        .iter()
                        .map(|&b| {
                            // Upper bound: all ops of the type in the block
                            // could in principle collide in one slot.
                            system.ops_of_type(b, k).len() as u32
                        })
                        .max()
                        .unwrap_or(0)
                })
                .sum();
            prop_assert!(g.instances(k) <= worst.max(1));
        }
    }

    #[test]
    fn authorization_tables_cover_actual_usage((cfg, seed, period) in small_config()) {
        let (system, _) = random_system(&cfg, seed).unwrap();
        let spec = SharingSpec::all_global(&system, period);
        prop_assume!(tcms::modulo::period::spacing_feasible(&system, &spec));
        let outcome = ModuloScheduler::new(&system, spec.clone()).unwrap().run().unwrap();
        for k in spec.global_types(&system) {
            let table = tcms::modulo::AuthorizationTable::from_schedule(
                &system, &spec, &outcome.schedule, k,
            )
            .unwrap();
            for &p in spec.group(k).unwrap() {
                for &b in system.process(p).blocks() {
                    let usage = outcome.schedule.usage(&system, b, k);
                    for (t, &u) in usage.iter().enumerate() {
                        prop_assert!(u <= table.granted(p, t as u32 % period));
                    }
                }
            }
            // The pool equals the worst slot total, never more.
            prop_assert_eq!(
                table.pool(),
                table.slot_totals().into_iter().max().unwrap_or(0)
            );
        }
    }
}
