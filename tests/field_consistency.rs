//! Property test: the incrementally maintained spring field of the
//! modified force model stays bit-equal to a from-scratch rebuild across
//! arbitrary commit sequences. This is the invariant the whole modified
//! force rests on — a drifting field would silently corrupt every force.

use proptest::prelude::*;

use tcms::fds::{FdsConfig, ForceEvaluator};
use tcms::ir::generators::{random_system, RandomSystemConfig};
use tcms::ir::{FrameTable, TimeFrame};
use tcms::modulo::{ModuloEvaluator, ModuloField, SharingSpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn incremental_field_matches_rebuild(
        seed in 0u64..500,
        period in 2u32..5,
        commits in prop::collection::vec((0usize..64, 0u32..4), 1..12),
    ) {
        let cfg = RandomSystemConfig {
            processes: 3,
            blocks_per_process: 1,
            layers: 3,
            ops_per_layer: (1, 3),
            edge_prob: 0.4,
            slack: 2.5,
            type_weights: [2, 1, 2],
        };
        let (system, _) = random_system(&cfg, seed).unwrap();
        let spec = SharingSpec::all_global(&system, period);
        prop_assume!(tcms::modulo::period::spacing_feasible(&system, &spec));

        let mut frames = FrameTable::initial(&system);
        let mut eval =
            ModuloEvaluator::new(&system, spec.clone(), FdsConfig::default(), &frames);

        // Apply a sequence of random single-op frame shrinks via commit.
        for (op_pick, side) in commits {
            let ops: Vec<_> = system.op_ids().collect();
            let o = ops[op_pick % ops.len()];
            let fr = frames.get(o);
            if fr.is_fixed() {
                continue;
            }
            let nf = if side % 2 == 0 {
                TimeFrame::new(fr.asap + 1, fr.alap)
            } else {
                TimeFrame::new(fr.asap, fr.alap - 1)
            };
            // Propagate the shrink to keep the table consistent.
            let block = system.op(o).block();
            let solved = tcms::ir::frames::constrained_frames(&system, block, |q| {
                if q == o { nf } else { frames.get(q) }
            })
            .expect("shrinking within a consistent frame stays feasible");
            let changed: Vec<_> = solved
                .into_iter()
                .filter(|&(q, f)| f != frames.get(q))
                .collect();
            eval.commit(&frames, &changed);
            for &(q, f) in &changed {
                frames.set(q, f);
            }
        }

        // The incremental field must equal a from-scratch rebuild.
        let rebuilt = ModuloField::new(&system, spec.clone(), &frames);
        for k in spec.global_types(&system) {
            let inc = eval.field().group_profile(k);
            let full = rebuilt.group_profile(k);
            for (slot, (a, b)) in inc.iter().zip(full).enumerate() {
                prop_assert!(
                    (a - b).abs() < 1e-9,
                    "type {k} slot {slot}: incremental {a} vs rebuilt {b}"
                );
            }
        }
        // And classic per-block distributions agree too.
        for (bid, block) in system.blocks() {
            for k in system.types_used_by_block(bid) {
                let inc = eval.field().distributions().get(bid, k);
                let full = rebuilt.distributions().get(bid, k);
                for (t, (a, b)) in inc.iter().zip(full).enumerate() {
                    prop_assert!(
                        (a - b).abs() < 1e-9,
                        "block {} type {k} t={t}",
                        block.name()
                    );
                }
            }
        }
    }
}
