//! Property test: the incrementally maintained spring field of the
//! modified force model stays bit-equal to a from-scratch rebuild across
//! arbitrary commit sequences. This is the invariant the whole modified
//! force rests on — a drifting field would silently corrupt every force.
//!
//! The slab refactor adds a second family of properties: the branch-free
//! fold kernels (and the fused tentative-delta path built from them) must
//! be *bit-identical* to the seed's jagged branchy folds, which are kept
//! behind the `naive-oracle` feature exactly for this comparison. Ragged
//! profile lengths, `ρ = 1` and `time_range < ρ` are all in range.

use proptest::prelude::*;

use tcms::fds::{FdsConfig, ForceEvaluator};
use tcms::ir::generators::{random_system, RandomSystemConfig};
use tcms::ir::{FrameTable, TimeFrame};
use tcms::modulo::{kernel, ModuloEvaluator, ModuloField, SharingSpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The chunked modulo-max kernel equals the seed's strided branchy
    /// fold bitwise, for every (ragged) length/period combination.
    /// (The vendored proptest only generates integer ranges, so values
    /// are dyadic rationals — exact in f64, which is what bitwise
    /// comparison wants anyway.)
    #[test]
    fn modulo_max_kernel_matches_legacy_bitwise(
        raw in prop::collection::vec(0u32..64, 0..40),
        period in 1u32..12,
    ) {
        let dist: Vec<f64> = raw.iter().map(|&v| f64::from(v) * 0.0625).collect();
        let legacy = kernel::modulo_max_legacy(&dist, period);
        let mut out = vec![0.0; period as usize];
        kernel::modulo_max_into(&dist, &mut out);
        for (slot, (a, b)) in out.iter().zip(&legacy).enumerate() {
            prop_assert_eq!(
                a.to_bits(), b.to_bits(),
                "len {} period {period} slot {slot}: kernel {a} vs legacy {b}",
                dist.len()
            );
        }
    }

    /// The fused delta fold (`max(dist + delta)` without materializing
    /// the sum) equals materializing the sum and folding it with the
    /// legacy kernel — bitwise, including deltas shorter than the
    /// distribution and periods longer than both.
    #[test]
    fn fused_delta_fold_matches_materialized_legacy_bitwise(
        raw_dist in prop::collection::vec(0u32..64, 0..32),
        raw_delta in prop::collection::vec(0u32..64, 0..32),
        period in 1u32..12,
    ) {
        let dist: Vec<f64> = raw_dist.iter().map(|&v| f64::from(v) * 0.0625).collect();
        // Deltas in [-2, +2), signed via the raw value's parity-free split.
        let delta: Vec<f64> = raw_delta
            .iter()
            .map(|&v| (f64::from(v) - 32.0) * 0.0625)
            .collect();
        prop_assume!(delta.len() <= dist.len());
        let mut summed = dist.clone();
        for (d, x) in summed.iter_mut().zip(&delta) {
            *d += x;
        }
        let legacy = kernel::modulo_max_legacy(&summed, period);
        let mut out = vec![0.0; period as usize];
        kernel::modulo_max_delta_into(&dist, &delta, &mut out);
        for (slot, (a, b)) in out.iter().zip(&legacy).enumerate() {
            prop_assert_eq!(
                a.to_bits(), b.to_bits(),
                "len {}/{} period {period} slot {slot}: fused {a} vs legacy {b}",
                dist.len(), delta.len()
            );
        }
    }

    /// The in-place slot-max kernel equals the seed's allocating fold.
    #[test]
    fn slot_max_kernel_matches_legacy_bitwise(
        pairs in prop::collection::vec((0u32..64, 0u32..64), 0..24),
    ) {
        let a: Vec<f64> = pairs.iter().map(|&(x, _)| f64::from(x) * 0.0625).collect();
        let b: Vec<f64> = pairs.iter().map(|&(_, y)| f64::from(y) * 0.0625).collect();
        let legacy = kernel::slot_max_legacy(&a, &b);
        let mut out = a.clone();
        kernel::slot_max_into(&mut out, &b);
        for (slot, (x, y)) in out.iter().zip(&legacy).enumerate() {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "slot {slot}");
        }
    }

    /// The slab tentative-group-delta path (fused fold + shared sibling
    /// profile) equals the seed's per-candidate jagged implementation
    /// bitwise, on random systems with ragged block lengths — including
    /// `ρ = 1` and blocks whose time range is below the period.
    #[test]
    fn tentative_group_delta_matches_legacy_on_random_systems(
        seed in 0u64..500,
        period in 1u32..7,
        probe in 0usize..64,
        side in 0u32..2,
    ) {
        let cfg = RandomSystemConfig {
            processes: 3,
            blocks_per_process: 1,
            layers: 3,
            ops_per_layer: (1, 3),
            edge_prob: 0.4,
            slack: 2.5,
            type_weights: [2, 1, 2],
        };
        let (system, _) = random_system(&cfg, seed).unwrap();
        let spec = SharingSpec::all_global(&system, period);
        prop_assume!(spec.validate(&system).is_ok());
        prop_assume!(tcms::modulo::period::spacing_feasible(&system, &spec));

        let frames = FrameTable::initial(&system);
        let field = ModuloField::new(&system, spec.clone(), &frames);

        let ops: Vec<_> = system.op_ids().collect();
        let o = ops[probe % ops.len()];
        let op = system.op(o);
        let (b, k) = (op.block(), op.resource_type());
        let process = system.block(b).process();
        prop_assume!(spec.is_global_for(k, process));

        // Delta of pinning the probe op to one frame end.
        let fr = frames.get(o);
        let pin = if side == 0 { fr.asap } else { fr.alap };
        let mut delta = vec![0.0; system.block(b).time_range() as usize];
        let occ = system.occupancy(o);
        tcms::fds::prob::accumulate(&mut delta, TimeFrame::new(pin, pin), occ, 1.0);
        tcms::fds::prob::accumulate(&mut delta, fr, occ, -1.0);

        let slab = field.tentative_group_delta(b, k, &delta);
        let legacy = field.tentative_group_delta_legacy(b, k, &delta);
        for (slot, (a, l)) in slab.iter().zip(&legacy).enumerate() {
            prop_assert_eq!(
                a.to_bits(), l.to_bits(),
                "seed {seed} period {period} slot {slot}: slab {a} vs legacy {l}"
            );
        }
    }

    #[test]
    fn incremental_field_matches_rebuild(
        seed in 0u64..500,
        period in 2u32..5,
        commits in prop::collection::vec((0usize..64, 0u32..4), 1..12),
    ) {
        let cfg = RandomSystemConfig {
            processes: 3,
            blocks_per_process: 1,
            layers: 3,
            ops_per_layer: (1, 3),
            edge_prob: 0.4,
            slack: 2.5,
            type_weights: [2, 1, 2],
        };
        let (system, _) = random_system(&cfg, seed).unwrap();
        let spec = SharingSpec::all_global(&system, period);
        prop_assume!(tcms::modulo::period::spacing_feasible(&system, &spec));

        let mut frames = FrameTable::initial(&system);
        let mut eval =
            ModuloEvaluator::new(&system, spec.clone(), FdsConfig::default(), &frames);

        // Apply a sequence of random single-op frame shrinks via commit.
        for (op_pick, side) in commits {
            let ops: Vec<_> = system.op_ids().collect();
            let o = ops[op_pick % ops.len()];
            let fr = frames.get(o);
            if fr.is_fixed() {
                continue;
            }
            let nf = if side % 2 == 0 {
                TimeFrame::new(fr.asap + 1, fr.alap)
            } else {
                TimeFrame::new(fr.asap, fr.alap - 1)
            };
            // Propagate the shrink to keep the table consistent.
            let block = system.op(o).block();
            let solved = tcms::ir::frames::constrained_frames(&system, block, |q| {
                if q == o { nf } else { frames.get(q) }
            })
            .expect("shrinking within a consistent frame stays feasible");
            let changed: Vec<_> = solved
                .into_iter()
                .filter(|&(q, f)| f != frames.get(q))
                .collect();
            eval.commit(&frames, &changed);
            for &(q, f) in &changed {
                frames.set(q, f);
            }
        }

        // The incremental field must equal a from-scratch rebuild.
        let rebuilt = ModuloField::new(&system, spec.clone(), &frames);
        for k in spec.global_types(&system) {
            let inc = eval.field().group_profile(k);
            let full = rebuilt.group_profile(k);
            for (slot, (a, b)) in inc.iter().zip(full).enumerate() {
                prop_assert!(
                    (a - b).abs() < 1e-9,
                    "type {k} slot {slot}: incremental {a} vs rebuilt {b}"
                );
            }
        }
        // And classic per-block distributions agree too.
        for (bid, block) in system.blocks() {
            for k in system.types_used_by_block(bid) {
                let inc = eval.field().distributions().get(bid, k);
                let full = rebuilt.distributions().get(bid, k);
                for (t, (a, b)) in inc.iter().zip(full).enumerate() {
                    prop_assert!(
                        (a - b).abs() < 1e-9,
                        "block {} type {k} t={t}",
                        block.name()
                    );
                }
            }
        }
    }
}
