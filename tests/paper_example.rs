//! End-to-end assertions on the paper's Table-1 experiment: the shape of
//! the published result must reproduce (who wins, by roughly what factor),
//! and the winning schedule must survive binding and execution checks.

use tcms::alloc::{allocate_registers, bind_system, full_area_report};
use tcms::ir::generators::paper_system;
use tcms::modulo::{check_execution, random_activations, ModuloScheduler, SharingSpec};
use tcms::sim::{SimConfig, Simulator, Trigger};

#[test]
fn table1_headline_reproduces() {
    let (system, types) = paper_system().unwrap();
    let spec = SharingSpec::all_global(&system, 5);
    let global = ModuloScheduler::new(&system, spec).unwrap().run().unwrap();
    let local = ModuloScheduler::new(&system, SharingSpec::all_local(&system))
        .unwrap()
        .run()
        .unwrap();
    let (g, l) = (global.report(), local.report());

    // Traditional scheduling: >= 1 resource per type and process.
    assert_eq!(l.instances(types.mul), 5, "5 multipliers, one per process");
    assert_eq!(l.instances(types.sub), 2, "one subtracter per diffeq");
    assert!(l.instances(types.add) >= 5);

    // Global sharing: below the one-per-process floor. The paper reports
    // 4 adders, 1 subtracter, 3 multipliers (area 17) against 6/2/5 (28);
    // our reconstructed time budgets give the same shape.
    assert!(g.instances(types.mul) <= 3, "paper: 3 multipliers");
    assert!(g.instances(types.add) <= 4, "paper: 4 adders");
    assert!(g.instances(types.sub) <= 2, "paper: 1 subtracter");

    let ratio = l.total_area() as f64 / g.total_area() as f64;
    assert!(
        (1.3..3.0).contains(&ratio),
        "area ratio {ratio} should be near the paper's 1.65"
    );
}

#[test]
fn winning_schedule_survives_execution_and_binding() {
    let (system, _) = paper_system().unwrap();
    let spec = SharingSpec::all_global(&system, 5);
    let outcome = ModuloScheduler::new(&system, spec.clone())
        .unwrap()
        .run()
        .unwrap();
    outcome.schedule.verify(&system).unwrap();
    let report = outcome.report();

    // Random grid-aligned executions never overdraw a pool.
    for seed in 0..50 {
        let acts = random_activations(&system, &spec, &outcome.schedule, 4, seed);
        check_execution(&system, &spec, &outcome.schedule, &report, &acts)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }

    // Binding realises exactly the authorized pool sizes.
    let binding = bind_system(&system, &spec, &outcome.schedule).unwrap();
    for k in spec.global_types(&system) {
        assert_eq!(binding.instances_used(k), report.instances(k));
    }

    // And the extended area (with registers and muxes) still wins.
    let g_full = full_area_report(&system, &spec, &outcome.schedule, &binding);
    let local_spec = SharingSpec::all_local(&system);
    let local = ModuloScheduler::new(&system, local_spec.clone())
        .unwrap()
        .run()
        .unwrap();
    let l_binding = bind_system(&system, &local_spec, &local.schedule).unwrap();
    let l_full = full_area_report(&system, &local_spec, &local.schedule, &l_binding);
    assert!(g_full.total() < l_full.total());

    let _ = allocate_registers(&system, &outcome.schedule);
}

#[test]
fn simulated_reactive_execution_is_conflict_free() {
    let (system, _) = paper_system().unwrap();
    let spec = SharingSpec::all_global(&system, 5);
    let outcome = ModuloScheduler::new(&system, spec.clone())
        .unwrap()
        .run()
        .unwrap();
    let sim = Simulator::new(&system, &spec, &outcome.schedule);
    for (seed, mean_gap) in [(1u64, 25u64), (2, 60), (3, 120)] {
        let workloads = vec![Trigger::Random { mean_gap }; system.num_processes()];
        let result = sim.run(
            &workloads,
            &SimConfig {
                horizon: 4_000,
                seed,
            },
        );
        assert!(result.conflicts.is_empty(), "seed {seed}");
        assert!(result.activations > 0);
    }
}

#[test]
fn grid_spacing_matches_period_five() {
    let (system, _) = paper_system().unwrap();
    let spec = SharingSpec::all_global(&system, 5);
    for p in system.process_ids() {
        assert_eq!(spec.grid_spacing(&system, p), 5);
    }
}
