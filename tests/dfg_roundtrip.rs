//! Property test: the `.dfg` text format round-trips any generated
//! system.

use proptest::prelude::*;

use tcms::ir::display::to_dfg;
use tcms::ir::generators::{random_system, RandomSystemConfig};
use tcms::ir::parse::parse_system;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn dfg_round_trips(
        seed in 0u64..5000,
        procs in 1usize..5,
        layers in 1usize..5,
    ) {
        let cfg = RandomSystemConfig {
            processes: procs,
            layers,
            ..RandomSystemConfig::default()
        };
        let (system, _) = random_system(&cfg, seed).unwrap();
        let text = to_dfg(&system);
        let back = parse_system(&text).unwrap();
        prop_assert_eq!(back.num_ops(), system.num_ops());
        prop_assert_eq!(back.num_blocks(), system.num_blocks());
        prop_assert_eq!(back.num_processes(), system.num_processes());
        // Round-tripping again is a fixpoint.
        prop_assert_eq!(to_dfg(&back), text);
        // Structure survives: same critical paths everywhere.
        for (bid, _) in system.blocks() {
            prop_assert_eq!(back.critical_path(bid), system.critical_path(bid));
        }
    }
}

#[test]
fn paper_system_round_trips() {
    let (system, _) = tcms::ir::generators::paper_system().unwrap();
    let text = to_dfg(&system);
    let back = parse_system(&text).unwrap();
    assert_eq!(back.num_ops(), system.num_ops());
    assert_eq!(to_dfg(&back), text);
}
