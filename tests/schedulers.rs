//! Cross-scheduler integration: FDS, IFDS, list scheduling and the
//! resource-constrained modulo variant agree on validity and bounds.

use proptest::prelude::*;

use tcms::fds::fds::schedule_block_fds;
use tcms::fds::list::list_schedule_block;
use tcms::fds::{baselines, schedule_block_ifds, schedule_system_local, FdsConfig};
use tcms::ir::generators::{
    add_ar_lattice_process, add_fft_process, add_fir_process, paper_library, random_system,
    RandomSystemConfig,
};
use tcms::ir::SystemBuilder;
use tcms::modulo::rc::rc_modulo_schedule;
use tcms::modulo::{ModuloScheduler, SharingSpec};

#[test]
fn all_generators_schedule_validly() {
    let (lib, types) = paper_library();
    let mut b = SystemBuilder::new(lib);
    add_fir_process(&mut b, "fir", 8, 25, types).unwrap();
    add_ar_lattice_process(&mut b, "ar", 40, types).unwrap();
    add_fft_process(&mut b, "fft", 8, 25, types).unwrap();
    let sys = b.build().unwrap();
    let out = schedule_system_local(&sys, &FdsConfig::default()).unwrap();
    out.schedule.verify(&sys).unwrap();

    // And globally shared across the three kernels.
    let spec = SharingSpec::all_global(&sys, 5);
    let global = ModuloScheduler::new(&sys, spec.clone())
        .unwrap()
        .run()
        .unwrap();
    global.schedule.verify(&sys).unwrap();
    let mul = sys.library().by_name("mul").unwrap();
    assert!(global.report().instances(mul) < 3 * 2, "sharing helps");
}

#[test]
fn fds_and_ifds_agree_on_validity_and_are_close_in_quality() {
    let (lib, types) = paper_library();
    let mut b = SystemBuilder::new(lib);
    let (_, blk) = tcms::ir::generators::add_ewf_process(&mut b, "P", 21, types).unwrap();
    let sys = b.build().unwrap();
    let cfg = FdsConfig::default();
    let fds = schedule_block_fds(&sys, blk, &cfg);
    let ifds = schedule_block_ifds(&sys, blk, &cfg).unwrap();
    fds.schedule.verify(&sys).unwrap();
    ifds.schedule.verify(&sys).unwrap();
    let peak = |s: &tcms::fds::Schedule| {
        s.peak_usage(&sys, blk, types.add) + 4 * s.peak_usage(&sys, blk, types.mul)
    };
    let (pf, pi) = (peak(&fds.schedule), peak(&ifds.schedule));
    // Both heuristics land in the same quality region on the EWF.
    assert!(pi <= pf + 3, "IFDS {pi} vs FDS {pf}");
    assert!(pf <= pi + 3, "FDS {pf} vs IFDS {pi}");
}

#[test]
fn list_schedule_meets_fds_counts_with_relaxed_deadline() {
    // The counts a time-constrained run achieves are feasible for the
    // resource-constrained list scheduler given enough time.
    let (lib, types) = paper_library();
    let mut b = SystemBuilder::new(lib);
    let (_, blk) = tcms::ir::generators::add_ewf_process(&mut b, "P", 60, types).unwrap();
    let sys = b.build().unwrap();
    let ifds = schedule_block_ifds(&sys, blk, &FdsConfig::default()).unwrap();
    let limits = vec![
        ifds.schedule.peak_usage(&sys, blk, types.add),
        1,
        ifds.schedule.peak_usage(&sys, blk, types.mul).max(1),
    ];
    let out = list_schedule_block(&sys, blk, &limits).unwrap();
    assert!(out.makespan <= 60);
    out.schedule.verify(&sys).unwrap();
}

#[test]
fn rc_variant_matches_generous_limits_on_random_systems() {
    for seed in 0..8 {
        let cfg = RandomSystemConfig {
            processes: 3,
            slack: 2.5,
            ..RandomSystemConfig::default()
        };
        let (sys, _) = random_system(&cfg, seed).unwrap();
        let spec = SharingSpec::all_global(&sys, 3);
        if !tcms::modulo::period::spacing_feasible(&sys, &spec) {
            continue;
        }
        // Generous limits: one instance per op of the busiest block.
        let limits: Vec<u32> = sys
            .library()
            .ids()
            .map(|k| {
                sys.block_ids()
                    .map(|b| sys.ops_of_type(b, k).len() as u32)
                    .max()
                    .unwrap_or(0)
                    .max(1)
                    * sys.num_processes() as u32
            })
            .collect();
        let rc = rc_modulo_schedule(&sys, &spec, &limits).unwrap();
        rc.schedule.verify(&sys).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn asap_alap_bracket_every_scheduler(seed in 0u64..500) {
        let cfg = RandomSystemConfig::default();
        let (sys, _) = random_system(&cfg, seed).unwrap();
        let asap = baselines::asap_schedule(&sys);
        let alap = baselines::alap_schedule(&sys);
        let local = schedule_system_local(&sys, &FdsConfig::default()).unwrap();
        for o in sys.op_ids() {
            prop_assert!(asap.expect_start(o) <= local.schedule.expect_start(o));
            prop_assert!(local.schedule.expect_start(o) <= alap.expect_start(o));
        }
    }
}
