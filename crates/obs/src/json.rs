//! Minimal JSON support for the sinks: a string escaper, a value writer
//! and a strict recursive-descent parser.
//!
//! The workspace is offline (no serde); the sinks need exactly this much:
//! objects, arrays, strings, numbers, booleans and null. The parser is
//! used by the trace validators and the round-trip tests, so it is strict
//! about structure but tolerant about number formats (anything Rust's
//! `f64::parse` accepts after the usual JSON grammar).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string (unescaped).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; `BTreeMap` keeps key order deterministic.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Member `key` of an object value.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// Appends the JSON escape of `s` (with surrounding quotes) to `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a JSON number. Non-finite values (which JSON cannot express)
/// are written as `null`.
pub fn write_number(out: &mut String, v: f64) {
    if v.is_finite() {
        // Integral values print without a trailing `.0` which keeps
        // timestamps and counters natural; Rust's `{}` on f64 already
        // round-trips.
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Appends the compact JSON rendering of `value` to `out` (object keys
/// in `BTreeMap` order, so the output is deterministic).
pub fn write_value(out: &mut String, value: &JsonValue) {
    match value {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Number(n) => write_number(out, *n),
        JsonValue::String(s) => write_escaped(out, s),
        JsonValue::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        JsonValue::Object(map) => {
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, v);
            }
            out.push('}');
        }
    }
}

/// The compact JSON rendering of `value` as a fresh string.
#[must_use]
pub fn to_string(value: &JsonValue) -> String {
    let mut out = String::new();
    write_value(&mut out, value);
    out
}

/// Parses a complete JSON document; trailing whitespace is allowed,
/// trailing garbage is an error.
///
/// # Errors
///
/// Returns a message with the byte offset of the first problem.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid utf-8 near byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| format!("dangling escape at byte {}", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("unknown escape at byte {}", self.pos - 1)),
                    }
                }
                _ => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_escapes() {
        let mut s = String::new();
        write_escaped(&mut s, "a\"b\\c\nd\te\u{1}");
        let back = parse(&s).unwrap();
        assert_eq!(back.as_str().unwrap(), "a\"b\\c\nd\te\u{1}");
    }

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("nope").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn numbers_write_naturally() {
        let mut s = String::new();
        write_number(&mut s, 42.0);
        s.push(' ');
        write_number(&mut s, 1.5);
        s.push(' ');
        write_number(&mut s, f64::NAN);
        assert_eq!(s, "42 1.5 null");
    }
}
