//! CI validator for recorded traces.
//!
//! ```text
//! trace_check [--jsonl FILE]... [--chrome FILE]... [--journal FILE]...
//!             [--stats FILE]...
//! ```
//!
//! Parses each `--jsonl` file as a JSON Lines event stream (checking span
//! nesting), each `--chrome` file against the Chrome `trace_event`
//! object format (checking `B`/`E` balance), each `--journal` file as
//! a `tcms-serve` workload journal (schema, strictly monotone sequence
//! numbers, torn-tail detection — a torn final line is reported but not
//! fatal, so a journal captured from a crashed daemon still lints before
//! replay), and each `--stats` file as a daemon `stats` response body
//! (daemon counters plus, on fleet members, the full `fleet` block:
//! routing counters, anti-entropy sync metrics, per-peer health). Exits
//! non-zero on the first rejected file, so a CI step can gate on
//! emitted traces staying loadable.

use std::process::ExitCode;

use tcms_obs::sink;

fn usage() -> ExitCode {
    eprintln!(
        "usage: trace_check [--jsonl FILE]... [--chrome FILE]... [--journal FILE]... [--stats FILE]..."
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    let mut checked = 0usize;
    let mut i = 0;
    while i < args.len() {
        let (flag, path) = match (args.get(i).map(String::as_str), args.get(i + 1)) {
            (Some(flag @ ("--jsonl" | "--chrome" | "--journal" | "--stats")), Some(path)) => {
                (flag, path)
            }
            _ => return usage(),
        };
        i += 2;
        let content = match std::fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("trace_check: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let result = match flag {
            "--jsonl" => sink::validate_jsonl(&content),
            "--journal" => sink::validate_journal(&content).map(|check| {
                if check.torn_tail {
                    eprintln!("trace_check: {path}: warning: torn final line skipped");
                }
                check.records
            }),
            "--stats" => sink::validate_stats(&content),
            _ => sink::validate_chrome_trace(&content),
        };
        match result {
            Ok(n) => {
                println!("trace_check: {path}: ok ({n} records)");
                checked += 1;
            }
            Err(e) => {
                eprintln!("trace_check: {path}: INVALID: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("trace_check: {checked} file(s) valid");
    ExitCode::SUCCESS
}
