//! Serialization sinks and validators for recorded trace data.
//!
//! Three output shapes, all produced from one [`TraceData`]:
//!
//! * **Summary table** — [`crate::MetricsRegistry::render_summary`] (the
//!   `--metrics` flag).
//! * **JSONL event stream** — one self-describing JSON object per line
//!   (`--timeline`); see [`to_jsonl`]. Machine-friendly, greppable, and
//!   round-trippable through [`parse_jsonl`].
//! * **Chrome `trace_event` JSON** — [`to_chrome_trace`] (`--trace`);
//!   loadable in `about:tracing` or <https://ui.perfetto.dev>. Spans map
//!   to `B`/`E` duration events, counters and timeline samples to `C`
//!   counter events, instant events to `i`.
//!
//! The validators ([`check_span_nesting`], [`validate_jsonl`],
//! [`validate_chrome_trace`]) back both the test suite and the
//! `trace_check` CI binary.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::{self, JsonValue};
use crate::recorder::Value;
use crate::trace::{TraceData, TraceEvent, TraceEventKind};

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(n) => json::write_number(out, *n),
        Value::Str(s) => json::write_escaped(out, s),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
    }
}

fn write_fields(out: &mut String, fields: &[(&'static str, Value)]) {
    out.push('{');
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::write_escaped(out, k);
        out.push(':');
        write_value(out, v);
    }
    out.push('}');
}

/// Serializes the event stream (spans, events, counters and timeline
/// samples) as JSON Lines: one object per line with a `"type"`
/// discriminator (`span_enter`, `span_exit`, `event`, `counter`,
/// `timeline`) and a `"ts_us"` timestamp.
pub fn to_jsonl(data: &TraceData) -> String {
    let mut out = String::new();
    for ev in &data.events {
        let ts = ev.ts_us;
        match &ev.kind {
            TraceEventKind::SpanEnter { id, name, fields } => {
                let _ = write!(
                    out,
                    "{{\"type\":\"span_enter\",\"ts_us\":{ts},\"id\":{},\"name\":",
                    id.0
                );
                json::write_escaped(&mut out, name);
                out.push_str(",\"fields\":");
                write_fields(&mut out, fields);
                out.push('}');
            }
            TraceEventKind::SpanExit { id } => {
                let _ = write!(
                    out,
                    "{{\"type\":\"span_exit\",\"ts_us\":{ts},\"id\":{}}}",
                    id.0
                );
            }
            TraceEventKind::Instant { name, fields } => {
                let _ = write!(out, "{{\"type\":\"event\",\"ts_us\":{ts},\"name\":");
                json::write_escaped(&mut out, name);
                out.push_str(",\"fields\":");
                write_fields(&mut out, fields);
                out.push('}');
            }
            TraceEventKind::Counter { name, delta } => {
                let _ = write!(out, "{{\"type\":\"counter\",\"ts_us\":{ts},\"name\":");
                json::write_escaped(&mut out, name);
                let _ = write!(out, ",\"delta\":{delta}}}");
            }
            TraceEventKind::Point(p) => {
                let _ = write!(out, "{{\"type\":\"timeline\",\"ts_us\":{ts},\"phase\":");
                json::write_escaped(&mut out, p.phase);
                let _ = write!(out, ",\"iteration\":{},\"values\":{{", p.iteration);
                for (i, (k, v)) in p.values.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    json::write_escaped(&mut out, k);
                    out.push(':');
                    json::write_number(&mut out, *v);
                }
                out.push_str("}}");
            }
        }
        out.push('\n');
    }
    out
}

/// Parses a JSONL document into one [`JsonValue`] per non-empty line.
///
/// # Errors
///
/// Reports the 1-based line number of the first malformed line, or of the
/// first line that is not an object with a string `"type"`.
pub fn parse_jsonl(input: &str) -> Result<Vec<JsonValue>, String> {
    let mut out = Vec::new();
    for (i, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        if v.get("type").and_then(JsonValue::as_str).is_none() {
            return Err(format!("line {}: missing string \"type\"", i + 1));
        }
        out.push(v);
    }
    Ok(out)
}

/// Checks that span enters/exits in an in-memory event stream are
/// well-formed: every exit closes the innermost open span and nothing is
/// left open at the end.
///
/// # Errors
///
/// Describes the first violation (mismatched, unknown or unclosed span).
pub fn check_span_nesting(events: &[TraceEvent]) -> Result<(), String> {
    let mut stack: Vec<u64> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        match &ev.kind {
            TraceEventKind::SpanEnter { id, .. } => stack.push(id.0),
            TraceEventKind::SpanExit { id } => match stack.pop() {
                Some(top) if top == id.0 => {}
                Some(top) => {
                    return Err(format!(
                        "event {i}: span_exit {} while span {top} is innermost",
                        id.0
                    ))
                }
                None => return Err(format!("event {i}: span_exit {} with no open span", id.0)),
            },
            _ => {}
        }
    }
    if let Some(open) = stack.last() {
        return Err(format!("span {open} never exited"));
    }
    Ok(())
}

/// [`check_span_nesting`] for a parsed JSONL stream (the round-trip form
/// the CI validator uses).
///
/// # Errors
///
/// Describes the first malformed record or nesting violation.
pub fn check_jsonl_nesting(records: &[JsonValue]) -> Result<(), String> {
    let mut stack: Vec<u64> = Vec::new();
    for (i, rec) in records.iter().enumerate() {
        let ty = rec
            .get("type")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("record {i}: missing type"))?;
        match ty {
            "span_enter" => {
                let id = rec
                    .get("id")
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("record {i}: span_enter without id"))?;
                rec.get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| format!("record {i}: span_enter without name"))?;
                stack.push(id as u64);
            }
            "span_exit" => {
                let id = rec
                    .get("id")
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("record {i}: span_exit without id"))?
                    as u64;
                match stack.pop() {
                    Some(top) if top == id => {}
                    Some(top) => {
                        return Err(format!(
                            "record {i}: span_exit {id} while span {top} is innermost"
                        ))
                    }
                    None => return Err(format!("record {i}: span_exit {id} with no open span")),
                }
            }
            "event" | "counter" | "timeline" => {}
            other => return Err(format!("record {i}: unknown type {other:?}")),
        }
    }
    if let Some(open) = stack.last() {
        return Err(format!("span {open} never exited"));
    }
    Ok(())
}

/// Validates a JSONL trace end to end: parses every line and checks span
/// nesting. Returns the number of records on success.
///
/// # Errors
///
/// Propagates the first parse or nesting error.
pub fn validate_jsonl(input: &str) -> Result<usize, String> {
    let records = parse_jsonl(input)?;
    check_jsonl_nesting(&records)?;
    Ok(records.len())
}

/// Magic header value identifying a `tcms-serve` workload journal.
/// Duplicated (deliberately) by the serve crate's writer; the serve test
/// suite asserts the two stay in sync by running captured journals
/// through [`validate_journal`].
pub const JOURNAL_MAGIC: &str = "tcms-serve-journal";

/// Journal schema version this validator understands.
pub const JOURNAL_VERSION: f64 = 1.0;

/// Outcome of [`validate_journal`] on a well-formed journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalCheck {
    /// Number of valid records (the header line does not count).
    pub records: usize,
    /// Whether the final line was torn (unparseable or schema-invalid)
    /// and skipped. A torn tail is expected after a crash and is not an
    /// error; torn lines anywhere else are.
    pub torn_tail: bool,
    /// Whether the final line is a rotation seal trailer
    /// (`{"sealed":true,...}`) — the file is a sealed journal segment,
    /// not a live journal.
    pub sealed: bool,
}

fn journal_record_error(line_no: usize, rec: &JsonValue) -> Option<String> {
    let num = |key: &str| rec.get(key).and_then(JsonValue::as_f64);
    let string = |key: &str| rec.get(key).and_then(JsonValue::as_str);
    if rec.as_object().is_none() {
        return Some(format!("line {line_no}: record is not an object"));
    }
    for key in [
        "seq", "ts_us", "code", "queue_us", "exec_us", "total_us", "dropped",
    ] {
        if num(key).is_none() {
            return Some(format!("line {line_no}: missing numeric `{key}`"));
        }
    }
    for key in ["action", "outcome", "request"] {
        match string(key) {
            Some(s) if !s.is_empty() => {}
            _ => return Some(format!("line {line_no}: missing string `{key}`")),
        }
    }
    // Optional members must still be well-typed when present.
    for key in ["disposition", "spec", "config"] {
        match rec.get(key) {
            None | Some(JsonValue::Null) | Some(JsonValue::String(_)) => {}
            Some(_) => return Some(format!("line {line_no}: `{key}` must be a string or null")),
        }
    }
    if let Some(spec) = string("spec") {
        if spec.len() != 32 || !spec.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Some(format!("line {line_no}: `spec` is not a 32-hex-digit hash"));
        }
    }
    None
}

/// Validates a `tcms-serve` workload journal: a magic header line
/// followed by one JSON record per request with strictly increasing
/// `seq`, non-decreasing `ts_us`/`dropped`, and the capture schema
/// (action/outcome/timings/raw request). The final line may be torn —
/// a crash mid-append leaves a partial line, which loaders skip — or a
/// rotation seal trailer (`{"sealed":true,...}`, reported as `sealed`);
/// a malformed line anywhere else fails validation.
///
/// # Errors
///
/// Describes the first schema or monotonicity violation with its
/// 1-based line number.
pub fn validate_journal(input: &str) -> Result<JournalCheck, String> {
    let lines: Vec<&str> = input.lines().collect();
    let Some((&header, records)) = lines.split_first() else {
        return Err("empty journal: missing header line".into());
    };
    let h = json::parse(header).map_err(|e| format!("line 1: bad header: {e}"))?;
    if h.get("magic").and_then(JsonValue::as_str) != Some(JOURNAL_MAGIC) {
        return Err(format!("line 1: header magic is not {JOURNAL_MAGIC:?}"));
    }
    if h.get("version").and_then(JsonValue::as_f64) != Some(JOURNAL_VERSION) {
        return Err("line 1: unsupported journal version".into());
    }

    let mut check = JournalCheck {
        records: 0,
        torn_tail: false,
        sealed: false,
    };
    let mut prev_seq: Option<f64> = None;
    let mut prev_ts = 0.0;
    let mut prev_dropped = 0.0;
    for (i, line) in records.iter().enumerate() {
        let line_no = i + 2;
        let is_last = i + 1 == records.len();
        if is_last {
            if let Ok(rec) = json::parse(line) {
                if rec.get("sealed") == Some(&JsonValue::Bool(true)) {
                    check.sealed = true;
                    continue;
                }
            }
        }
        let problem = match json::parse(line) {
            Ok(rec) => match journal_record_error(line_no, &rec) {
                Some(e) => Some(e),
                None => {
                    let seq = rec.get("seq").and_then(JsonValue::as_f64).unwrap();
                    let ts = rec.get("ts_us").and_then(JsonValue::as_f64).unwrap();
                    let dropped = rec.get("dropped").and_then(JsonValue::as_f64).unwrap();
                    if prev_seq.is_some_and(|p| seq <= p) {
                        Some(format!(
                            "line {line_no}: seq {seq} is not strictly increasing"
                        ))
                    } else if ts < prev_ts {
                        Some(format!("line {line_no}: ts_us went backwards"))
                    } else if dropped < prev_dropped {
                        Some(format!("line {line_no}: dropped count went backwards"))
                    } else {
                        prev_seq = Some(seq);
                        prev_ts = ts;
                        prev_dropped = dropped;
                        None
                    }
                }
            },
            Err(e) => Some(format!("line {line_no}: {e}")),
        };
        match problem {
            None => check.records += 1,
            Some(_) if is_last => check.torn_tail = true,
            Some(e) => return Err(e),
        }
    }
    Ok(check)
}

/// Validates a `tcms-serve` `stats` response body (the JSON document
/// `tcms client <addr> stats` prints): the daemon-level numeric fields
/// must be present, and when the `fleet` block reports `enabled: true`
/// its full schema is enforced — identity (`self`/`route`/`replicas`),
/// the routing and replication counters, the anti-entropy `sync` block
/// (`lag_ms` may be null before the first full round), and one
/// well-typed health entry per peer. Returns the number of fields
/// checked, so a caller can tell a fleet document from a standalone one.
///
/// # Errors
///
/// Describes the first missing or ill-typed field by its JSON path.
pub fn validate_stats(input: &str) -> Result<usize, String> {
    let doc = json::parse(input.trim()).map_err(|e| format!("not valid JSON: {e}"))?;
    doc.as_object().ok_or("stats document is not an object")?;
    let mut checked = 0usize;
    fn num_field(v: &JsonValue, key: &str, path: &str) -> Result<(), String> {
        match v.get(key).and_then(JsonValue::as_f64) {
            Some(n) if n >= 0.0 => Ok(()),
            Some(_) => Err(format!("`{path}` is negative")),
            None => Err(format!("missing numeric `{path}`")),
        }
    }
    for key in [
        "requests",
        "errors",
        "cache_entries",
        "cache_hits",
        "cache_misses",
        "cache_hit_rate",
        "workers",
    ] {
        num_field(&doc, key, key)?;
        checked += 1;
    }
    let fleet = doc
        .get("fleet")
        .and_then(JsonValue::as_object)
        .ok_or("missing object `fleet`")?;
    checked += 1;
    match fleet.get("enabled") {
        Some(JsonValue::Bool(false)) => return Ok(checked),
        Some(JsonValue::Bool(true)) => {}
        _ => return Err("`fleet.enabled` must be a bool".into()),
    }
    let fleet = doc.get("fleet").unwrap();
    match fleet.get("self").and_then(JsonValue::as_str) {
        Some(s) if !s.is_empty() => checked += 1,
        _ => return Err("missing string `fleet.self`".into()),
    }
    match fleet.get("route").and_then(JsonValue::as_str) {
        Some("proxy" | "local") => checked += 1,
        Some(other) => return Err(format!("`fleet.route` is `{other}`, not proxy|local")),
        None => return Err("missing string `fleet.route`".into()),
    }
    for key in [
        "replicas",
        "proxied",
        "proxy_failures",
        "local_fallback",
        "pushed",
        "push_failures",
    ] {
        num_field(fleet, key, &format!("fleet.{key}"))?;
        checked += 1;
    }
    let sync = fleet
        .get("sync")
        .filter(|s| s.as_object().is_some())
        .ok_or("missing object `fleet.sync`")?;
    for key in [
        "rounds",
        "shards_pulled",
        "entries_applied",
        "failures",
        "push_applied",
        "push_rejected",
    ] {
        num_field(sync, key, &format!("fleet.sync.{key}"))?;
        checked += 1;
    }
    match sync.get("lag_ms") {
        Some(JsonValue::Null | JsonValue::Number(_)) => checked += 1,
        _ => return Err("`fleet.sync.lag_ms` must be a number or null".into()),
    }
    let peers = fleet
        .get("peers")
        .and_then(JsonValue::as_array)
        .ok_or("missing array `fleet.peers`")?;
    for (i, peer) in peers.iter().enumerate() {
        match peer.get("addr").and_then(JsonValue::as_str) {
            Some(a) if !a.is_empty() => {}
            _ => return Err(format!("missing string `fleet.peers[{i}].addr`")),
        }
        match peer.get("alive") {
            Some(JsonValue::Bool(_)) => {}
            _ => return Err(format!("`fleet.peers[{i}].alive` must be a bool")),
        }
        for key in ["ok", "failures", "consecutive_failures"] {
            num_field(peer, key, &format!("fleet.peers[{i}].{key}"))?;
        }
        match peer.get("last_rtt_us") {
            Some(JsonValue::Null | JsonValue::Number(_)) => {}
            _ => {
                return Err(format!(
                    "`fleet.peers[{i}].last_rtt_us` must be a number or null"
                ))
            }
        }
        checked += 1;
    }
    Ok(checked)
}

fn chrome_args(out: &mut String, fields: &[(&'static str, Value)]) {
    out.push_str(",\"args\":");
    write_fields(out, fields);
}

/// Serializes the trace in Chrome `trace_event` JSON object format
/// (`{"traceEvents": [...]}`), loadable in `about:tracing` and
/// [Perfetto](https://ui.perfetto.dev).
///
/// Spans become `B`/`E` duration events on pid/tid 1 (matching the
/// single-threaded recording model), instant events become `i`, and both
/// counters and timeline samples become `C` counter events so the UI
/// plots them as series over time. Final metric values (gauges,
/// histogram means) ride along in the top-level `"metadata"` member.
pub fn to_chrome_trace(data: &TraceData) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
        out.push_str("\n  ");
    };
    // E events carry the name of their B for readability.
    let mut span_names: BTreeMap<u64, &'static str> = BTreeMap::new();
    // Chrome counter events carry absolute values; integrate the deltas.
    let mut counter_totals: BTreeMap<&'static str, u64> = BTreeMap::new();
    for ev in &data.events {
        let ts = ev.ts_us;
        match &ev.kind {
            TraceEventKind::SpanEnter { id, name, fields } => {
                span_names.insert(id.0, name);
                sep(&mut out);
                let _ = write!(out, "{{\"name\":");
                json::write_escaped(&mut out, name);
                let _ = write!(out, ",\"ph\":\"B\",\"ts\":{ts},\"pid\":1,\"tid\":1");
                if !fields.is_empty() {
                    chrome_args(&mut out, fields);
                }
                out.push('}');
            }
            TraceEventKind::SpanExit { id } => {
                let name = span_names.get(&id.0).copied().unwrap_or("span");
                sep(&mut out);
                let _ = write!(out, "{{\"name\":");
                json::write_escaped(&mut out, name);
                let _ = write!(out, ",\"ph\":\"E\",\"ts\":{ts},\"pid\":1,\"tid\":1}}");
            }
            TraceEventKind::Instant { name, fields } => {
                sep(&mut out);
                let _ = write!(out, "{{\"name\":");
                json::write_escaped(&mut out, name);
                let _ = write!(
                    out,
                    ",\"ph\":\"i\",\"ts\":{ts},\"pid\":1,\"tid\":1,\"s\":\"t\""
                );
                if !fields.is_empty() {
                    chrome_args(&mut out, fields);
                }
                out.push('}');
            }
            TraceEventKind::Counter { name, delta } => {
                let total = counter_totals.entry(name).or_insert(0);
                *total += delta;
                sep(&mut out);
                let _ = write!(out, "{{\"name\":");
                json::write_escaped(&mut out, name);
                let _ = write!(out, ",\"ph\":\"C\",\"ts\":{ts},\"pid\":1,\"args\":{{");
                json::write_escaped(&mut out, name);
                let _ = write!(out, ":{total}}}}}");
            }
            TraceEventKind::Point(p) => {
                sep(&mut out);
                let _ = write!(out, "{{\"name\":");
                json::write_escaped(&mut out, &format!("timeline.{}", p.phase));
                let _ = write!(out, ",\"ph\":\"C\",\"ts\":{ts},\"pid\":1,\"args\":{{");
                for (i, (k, v)) in p.values.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    json::write_escaped(&mut out, k);
                    out.push(':');
                    json::write_number(&mut out, *v);
                }
                out.push_str("}}");
            }
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\",\"metadata\":{");
    let mut mfirst = true;
    for (name, v) in data.metrics.gauges() {
        if !mfirst {
            out.push(',');
        }
        mfirst = false;
        json::write_escaped(&mut out, name);
        out.push(':');
        json::write_number(&mut out, v);
    }
    for (name, h) in data.metrics.histograms() {
        if !mfirst {
            out.push(',');
        }
        mfirst = false;
        json::write_escaped(&mut out, &format!("{name}.mean"));
        out.push(':');
        json::write_number(&mut out, h.mean());
    }
    out.push_str("}}\n");
    out
}

/// Validates a document against the Chrome `trace_event` JSON object
/// format: a top-level object with a `traceEvents` array whose members
/// carry a known `ph`, a numeric `ts` and a `pid`, with `B`/`E` pairs
/// balanced per `(pid, tid)`. Returns the event count on success.
///
/// # Errors
///
/// Describes the first structural violation.
pub fn validate_chrome_trace(input: &str) -> Result<usize, String> {
    let doc = json::parse(input)?;
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "missing traceEvents array".to_string())?;
    let mut stacks: BTreeMap<(u64, u64), Vec<String>> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let obj = ev
            .as_object()
            .ok_or_else(|| format!("event {i}: not an object"))?;
        let ph = obj
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        obj.get("ts")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("event {i}: missing numeric ts"))?;
        let pid = obj
            .get("pid")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("event {i}: missing pid"))? as u64;
        let name = obj
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?
            .to_string();
        let tid = obj.get("tid").and_then(JsonValue::as_f64).unwrap_or(0.0) as u64;
        match ph {
            "B" => stacks.entry((pid, tid)).or_default().push(name),
            "E" => match stacks.entry((pid, tid)).or_default().pop() {
                Some(open) if open == name => {}
                Some(open) => {
                    return Err(format!(
                        "event {i}: E {name:?} while {open:?} is innermost on pid {pid} tid {tid}"
                    ))
                }
                None => {
                    return Err(format!(
                        "event {i}: E {name:?} with no open B on pid {pid} tid {tid}"
                    ))
                }
            },
            "C" | "i" | "I" | "X" | "M" => {}
            other => return Err(format!("event {i}: unknown ph {other:?}")),
        }
    }
    for ((pid, tid), stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!("span {open:?} never closed on pid {pid} tid {tid}"));
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Recorder, TimelinePoint};
    use crate::span;
    use crate::trace::TraceRecorder;

    fn sample_data() -> TraceData {
        let rec = TraceRecorder::new();
        {
            let _s = span!(&rec, "s3.schedule", blocks = 2u64);
            {
                let _c = span!(&rec, "s3.commit", block = 0u64, process = 1u64);
                rec.counter_add("ifds.iterations", 1);
            }
            rec.event("sim.conflict", &[("time", Value::from(7u64))]);
            rec.timeline(TimelinePoint {
                phase: "s3",
                iteration: 0,
                values: vec![("force.total".into(), -1.25), ("G.mul.peak".into(), 2.0)],
            });
            rec.gauge_set("schedule.grid", 12.0);
            rec.histogram_record("s3.eval_us", 42.0);
        }
        rec.finish()
    }

    #[test]
    fn jsonl_round_trips_and_nests() {
        let data = sample_data();
        let jsonl = to_jsonl(&data);
        let records = parse_jsonl(&jsonl).unwrap();
        assert_eq!(records.len(), data.events.len());
        check_jsonl_nesting(&records).unwrap();
        assert_eq!(validate_jsonl(&jsonl).unwrap(), records.len());
        // Spot-check one record of each type survived with its payload.
        assert!(records.iter().any(|r| {
            r.get("type").and_then(JsonValue::as_str) == Some("timeline")
                && r.get("values")
                    .and_then(|v| v.get("force.total"))
                    .and_then(JsonValue::as_f64)
                    == Some(-1.25)
        }));
        assert!(records.iter().any(|r| {
            r.get("type").and_then(JsonValue::as_str) == Some("span_enter")
                && r.get("name").and_then(JsonValue::as_str) == Some("s3.commit")
                && r.get("fields")
                    .and_then(|f| f.get("process"))
                    .and_then(JsonValue::as_f64)
                    == Some(1.0)
        }));
    }

    #[test]
    fn jsonl_rejects_bad_input() {
        assert!(parse_jsonl("{not json}\n").is_err());
        assert!(parse_jsonl("[1,2]\n").is_err());
        let unbalanced =
            "{\"type\":\"span_enter\",\"ts_us\":0,\"id\":1,\"name\":\"x\",\"fields\":{}}\n";
        assert!(validate_jsonl(unbalanced).is_err());
        let crossed = concat!(
            "{\"type\":\"span_enter\",\"ts_us\":0,\"id\":1,\"name\":\"a\",\"fields\":{}}\n",
            "{\"type\":\"span_enter\",\"ts_us\":0,\"id\":2,\"name\":\"b\",\"fields\":{}}\n",
            "{\"type\":\"span_exit\",\"ts_us\":1,\"id\":1}\n",
            "{\"type\":\"span_exit\",\"ts_us\":1,\"id\":2}\n",
        );
        assert!(validate_jsonl(crossed).is_err());
    }

    #[test]
    fn chrome_trace_validates_and_balances() {
        let data = sample_data();
        let chrome = to_chrome_trace(&data);
        let n = validate_chrome_trace(&chrome).unwrap();
        assert_eq!(n, data.events.len());
        // Counter events must carry absolute values in args.
        let doc = json::parse(&chrome).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let counter = events
            .iter()
            .find(|e| {
                e.get("ph").and_then(JsonValue::as_str) == Some("C")
                    && e.get("name").and_then(JsonValue::as_str) == Some("ifds.iterations")
            })
            .unwrap();
        assert_eq!(
            counter
                .get("args")
                .and_then(|a| a.get("ifds.iterations"))
                .and_then(JsonValue::as_f64),
            Some(1.0)
        );
        // Gauges and histogram means land in metadata.
        assert_eq!(
            doc.get("metadata")
                .and_then(|m| m.get("schedule.grid"))
                .and_then(JsonValue::as_f64),
            Some(12.0)
        );
        assert_eq!(
            doc.get("metadata")
                .and_then(|m| m.get("s3.eval_us.mean"))
                .and_then(JsonValue::as_f64),
            Some(42.0)
        );
    }

    #[test]
    fn chrome_validator_rejects_malformed() {
        assert!(validate_chrome_trace("[]").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"B\"}]}").is_err());
        let unbalanced =
            "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"B\",\"ts\":0,\"pid\":1,\"tid\":1}]}";
        assert!(validate_chrome_trace(unbalanced).is_err());
        let crossed = "{\"traceEvents\":[\
            {\"name\":\"a\",\"ph\":\"B\",\"ts\":0,\"pid\":1,\"tid\":1},\
            {\"name\":\"b\",\"ph\":\"E\",\"ts\":1,\"pid\":1,\"tid\":1}]}";
        assert!(validate_chrome_trace(crossed).is_err());
    }

    fn journal_line(seq: u64, ts: u64) -> String {
        format!(
            "{{\"seq\":{seq},\"ts_us\":{ts},\"action\":\"schedule\",\
             \"spec\":\"00112233445566778899aabbccddeeff\",\"config\":\"00000000deadbeef\",\
             \"disposition\":\"miss\",\"outcome\":\"ok\",\"code\":0,\
             \"queue_us\":5,\"exec_us\":100,\"total_us\":105,\"dropped\":0,\
             \"request\":\"{{\\\"id\\\":\\\"r{seq}\\\"}}\"}}"
        )
    }

    fn journal_doc(lines: &[String]) -> String {
        let mut out = format!("{{\"magic\":\"{JOURNAL_MAGIC}\",\"version\":1}}\n");
        for l in lines {
            out.push_str(l);
            out.push('\n');
        }
        out
    }

    #[test]
    fn journal_validator_accepts_well_formed_capture() {
        let doc = journal_doc(&[
            journal_line(0, 10),
            journal_line(1, 20),
            journal_line(2, 20),
        ]);
        let check = validate_journal(&doc).unwrap();
        assert_eq!(check.records, 3);
        assert!(!check.torn_tail);
    }

    #[test]
    fn journal_validator_tolerates_torn_tail_only() {
        // A torn final line (partial write after a crash) is skipped...
        let mut doc = journal_doc(&[journal_line(0, 10)]);
        doc.push_str("{\"seq\":1,\"ts_us\":20,\"act");
        let check = validate_journal(&doc).unwrap();
        assert_eq!(check.records, 1);
        assert!(check.torn_tail);
        // ...but the same garbage mid-file is corruption, not a tear.
        let doc = journal_doc(&["{\"seq\":1,\"ts_us\":20,\"act".into(), journal_line(2, 30)]);
        assert!(validate_journal(&doc).is_err());
    }

    #[test]
    fn journal_validator_accepts_a_rotation_seal_trailer() {
        // A sealed segment ends with a `{"sealed":true,...}` trailer:
        // valid, reported as sealed, not counted as a record or a tear.
        let mut doc = journal_doc(&[journal_line(0, 10), journal_line(1, 20)]);
        doc.push_str("{\"sealed\":true,\"records\":2,\"check\":\"00000000000000aa\"}\n");
        let check = validate_journal(&doc).unwrap();
        assert_eq!(check.records, 2);
        assert!(check.sealed);
        assert!(!check.torn_tail);
        // A seal anywhere but the final line is still corruption.
        let doc = journal_doc(&[
            journal_line(0, 10),
            "{\"sealed\":true,\"records\":1,\"check\":\"00\"}".into(),
            journal_line(2, 30),
        ]);
        assert!(validate_journal(&doc).is_err());
    }

    #[test]
    fn journal_validator_enforces_schema_and_monotonicity() {
        // Missing header.
        assert!(validate_journal("").is_err());
        assert!(validate_journal(&journal_line(0, 0)).is_err());
        // Foreign magic.
        assert!(validate_journal("{\"magic\":\"other\",\"version\":1}\n").is_err());
        // seq must be strictly increasing (mid-file).
        let doc = journal_doc(&[
            journal_line(1, 10),
            journal_line(1, 20),
            journal_line(2, 30),
        ]);
        assert!(validate_journal(&doc)
            .unwrap_err()
            .contains("strictly increasing"));
        // ts_us must not go backwards.
        let doc = journal_doc(&[
            journal_line(0, 20),
            journal_line(1, 10),
            journal_line(2, 30),
        ]);
        assert!(validate_journal(&doc).unwrap_err().contains("ts_us"));
        // A record without the raw request line cannot drive replay.
        let stripped = journal_line(0, 10).replace("\"request\"", "\"req\"");
        let doc = journal_doc(&[stripped, journal_line(1, 20)]);
        assert!(validate_journal(&doc).unwrap_err().contains("request"));
        // A bad spec hash is flagged.
        let shorthash = journal_line(0, 10).replace("00112233445566778899aabbccddeeff", "abc");
        let doc = journal_doc(&[shorthash, journal_line(1, 20)]);
        assert!(validate_journal(&doc).unwrap_err().contains("spec"));
        // An empty journal (header only) is valid: zero records.
        let check = validate_journal(&journal_doc(&[])).unwrap();
        assert_eq!(check.records, 0);
        assert!(!check.torn_tail);
    }

    #[test]
    fn nesting_checker_flags_in_memory_violations() {
        use crate::recorder::SpanId;
        use crate::trace::TraceEventKind as K;
        let ev = |kind| TraceEvent { ts_us: 0, kind };
        let bad = vec![
            ev(K::SpanEnter {
                id: SpanId(1),
                name: "a",
                fields: vec![],
            }),
            ev(K::SpanEnter {
                id: SpanId(2),
                name: "b",
                fields: vec![],
            }),
            ev(K::SpanExit { id: SpanId(1) }),
        ];
        assert!(check_span_nesting(&bad).is_err());
        let dangling = vec![ev(K::SpanExit { id: SpanId(3) })];
        assert!(check_span_nesting(&dangling).is_err());
    }

    /// A minimal standalone-daemon stats document: the daemon fields
    /// plus a disabled fleet block.
    fn standalone_stats() -> String {
        concat!(
            r#"{"requests":10,"errors":0,"cache_entries":3,"cache_hits":7,"#,
            r#""cache_misses":3,"cache_hit_rate":0.7,"workers":2,"#,
            r#""fleet":{"enabled":false}}"#
        )
        .to_owned()
    }

    fn fleet_stats() -> String {
        concat!(
            r#"{"requests":10,"errors":0,"cache_entries":3,"cache_hits":7,"#,
            r#""cache_misses":3,"cache_hit_rate":0.7,"workers":2,"#,
            r#""fleet":{"enabled":true,"self":"a:1","route":"proxy","replicas":2,"#,
            r#""proxied":4,"proxy_failures":0,"local_fallback":0,"pushed":2,"push_failures":0,"#,
            r#""sync":{"rounds":3,"shards_pulled":1,"entries_applied":1,"failures":0,"#,
            r#""push_applied":0,"push_rejected":0,"lag_ms":null},"#,
            r#""peers":[{"addr":"b:1","alive":true,"ok":5,"failures":1,"#,
            r#""consecutive_failures":0,"last_rtt_us":120}]}}"#
        )
        .to_owned()
    }

    #[test]
    fn stats_validator_accepts_standalone_and_fleet_documents() {
        let standalone = validate_stats(&standalone_stats()).unwrap();
        let fleet = validate_stats(&fleet_stats()).unwrap();
        // The fleet document checks strictly more fields.
        assert!(fleet > standalone, "{fleet} vs {standalone}");
    }

    #[test]
    fn stats_validator_rejects_broken_fleet_blocks() {
        assert!(validate_stats("not json").is_err());
        assert!(validate_stats("[1,2]").is_err());
        // A daemon field gone missing.
        let err = validate_stats(&standalone_stats().replace(r#""workers":2,"#, "")).unwrap_err();
        assert!(err.contains("workers"), "{err}");
        // Each fleet-schema mutation must name the offending path.
        for (broken, needle) in [
            (
                fleet_stats().replace(r#""route":"proxy""#, r#""route":"magic""#),
                "route",
            ),
            (fleet_stats().replace(r#""proxied":4,"#, ""), "proxied"),
            (fleet_stats().replace(r#""rounds":3,"#, ""), "sync.rounds"),
            (
                fleet_stats().replace(r#""lag_ms":null"#, r#""lag_ms":"soon""#),
                "lag_ms",
            ),
            (
                fleet_stats().replace(r#""alive":true,"#, r#""alive":"yes","#),
                "alive",
            ),
            (
                fleet_stats().replace(r#""last_rtt_us":120"#, r#""last_rtt_us":"fast""#),
                "last_rtt_us",
            ),
        ] {
            let err = validate_stats(&broken).unwrap_err();
            assert!(err.contains(needle), "{needle}: {err}");
        }
    }
}
