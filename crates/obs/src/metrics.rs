//! Typed metrics: counters, gauges and fixed-bucket histograms.
//!
//! The registry is deliberately simple — `BTreeMap`s keyed by static
//! names, so snapshots render in a stable order — and lives behind the
//! [`crate::TraceRecorder`]'s interior mutability. `IfdsStats` and other
//! legacy counter blocks fold into it through plain
//! [`MetricsRegistry::counter_add`] calls.

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::JsonValue;

/// Metric names are `Cow` so the registry serves both compile-time
/// instrumentation sites (`&'static str`, zero-alloc) and registries
/// reconstructed from a wire snapshot (owned `String`, e.g. the `tcms
/// stats` client re-hydrating a daemon's registry from JSON).
pub type MetricName = Cow<'static, str>;

/// Default histogram bucket upper bounds: half-decade steps covering
/// sub-microsecond to multi-second durations (values are unit-free; the
/// instrumentation records microseconds). A final implicit `+inf` bucket
/// catches the rest. Fixed at construction so merged/streamed histograms
/// always line up.
pub const DEFAULT_BUCKETS: &[f64] = &[
    1.0,
    5.0,
    10.0,
    50.0,
    100.0,
    500.0,
    1_000.0,
    5_000.0,
    10_000.0,
    50_000.0,
    100_000.0,
    500_000.0,
    1_000_000.0,
];

/// A histogram with a fixed bucket layout chosen at construction.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Upper bounds of the finite buckets (ascending). An implicit last
    /// bucket covers `(bounds.last(), +inf)`.
    bounds: Vec<f64>,
    /// `counts[i]` observations fell into bucket `i` (one more entry than
    /// `bounds` for the overflow bucket).
    counts: Vec<u64>,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Creates an empty histogram with the given ascending bucket bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bucket bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        let i = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[i] += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum / n as f64
        }
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count() > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count() > 0).then_some(self.max)
    }

    /// The bucket layout (finite upper bounds).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts; the final entry is the `+inf` overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Upper bound below which at least `q` (in `[0,1]`) of the
    /// observations fall, estimated from the bucket layout. Returns the
    /// last finite bound for the overflow bucket.
    pub fn quantile_bound(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Past the last bound is the overflow bucket: report the
                // observed max.
                return self.bounds.get(i).copied().unwrap_or(self.max);
            }
        }
        self.max
    }

    /// Rebuilds a histogram from serialized parts (the inverse of
    /// [`Histogram::bounds`]/[`Histogram::counts`]/[`Histogram::sum`]
    /// plus min/max, as emitted by [`MetricsRegistry::to_json`]).
    ///
    /// # Errors
    ///
    /// Rejects non-ascending bounds and a counts length that does not
    /// cover every bucket plus overflow.
    pub fn from_parts(
        bounds: Vec<f64>,
        counts: Vec<u64>,
        sum: f64,
        min: Option<f64>,
        max: Option<f64>,
    ) -> Result<Self, String> {
        if bounds.is_empty() || bounds.windows(2).any(|w| w[0] >= w[1]) {
            return Err("histogram bounds must be non-empty and strictly ascending".into());
        }
        if counts.len() != bounds.len() + 1 {
            return Err(format!(
                "histogram counts length {} does not match {} bounds + overflow",
                counts.len(),
                bounds.len()
            ));
        }
        Ok(Histogram {
            bounds,
            counts,
            sum,
            min: min.unwrap_or(f64::INFINITY),
            max: max.unwrap_or(f64::NEG_INFINITY),
        })
    }
}

/// Registry of named counters, gauges and histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<MetricName, u64>,
    gauges: BTreeMap<MetricName, f64>,
    histograms: BTreeMap<MetricName, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the counter `name` (created at 0).
    pub fn counter_add(&mut self, name: impl Into<MetricName>, delta: u64) {
        *self.counters.entry(name.into()).or_insert(0) += delta;
    }

    /// Sets the gauge `name`.
    pub fn gauge_set(&mut self, name: impl Into<MetricName>, value: f64) {
        self.gauges.insert(name.into(), value);
    }

    /// Records into the histogram `name` (created with
    /// [`DEFAULT_BUCKETS`] on first use).
    pub fn histogram_record(&mut self, name: impl Into<MetricName>, value: f64) {
        self.histograms
            .entry(name.into())
            .or_insert_with(|| Histogram::new(DEFAULT_BUCKETS))
            .record(value);
    }

    /// Current value of a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The histogram `name`, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.counters.iter().map(|(k, &v)| (k.as_ref(), v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> + '_ {
        self.gauges.iter().map(|(k, &v)| (k.as_ref(), v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> + '_ {
        self.histograms.iter().map(|(k, v)| (k.as_ref(), v))
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Renders the human-readable summary table (the `--metrics` sink).
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<32} {v:>12}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name:<32} {v:>12.3}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms (µs unless noted):\n");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name:<32} n={:<8} mean={:<10.2} p50<={:<10.2} p99<={:<10.2} max={:.2}",
                    h.count(),
                    h.mean(),
                    h.quantile_bound(0.5),
                    h.quantile_bound(0.99),
                    h.max().unwrap_or(0.0),
                );
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }

    /// Serializes the full registry as a [`JsonValue`] object with
    /// `counters`, `gauges` and `histograms` members (each keyed by
    /// metric name, in `BTreeMap` order so the output is deterministic).
    /// This is the wire form the daemon's `stats` action ships; the
    /// client rebuilds an equal registry with
    /// [`MetricsRegistry::from_json`].
    pub fn to_json(&self) -> JsonValue {
        let mut counters = BTreeMap::new();
        for (name, v) in &self.counters {
            counters.insert(name.to_string(), JsonValue::Number(*v as f64));
        }
        let mut gauges = BTreeMap::new();
        for (name, v) in &self.gauges {
            gauges.insert(name.to_string(), JsonValue::Number(*v));
        }
        let mut histograms = BTreeMap::new();
        for (name, h) in &self.histograms {
            let mut obj = BTreeMap::new();
            obj.insert(
                "bounds".to_string(),
                JsonValue::Array(h.bounds().iter().map(|&b| JsonValue::Number(b)).collect()),
            );
            obj.insert(
                "counts".to_string(),
                JsonValue::Array(
                    h.counts()
                        .iter()
                        .map(|&c| JsonValue::Number(c as f64))
                        .collect(),
                ),
            );
            obj.insert("sum".to_string(), JsonValue::Number(h.sum()));
            if let Some(min) = h.min() {
                obj.insert("min".to_string(), JsonValue::Number(min));
            }
            if let Some(max) = h.max() {
                obj.insert("max".to_string(), JsonValue::Number(max));
            }
            histograms.insert(name.to_string(), JsonValue::Object(obj));
        }
        let mut root = BTreeMap::new();
        root.insert("counters".to_string(), JsonValue::Object(counters));
        root.insert("gauges".to_string(), JsonValue::Object(gauges));
        root.insert("histograms".to_string(), JsonValue::Object(histograms));
        JsonValue::Object(root)
    }

    /// Rebuilds a registry from the [`MetricsRegistry::to_json`] wire
    /// form. The result compares equal to the source registry (counters
    /// survive exactly up to 2^53, the `f64` integer range).
    ///
    /// # Errors
    ///
    /// Describes the first missing member, mistyped value or malformed
    /// histogram.
    pub fn from_json(value: &JsonValue) -> Result<Self, String> {
        let mut reg = MetricsRegistry::new();
        let member = |key: &str| -> Result<&BTreeMap<String, JsonValue>, String> {
            value
                .get(key)
                .and_then(JsonValue::as_object)
                .ok_or_else(|| format!("metrics object lacks `{key}`"))
        };
        for (name, v) in member("counters")? {
            let n = v
                .as_f64()
                .ok_or_else(|| format!("counter `{name}` is not a number"))?;
            reg.counters.insert(Cow::Owned(name.clone()), n as u64);
        }
        for (name, v) in member("gauges")? {
            let n = v
                .as_f64()
                .ok_or_else(|| format!("gauge `{name}` is not a number"))?;
            reg.gauges.insert(Cow::Owned(name.clone()), n);
        }
        for (name, v) in member("histograms")? {
            let nums = |key: &str| -> Result<Vec<f64>, String> {
                v.get(key)
                    .and_then(JsonValue::as_array)
                    .ok_or_else(|| format!("histogram `{name}` lacks `{key}`"))?
                    .iter()
                    .map(|x| {
                        x.as_f64()
                            .ok_or_else(|| format!("histogram `{name}`: non-numeric `{key}`"))
                    })
                    .collect()
            };
            let bounds = nums("bounds")?;
            let counts: Vec<u64> = nums("counts")?.into_iter().map(|c| c as u64).collect();
            let sum = v
                .get("sum")
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("histogram `{name}` lacks `sum`"))?;
            let min = v.get("min").and_then(JsonValue::as_f64);
            let max = v.get("max").and_then(JsonValue::as_f64);
            let h = Histogram::from_parts(bounds, counts, sum, min, max)
                .map_err(|e| format!("histogram `{name}`: {e}"))?;
            reg.histograms.insert(Cow::Owned(name.clone()), h);
        }
        Ok(reg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn counters_and_gauges() {
        let mut m = MetricsRegistry::new();
        m.counter_add("a", 2);
        m.counter_add("a", 3);
        m.gauge_set("g", 1.5);
        m.gauge_set("g", 2.5);
        assert_eq!(m.counter("a"), 5);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.gauge("g"), Some(2.5));
        assert!(!m.is_empty());
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::new(&[1.0, 10.0, 100.0]);
        for v in [0.5, 0.9, 5.0, 50.0, 5000.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.counts(), &[2, 1, 1, 1]);
        assert_eq!(h.min(), Some(0.5));
        assert_eq!(h.max(), Some(5000.0));
        assert!((h.mean() - 1011.28).abs() < 0.01);
        // 3 of 5 observations fall at or below bound 10.0.
        assert_eq!(h.quantile_bound(0.6), 10.0);
        // The top quantile lands in the overflow bucket -> observed max.
        assert_eq!(h.quantile_bound(1.0), 5000.0);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_buckets_rejected() {
        let _ = Histogram::new(&[10.0, 1.0]);
    }

    #[test]
    fn summary_renders_all_kinds() {
        let mut m = MetricsRegistry::new();
        m.counter_add("ifds.iterations", 42);
        m.gauge_set("field.G.mul.peak", 1.75);
        m.histogram_record("s3.eval_us", 12.0);
        let s = m.render_summary();
        assert!(s.contains("ifds.iterations"));
        assert!(s.contains("42"));
        assert!(s.contains("field.G.mul.peak"));
        assert!(s.contains("s3.eval_us"));
        assert!(MetricsRegistry::new()
            .render_summary()
            .contains("no metrics"));
    }

    #[test]
    fn json_round_trip_is_exact() {
        let mut m = MetricsRegistry::new();
        m.counter_add("serve.requests", 17);
        m.counter_add("serve.cache.hit", 9);
        m.gauge_set("serve.queue.depth", 3.0);
        for v in [0.5, 12.0, 700.0, 2_000_000.0] {
            m.histogram_record("serve.total_us.hit", v);
        }
        // An empty histogram (no min/max members on the wire).
        m.histograms
            .insert(Cow::Borrowed("empty"), Histogram::new(DEFAULT_BUCKETS));

        let wire = json::to_string(&m.to_json());
        let back = MetricsRegistry::from_json(&json::parse(&wire).unwrap()).unwrap();
        assert_eq!(back, m);
        // The reconstruction renders the same summary table.
        assert_eq!(back.render_summary(), m.render_summary());
    }

    #[test]
    fn from_json_rejects_malformed() {
        let bad = [
            "{}",
            r#"{"counters":{},"gauges":{}}"#,
            r#"{"counters":{"a":"x"},"gauges":{},"histograms":{}}"#,
            r#"{"counters":{},"gauges":{},"histograms":{"h":{"bounds":[1.0],"counts":[1],"sum":0}}}"#,
            r#"{"counters":{},"gauges":{},"histograms":{"h":{"bounds":[2.0,1.0],"counts":[0,0,0],"sum":0}}}"#,
        ];
        for doc in bad {
            let v = json::parse(doc).unwrap();
            assert!(MetricsRegistry::from_json(&v).is_err(), "{doc}");
        }
    }

    #[test]
    fn histogram_from_parts_validates() {
        assert!(Histogram::from_parts(vec![1.0, 2.0], vec![0, 0, 0], 0.0, None, None).is_ok());
        assert!(Histogram::from_parts(vec![], vec![0], 0.0, None, None).is_err());
        assert!(Histogram::from_parts(vec![2.0, 1.0], vec![0, 0, 0], 0.0, None, None).is_err());
        assert!(Histogram::from_parts(vec![1.0], vec![0], 0.0, None, None).is_err());
        // Rebuilt histograms keep recording correctly.
        let mut h =
            Histogram::from_parts(vec![10.0], vec![1, 0], 5.0, Some(5.0), Some(5.0)).unwrap();
        h.record(50.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), Some(50.0));
    }

    #[test]
    fn owned_and_static_names_collide_correctly() {
        let mut m = MetricsRegistry::new();
        m.counter_add("x", 1);
        m.counter_add(String::from("x"), 2);
        assert_eq!(m.counter("x"), 3);
    }
}
