//! Typed metrics: counters, gauges and fixed-bucket histograms.
//!
//! The registry is deliberately simple — `BTreeMap`s keyed by static
//! names, so snapshots render in a stable order — and lives behind the
//! [`crate::TraceRecorder`]'s interior mutability. `IfdsStats` and other
//! legacy counter blocks fold into it through plain
//! [`MetricsRegistry::counter_add`] calls.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Default histogram bucket upper bounds: half-decade steps covering
/// sub-microsecond to multi-second durations (values are unit-free; the
/// instrumentation records microseconds). A final implicit `+inf` bucket
/// catches the rest. Fixed at construction so merged/streamed histograms
/// always line up.
pub const DEFAULT_BUCKETS: &[f64] = &[
    1.0,
    5.0,
    10.0,
    50.0,
    100.0,
    500.0,
    1_000.0,
    5_000.0,
    10_000.0,
    50_000.0,
    100_000.0,
    500_000.0,
    1_000_000.0,
];

/// A histogram with a fixed bucket layout chosen at construction.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Upper bounds of the finite buckets (ascending). An implicit last
    /// bucket covers `(bounds.last(), +inf)`.
    bounds: Vec<f64>,
    /// `counts[i]` observations fell into bucket `i` (one more entry than
    /// `bounds` for the overflow bucket).
    counts: Vec<u64>,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Creates an empty histogram with the given ascending bucket bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bucket bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        let i = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[i] += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum / n as f64
        }
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count() > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count() > 0).then_some(self.max)
    }

    /// The bucket layout (finite upper bounds).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts; the final entry is the `+inf` overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Upper bound below which at least `q` (in `[0,1]`) of the
    /// observations fall, estimated from the bucket layout. Returns the
    /// last finite bound for the overflow bucket.
    pub fn quantile_bound(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Past the last bound is the overflow bucket: report the
                // observed max.
                return self.bounds.get(i).copied().unwrap_or(self.max);
            }
        }
        self.max
    }
}

/// Registry of named counters, gauges and histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the counter `name` (created at 0).
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Sets the gauge `name`.
    pub fn gauge_set(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Records into the histogram `name` (created with
    /// [`DEFAULT_BUCKETS`] on first use).
    pub fn histogram_record(&mut self, name: &'static str, value: f64) {
        self.histograms
            .entry(name)
            .or_insert_with(|| Histogram::new(DEFAULT_BUCKETS))
            .record(value);
    }

    /// Current value of a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The histogram `name`, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(&k, &v)| (k, v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(&k, v)| (k, v))
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Renders the human-readable summary table (the `--metrics` sink).
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<32} {v:>12}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name:<32} {v:>12.3}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms (µs unless noted):\n");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name:<32} n={:<8} mean={:<10.2} p50<={:<10.2} p99<={:<10.2} max={:.2}",
                    h.count(),
                    h.mean(),
                    h.quantile_bound(0.5),
                    h.quantile_bound(0.99),
                    h.max().unwrap_or(0.0),
                );
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let mut m = MetricsRegistry::new();
        m.counter_add("a", 2);
        m.counter_add("a", 3);
        m.gauge_set("g", 1.5);
        m.gauge_set("g", 2.5);
        assert_eq!(m.counter("a"), 5);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.gauge("g"), Some(2.5));
        assert!(!m.is_empty());
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::new(&[1.0, 10.0, 100.0]);
        for v in [0.5, 0.9, 5.0, 50.0, 5000.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.counts(), &[2, 1, 1, 1]);
        assert_eq!(h.min(), Some(0.5));
        assert_eq!(h.max(), Some(5000.0));
        assert!((h.mean() - 1011.28).abs() < 0.01);
        // 3 of 5 observations fall at or below bound 10.0.
        assert_eq!(h.quantile_bound(0.6), 10.0);
        // The top quantile lands in the overflow bucket -> observed max.
        assert_eq!(h.quantile_bound(1.0), 5000.0);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_buckets_rejected() {
        let _ = Histogram::new(&[10.0, 1.0]);
    }

    #[test]
    fn summary_renders_all_kinds() {
        let mut m = MetricsRegistry::new();
        m.counter_add("ifds.iterations", 42);
        m.gauge_set("field.G.mul.peak", 1.75);
        m.histogram_record("s3.eval_us", 12.0);
        let s = m.render_summary();
        assert!(s.contains("ifds.iterations"));
        assert!(s.contains("42"));
        assert!(s.contains("field.G.mul.peak"));
        assert!(s.contains("s3.eval_us"));
        assert!(MetricsRegistry::new()
            .render_summary()
            .contains("no metrics"));
    }
}
