//! The collecting recorder behind `--trace`, `--metrics` and
//! `--timeline`.
//!
//! [`TraceRecorder`] buffers everything in memory (interior mutability,
//! single-threaded — one recorder per scheduling run) and
//! [`TraceRecorder::finish`] freezes it into a [`TraceData`] that the
//! sinks in [`crate::sink`] serialize.

use std::cell::RefCell;
use std::time::Instant;

use crate::metrics::MetricsRegistry;
use crate::recorder::{Recorder, SpanId, TimelinePoint, Value};

/// What one recorded event was.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEventKind {
    /// A span opened.
    SpanEnter {
        /// Id paired with the matching exit.
        id: SpanId,
        /// Span name (e.g. `"s3.commit"`).
        name: &'static str,
        /// Attached fields.
        fields: Vec<(&'static str, Value)>,
    },
    /// A span closed.
    SpanExit {
        /// Id of the matching enter.
        id: SpanId,
    },
    /// An instant event.
    Instant {
        /// Event name (e.g. `"sim.conflict"`).
        name: &'static str,
        /// Attached fields.
        fields: Vec<(&'static str, Value)>,
    },
    /// A counter increment (also folded into the metrics registry).
    Counter {
        /// Counter name.
        name: &'static str,
        /// Increment.
        delta: u64,
    },
    /// A convergence-timeline sample.
    Point(TimelinePoint),
}

/// One timestamped event of a recording session.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Microseconds since the recorder was created.
    pub ts_us: u64,
    /// The event payload.
    pub kind: TraceEventKind,
}

/// Everything a recording session captured.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceData {
    /// Timestamped event stream in recording order.
    pub events: Vec<TraceEvent>,
    /// Final counter/gauge/histogram state.
    pub metrics: MetricsRegistry,
}

#[derive(Debug)]
struct Inner {
    events: Vec<TraceEvent>,
    metrics: MetricsRegistry,
    next_span: u64,
    open_spans: Vec<SpanId>,
}

/// The enabled, collecting [`Recorder`].
///
/// Not `Sync` by design: recording is per scheduling run; parallel
/// design-space exploration records per-candidate results *after* the
/// parallel region (see `tcms-core::explore`), keeping both the schedule
/// results and the event stream deterministic.
#[derive(Debug)]
pub struct TraceRecorder {
    started: Instant,
    inner: RefCell<Inner>,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceRecorder {
    /// Creates an empty recording session; timestamps are measured from
    /// this moment.
    pub fn new() -> Self {
        TraceRecorder {
            started: Instant::now(),
            inner: RefCell::new(Inner {
                events: Vec::new(),
                metrics: MetricsRegistry::new(),
                next_span: 1,
                open_spans: Vec::new(),
            }),
        }
    }

    fn now_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    fn push(&self, kind: TraceEventKind) {
        let ts_us = self.now_us();
        self.inner
            .borrow_mut()
            .events
            .push(TraceEvent { ts_us, kind });
    }

    /// Number of spans currently open (used by tests and the summary).
    pub fn open_span_depth(&self) -> usize {
        self.inner.borrow().open_spans.len()
    }

    /// Freezes the session. Open spans are closed at the final timestamp
    /// so sinks always see balanced enter/exit pairs.
    pub fn finish(self) -> TraceData {
        let mut inner = self.inner.into_inner();
        while let Some(id) = inner.open_spans.pop() {
            let ts_us = inner.events.last().map(|e| e.ts_us).unwrap_or(0);
            inner.events.push(TraceEvent {
                ts_us,
                kind: TraceEventKind::SpanExit { id },
            });
        }
        TraceData {
            events: inner.events,
            metrics: inner.metrics,
        }
    }
}

impl Recorder for TraceRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn span_enter(&self, name: &'static str, fields: &[(&'static str, Value)]) -> SpanId {
        let ts_us = self.now_us();
        let mut inner = self.inner.borrow_mut();
        let id = SpanId(inner.next_span);
        inner.next_span += 1;
        inner.open_spans.push(id);
        inner.events.push(TraceEvent {
            ts_us,
            kind: TraceEventKind::SpanEnter {
                id,
                name,
                fields: fields.to_vec(),
            },
        });
        id
    }

    fn span_exit(&self, span: SpanId) {
        if !span.is_some() {
            return;
        }
        let ts_us = self.now_us();
        let mut inner = self.inner.borrow_mut();
        // Guards drop LIFO; tolerate (and record) out-of-order exits, the
        // nesting validator will flag them.
        if let Some(pos) = inner.open_spans.iter().rposition(|&s| s == span) {
            inner.open_spans.remove(pos);
        }
        inner.events.push(TraceEvent {
            ts_us,
            kind: TraceEventKind::SpanExit { id: span },
        });
    }

    fn event(&self, name: &'static str, fields: &[(&'static str, Value)]) {
        self.push(TraceEventKind::Instant {
            name,
            fields: fields.to_vec(),
        });
    }

    fn counter_add(&self, name: &'static str, delta: u64) {
        let ts_us = self.now_us();
        let mut inner = self.inner.borrow_mut();
        inner.metrics.counter_add(name, delta);
        inner.events.push(TraceEvent {
            ts_us,
            kind: TraceEventKind::Counter { name, delta },
        });
    }

    fn gauge_set(&self, name: &'static str, value: f64) {
        self.inner.borrow_mut().metrics.gauge_set(name, value);
    }

    fn histogram_record(&self, name: &'static str, value: f64) {
        self.inner
            .borrow_mut()
            .metrics
            .histogram_record(name, value);
    }

    fn timeline(&self, point: TimelinePoint) {
        self.push(TraceEventKind::Point(point));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span;

    #[test]
    fn records_nested_spans_in_order() {
        let rec = TraceRecorder::new();
        {
            let _a = span!(&rec, "outer", x = 1u64);
            assert_eq!(rec.open_span_depth(), 1);
            {
                let _b = span!(&rec, "inner");
                assert_eq!(rec.open_span_depth(), 2);
            }
            assert_eq!(rec.open_span_depth(), 1);
        }
        let data = rec.finish();
        let kinds: Vec<&TraceEventKind> = data.events.iter().map(|e| &e.kind).collect();
        assert!(matches!(
            kinds[0],
            TraceEventKind::SpanEnter { name: "outer", .. }
        ));
        assert!(matches!(
            kinds[1],
            TraceEventKind::SpanEnter { name: "inner", .. }
        ));
        assert!(matches!(kinds[2], TraceEventKind::SpanExit { .. }));
        assert!(matches!(kinds[3], TraceEventKind::SpanExit { .. }));
        crate::sink::check_span_nesting(&data.events).unwrap();
    }

    #[test]
    fn counters_fold_into_registry_and_stream() {
        let rec = TraceRecorder::new();
        rec.counter_add("c", 2);
        rec.counter_add("c", 3);
        rec.gauge_set("g", 9.0);
        rec.histogram_record("h", 4.0);
        let data = rec.finish();
        assert_eq!(data.metrics.counter("c"), 5);
        assert_eq!(data.metrics.gauge("g"), Some(9.0));
        assert_eq!(data.metrics.histogram("h").unwrap().count(), 1);
        let counter_events = data
            .events
            .iter()
            .filter(|e| matches!(e.kind, TraceEventKind::Counter { .. }))
            .count();
        assert_eq!(counter_events, 2);
    }

    #[test]
    fn finish_closes_leaked_spans() {
        let rec = TraceRecorder::new();
        let id = rec.span_enter("leaked", &[]);
        assert!(id.is_some());
        let data = rec.finish();
        crate::sink::check_span_nesting(&data.events).unwrap();
    }

    #[test]
    fn timestamps_are_monotone() {
        let rec = TraceRecorder::new();
        for _ in 0..100 {
            rec.counter_add("c", 1);
        }
        let data = rec.finish();
        assert!(data.events.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
    }
}
