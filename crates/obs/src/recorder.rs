//! The recording trait, field values, span guards and the no-op recorder.

use std::fmt;

/// A typed field value attached to spans, events and timeline samples.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (ids, counts, time steps).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating-point (forces, utilizations).
    F64(f64),
    /// Text (names, labels).
    Str(String),
    /// Boolean flag.
    Bool(bool),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

macro_rules! value_from {
    ($($ty:ty => $variant:ident as $conv:ty),* $(,)?) => {
        $(impl From<$ty> for Value {
            fn from(v: $ty) -> Value {
                Value::$variant(v as $conv)
            }
        })*
    };
}

value_from! {
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64,
    u64 => U64 as u64, usize => U64 as u64,
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64, i64 => I64 as i64,
    f32 => F64 as f64, f64 => F64 as f64,
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

/// Identifier of an open span. `SpanId::NONE` (0) marks "no span", the
/// id handed out by disabled recorders; recorders start real ids at 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null span id of disabled recorders.
    pub const NONE: SpanId = SpanId(0);

    /// Whether this id refers to a real span.
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

/// One convergence-timeline sample: a named phase, an iteration index and
/// a flat list of `(series, value)` pairs. The JSONL sink writes one line
/// per point; the Chrome sink maps each point to a counter event so
/// Perfetto plots the series over time.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelinePoint {
    /// Which loop produced the sample (`"s3"`, `"field"`, `"sweep"`, …).
    pub phase: &'static str,
    /// Iteration index within the phase.
    pub iteration: u64,
    /// Sampled series values, e.g. `("G.mul.slot3", 1.4)`.
    pub values: Vec<(String, f64)>,
}

/// The recording interface every instrumented hot path talks to.
///
/// All methods take `&self` (implementations use interior mutability) and
/// default to no-ops, so the trait is object-safe and a `&dyn Recorder`
/// can be threaded through engines without generic plumbing.
///
/// # Zero-cost contract
///
/// Call sites that would *compute* anything for recording (format a
/// string, snapshot a profile) must gate on [`Recorder::enabled`]. With
/// the [`NoopRecorder`] that is a single always-false virtual call per
/// phase, which keeps the scheduling hot loop branch-predictable; the
/// integration suite asserts schedules are bit-identical with recording
/// on and off.
pub trait Recorder {
    /// Whether this recorder keeps anything at all. Disabled recorders
    /// return `false` and every other method may be skipped.
    fn enabled(&self) -> bool {
        false
    }

    /// Opens a span. Returns the id to pass to [`Recorder::span_exit`];
    /// prefer the [`crate::span!`] macro / [`crate::span_enter`] guard,
    /// which pair the exit automatically.
    fn span_enter(&self, name: &'static str, fields: &[(&'static str, Value)]) -> SpanId {
        let _ = (name, fields);
        SpanId::NONE
    }

    /// Closes a span opened by [`Recorder::span_enter`].
    fn span_exit(&self, span: SpanId) {
        let _ = span;
    }

    /// Records an instant event (e.g. a simulator conflict).
    fn event(&self, name: &'static str, fields: &[(&'static str, Value)]) {
        let _ = (name, fields);
    }

    /// Adds to a monotone counter.
    fn counter_add(&self, name: &'static str, delta: u64) {
        let _ = (name, delta);
    }

    /// Sets a gauge to its latest value.
    fn gauge_set(&self, name: &'static str, value: f64) {
        let _ = (name, value);
    }

    /// Records one observation into a fixed-bucket histogram.
    fn histogram_record(&self, name: &'static str, value: f64) {
        let _ = (name, value);
    }

    /// Appends one convergence-timeline sample.
    fn timeline(&self, point: TimelinePoint) {
        let _ = point;
    }
}

/// The disabled recorder: a zero-sized type whose every method is the
/// trait default no-op. This is what release hot paths run against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// RAII guard closing a span on drop. Guards drop in LIFO order, so
/// nesting is well-formed by construction.
#[must_use = "dropping the guard immediately closes the span"]
pub struct Span<'r> {
    rec: Option<&'r dyn Recorder>,
    id: SpanId,
}

impl Span<'_> {
    /// The id of the underlying span (`SpanId::NONE` when disabled).
    pub fn id(&self) -> SpanId {
        self.id
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(rec) = self.rec {
            rec.span_exit(self.id);
        }
    }
}

/// Opens a span guard on `rec`; the span closes when the guard drops.
/// With a disabled recorder this is one virtual `enabled()` call and no
/// allocation.
pub fn span_enter<'r>(
    rec: &'r dyn Recorder,
    name: &'static str,
    fields: &[(&'static str, Value)],
) -> Span<'r> {
    if !rec.enabled() {
        return Span {
            rec: None,
            id: SpanId::NONE,
        };
    }
    Span {
        rec: Some(rec),
        id: rec.span_enter(name, fields),
    }
}

/// Opens a wall-clock-timed span with named fields:
///
/// ```
/// use tcms_obs::{span, NoopRecorder, Recorder};
/// let rec = NoopRecorder;
/// let _guard = span!(&rec, "s3.commit", block = 3u64, process = 1u64);
/// ```
///
/// Field values are anything `Into<Value>`; the guard exits the span when
/// it drops. With a disabled recorder the field expressions are still
/// evaluated (keep them to cheap copies like indices) but nothing is
/// stored.
#[macro_export]
macro_rules! span {
    ($rec:expr, $name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        $crate::span_enter(
            $rec,
            $name,
            &[$((stringify!($key), $crate::Value::from($val))),*],
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_recorder_is_disabled_and_inert() {
        let rec = NoopRecorder;
        assert!(!rec.enabled());
        let id = rec.span_enter("x", &[]);
        assert!(!id.is_some());
        rec.span_exit(id);
        rec.counter_add("c", 1);
        rec.gauge_set("g", 1.0);
        rec.histogram_record("h", 1.0);
        rec.event("e", &[("k", Value::from(1u64))]);
        rec.timeline(TimelinePoint {
            phase: "p",
            iteration: 0,
            values: vec![],
        });
    }

    #[test]
    fn span_macro_compiles_with_and_without_fields() {
        let rec = NoopRecorder;
        let g = span!(&rec, "bare");
        drop(g);
        let g = span!(&rec, "fields", a = 1u32, b = 2.5f64, c = "s", d = true);
        assert_eq!(g.id(), SpanId::NONE);
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(3u32), Value::U64(3));
        assert_eq!(Value::from(-3i32), Value::I64(-3));
        assert_eq!(Value::from(1.5f64), Value::F64(1.5));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(7usize).to_string(), "7");
    }
}
