#![warn(missing_docs)]
//! Structured observability for the TCMS scheduling stack.
//!
//! The coupled modulo scheduler converges through thousands of force
//! evaluations, period-grid decisions and cross-process commits. This
//! crate provides the visibility layer the rest of the workspace records
//! into, built around one rule: **recording must never change a result
//! and must cost (almost) nothing when disabled**.
//!
//! * [`Recorder`] — the object-safe recording trait every instrumented
//!   hot path talks to. The default implementation of every method is a
//!   no-op, and [`NoopRecorder`] (a zero-sized type) is the standard
//!   disabled recorder: call sites gate their instrumentation work on
//!   [`Recorder::enabled`], so the release hot path pays one
//!   branch-predictable virtual call per *phase*, not per force.
//! * [`span!`] / [`span_enter`] — nested, wall-clock-timed spans
//!   (`span!(rec, "s3.commit", block = b, process = p)`) with RAII exit.
//! * [`MetricsRegistry`] — typed counters, gauges and fixed-bucket
//!   histograms, renderable as a human-readable summary table.
//! * [`TimelinePoint`] — per-iteration convergence samples (force totals,
//!   slot occupancy of the `M_p`/`G_k` fields, sweep points).
//! * [`TraceRecorder`] — the collecting implementation behind the
//!   `--trace`/`--metrics`/`--timeline` flags, with three sinks: a
//!   summary table, a JSONL event stream, and Chrome `trace_event` JSON
//!   loadable in `about:tracing` / [Perfetto](https://ui.perfetto.dev).
//! * [`sink`] — emitters, parsers and validators for the two file
//!   formats (used by tests and the `trace_check` CI binary).
//!
//! # Example
//!
//! ```
//! use tcms_obs::{span, Recorder, TraceRecorder};
//!
//! let rec = TraceRecorder::new();
//! {
//!     let _outer = span!(&rec, "s3.schedule", blocks = 7u64);
//!     let _inner = span!(&rec, "s3.commit", block = 3u64);
//!     rec.counter_add("ifds.iterations", 1);
//! } // spans exit in LIFO order here
//! let data = rec.finish();
//! assert_eq!(data.events.len(), 5); // 2 enters + 2 exits + 1 counter
//! tcms_obs::sink::check_span_nesting(&data.events).unwrap();
//! ```

pub mod json;
pub mod metrics;
pub mod recorder;
pub mod sink;
pub mod trace;

pub use metrics::{Histogram, MetricName, MetricsRegistry};
pub use recorder::{span_enter, NoopRecorder, Recorder, Span, SpanId, TimelinePoint, Value};
pub use sink::{validate_journal, JournalCheck, JOURNAL_MAGIC, JOURNAL_VERSION};
pub use trace::{TraceData, TraceEvent, TraceEventKind, TraceRecorder};
