//! Fleet end-to-end tests: anti-entropy convergence as a seeded
//! property test, and the cross-node cache-hit guarantee over both
//! wire framings (NDJSON proxying and the HTTP front-end).

use std::io::{BufRead as _, BufReader, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};

use tcms_core::CacheableResult;
use tcms_ir::SpecHash;
use tcms_obs::NoopRecorder;
use tcms_serve::fleet::sync;
use tcms_serve::protocol::parse_response;
use tcms_serve::{
    request_cache_key, schedule_request, CacheKey, ExecContext, FleetConfig, HashRing, SchedCache,
    ScheduleOptions, ServeConfig, Server, DEFAULT_AUTO_PARTITION_OPS,
};

/// Deterministic xorshift64 — the repo's standard seeded generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn random_entry(rng: &mut Rng, tag: u64) -> (CacheKey, CacheableResult) {
    let key = CacheKey {
        spec: SpecHash::of_text(&format!("spec-{tag}-{}", rng.below(1 << 20))),
        config: rng.next(),
    };
    let starts = (0..1 + rng.below(12))
        .map(|_| rng.below(64) as u32)
        .collect();
    let note = (rng.below(3) == 0).then(|| format!("note-{}", rng.below(100)));
    (
        key,
        CacheableResult {
            starts,
            iterations: rng.below(50),
            note,
        },
    )
}

/// One closure-driven pull: `dst` pulls every diverging shard from
/// `src` — pure function calls, no TCP, so the property test explores
/// thousands of states in milliseconds.
fn pull(dst: &SchedCache, src: &SchedCache) -> sync::SyncOutcome {
    let theirs = sync::digests(src);
    sync::pull_round(dst, &theirs, |shard| {
        Ok::<_, std::convert::Infallible>(
            sync::shard_entries(src, shard)
                .into_iter()
                .map(|(k, v)| (k, (*v).clone()))
                .collect(),
        )
    })
    .unwrap()
}

#[test]
fn anti_entropy_converges_from_arbitrary_disjoint_states_in_two_rounds() {
    let mut rng = Rng(0x5EED_0001);
    for case in 0..200 {
        // Arbitrary split: some entries on A only, some on B only, some
        // shared — under different shard layouts on each side.
        let a = SchedCache::new(4096, 1 + rng.below(8) as usize);
        let b = SchedCache::new(4096, 1 + rng.below(8) as usize);
        let total = 1 + rng.below(40);
        for n in 0..total {
            let (key, value) = random_entry(&mut rng, case * 1000 + n);
            let value = std::sync::Arc::new(value);
            match rng.below(3) {
                0 => a.insert(key, value),
                1 => b.insert(key, value),
                _ => {
                    a.insert(key, std::sync::Arc::clone(&value));
                    b.insert(key, value);
                }
            }
        }
        // Two alternating pull rounds reach the union on both sides.
        pull(&a, &b);
        pull(&b, &a);
        assert_eq!(
            sync::digests(&a),
            sync::digests(&b),
            "case {case}: digests diverge after two rounds"
        );
        assert_eq!(a.len(), b.len(), "case {case}");
        // A third round is a no-op: nothing diverges, nothing ships.
        let extra = pull(&a, &b);
        assert_eq!(
            (extra.shards_pulled, extra.applied),
            (0, 0),
            "case {case}: converged caches must not keep pulling"
        );
    }
}

#[test]
fn apply_entries_is_idempotent_and_commutative() {
    let mut rng = Rng(0x5EED_0002);
    for case in 0..100 {
        let entries: Vec<(CacheKey, CacheableResult)> = (0..1 + rng.below(20))
            .map(|n| random_entry(&mut rng, case * 1000 + n))
            .collect();
        // Idempotent: the second application inserts nothing and leaves
        // the digests untouched.
        let cache = SchedCache::new(4096, 4);
        let first = sync::apply_entries(&cache, entries.clone());
        assert_eq!(first, entries.len(), "case {case}");
        let before = sync::digests(&cache);
        assert_eq!(sync::apply_entries(&cache, entries.clone()), 0);
        assert_eq!(sync::digests(&cache), before, "case {case}: not idempotent");
        // Commutative: applying in reverse order on a fresh cache lands
        // on the same digests (values are content-addressed, so the set
        // is all that matters).
        let reversed = SchedCache::new(4096, 4);
        let mut rev = entries.clone();
        rev.reverse();
        let _ = sync::apply_entries(&reversed, rev);
        assert_eq!(
            sync::digests(&reversed),
            before,
            "case {case}: not commutative"
        );
    }
}

const SAMPLE: &str = "resource add delay=1 area=1\nresource mul delay=2 area=4 pipelined\n\
    process A\nblock body time=8\nop m0 mul\nop a0 add\nedge m0 a0\n\
    process B\nblock body time=8\nop m0 mul\nop a0 add\nedge m0 a0\n";

fn reserve_ports(n: usize) -> Vec<String> {
    (0..n)
        .map(|_| {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            drop(listener);
            format!("127.0.0.1:{}", addr.port())
        })
        .collect()
}

fn ndjson_roundtrip(addr: SocketAddr, request: &str) -> tcms_serve::Response {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    parse_response(line.trim_end()).unwrap()
}

fn http_roundtrip(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8(raw).unwrap();
    let (head, payload) = text.split_once("\r\n\r\n").unwrap();
    let status: u16 = head.split_whitespace().nth(1).unwrap().parse().unwrap();
    (status, payload.to_owned())
}

#[test]
fn a_spec_scheduled_on_node_a_is_a_verbatim_hit_from_node_b_on_both_wires() {
    let peers = reserve_ports(2);
    let opts = ScheduleOptions {
        all_global: Some(4),
        ..ScheduleOptions::default()
    };
    let key = request_cache_key(SAMPLE, &opts, DEFAULT_AUTO_PARTITION_OPS)
        .unwrap()
        .unwrap();
    // R=1 so exactly one node owns the key and the other must proxy.
    let ring = HashRing::new(&peers, 1);
    let owner_idx = peers.iter().position(|p| p == ring.owner(&key)).unwrap();
    let servers: Vec<Server> = peers
        .iter()
        .map(|addr| {
            Server::start(ServeConfig {
                listen: addr.clone(),
                workers: 2,
                http_listen: Some("127.0.0.1:0".into()),
                fleet: Some(FleetConfig {
                    replicas: 1,
                    sync_interval: None,
                    ..FleetConfig::new(addr.clone(), peers.clone())
                }),
                ..ServeConfig::default()
            })
            .unwrap()
        })
        .collect();
    let node_a = &servers[owner_idx];
    let node_b = &servers[1 - owner_idx];
    // The ground truth: the one-shot pipeline with no cache at all.
    let ctx = ExecContext {
        cache: None,
        budget: tcms_fds::RunBudget::UNLIMITED,
        rec: &NoopRecorder,
        fault_marker: false,
        auto_partition_ops: DEFAULT_AUTO_PARTITION_OPS,
    };
    let oneshot = schedule_request(SAMPLE, &opts, &ctx).unwrap();
    let design = SAMPLE.replace('\n', "\\n");
    let req = format!(r#"{{"id":"a","action":"schedule","design":"{design}","all_global":4}}"#);
    // Schedule once on node A (the owner).
    let first = ndjson_roundtrip(node_a.local_addr(), &req);
    assert_eq!(first.cache(), Some("miss"), "{:?}", first.error);
    assert_eq!(first.output().unwrap(), oneshot.text, "daemon == one-shot");
    // Node B answers the same request as a *hit* without running any
    // scheduler work of its own — proxied NDJSON first.
    let via_b = ndjson_roundtrip(node_b.local_addr(), &req);
    assert_eq!(via_b.cache(), Some("hit"), "{:?}", via_b.error);
    assert_eq!(via_b.output(), first.output(), "bit-identical across nodes");
    assert_eq!(node_b.counter("serve.scheduler.runs"), 0);
    assert_eq!(node_b.counter("serve.ifds.iterations"), 0);
    assert_eq!(node_b.counter("serve.fleet.proxied"), 1);
    // And over HTTP: the response body IS the NDJSON line.
    let body = format!(r#"{{"id":"a","design":"{design}","all_global":4}}"#);
    let (status, payload) = http_roundtrip(
        node_b.local_http_addr().unwrap(),
        "POST",
        "/schedule",
        &body,
    );
    assert_eq!(status, 200, "{payload}");
    let via_http = parse_response(payload.trim_end()).unwrap();
    assert_eq!(via_http.cache(), Some("hit"));
    assert_eq!(via_http.output(), first.output());
    assert_eq!(node_b.counter("serve.scheduler.runs"), 0);
    assert_eq!(node_b.counter("serve.ifds.iterations"), 0);
    assert_eq!(node_a.counter("serve.scheduler.runs"), 1, "one run total");
    for server in servers {
        server.shutdown();
        server.wait().unwrap();
    }
}
