//! The newline-delimited JSON wire protocol of the daemon.
//!
//! One request per line, one response per line, both UTF-8 JSON objects.
//! Responses carry the request's `id` verbatim, so clients may pipeline
//! requests and match responses out of order (the daemon answers in
//! completion order, not arrival order).
//!
//! # Requests
//!
//! ```json
//! {"id":"1","action":"schedule","design":"resource add ...",
//!  "all_global":4,"globals":{"mul":2},"gantt":false,"verify":3,
//!  "degrade":false,"deadline_ms":2000}
//! {"id":"2","action":"simulate","design":"...","all_global":4,
//!  "horizon":5000,"seed":0,"mean_gap":50}
//! {"id":"3","action":"stats"}
//! {"id":"4","action":"ping"}
//! {"id":"5","action":"shutdown"}
//! ```
//!
//! # Responses
//!
//! Success: `{"id":"1","ok":true,"output":"...","cache":"miss",
//! "iterations":17}` — `output` is byte-identical to the one-shot CLI's
//! stdout for the same request. Failure: `{"id":"1","ok":false,
//! "error":{"class":"infeasible","code":6,"message":"..."}}` with the
//! classes and codes of [`ServeError`].

use std::collections::BTreeMap;

use tcms_core::{CacheableResult, PartitionCount};
use tcms_ir::SpecHash;
use tcms_obs::json::{self, JsonValue};

use crate::cache::{CacheKey, Disposition};
use crate::error::ServeError;
use crate::pipeline::{ScheduleOptions, SimulateOptions};

/// A client request identifier: echoed back verbatim in the response.
pub type RequestId = JsonValue;

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Schedule a design and render the report.
    Schedule {
        /// The design text (either input language).
        design: String,
        /// Schedule options (the CLI's flags).
        opts: ScheduleOptions,
    },
    /// Schedule, then simulate reactive load.
    Simulate {
        /// The design text.
        design: String,
        /// Simulation options.
        opts: SimulateOptions,
    },
    /// Report daemon statistics (cache, queue, counters).
    Stats,
    /// Liveness probe.
    Ping,
    /// Ask the daemon to shut down gracefully.
    Shutdown,
    /// Fleet anti-entropy: report the per-sync-shard cache digests
    /// (entry count + fnv64 checksum; see [`crate::fleet::sync`]).
    SyncDigest,
    /// Fleet anti-entropy: return cache entries — one whole sync shard
    /// (`{"shard":3}`) or one exact content address
    /// (`{"spec":"…","config":"…"}`); exactly one selector is required.
    SyncPull {
        /// Sync-shard index to dump, when pulling a shard.
        shard: Option<usize>,
        /// Exact content address, when fetching a single entry.
        key: Option<CacheKey>,
    },
    /// Fleet anti-entropy: apply an op-batch of self-checking entries
    /// (the snapshot's node-independent JSONL encoding, embedded as a
    /// JSON array). Entries failing their integrity check are dropped,
    /// not applied — corruption never replicates.
    SyncPush {
        /// Entries that passed their per-entry integrity check.
        entries: Vec<(CacheKey, CacheableResult)>,
        /// How many entries of the batch failed their check and were
        /// dropped (echoed in the response for observability).
        rejected: usize,
    },
}

/// A parsed request: id, action, and optional per-job deadline.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Echoed back verbatim; `null` when the client sent none.
    pub id: RequestId,
    /// What to do.
    pub action: Action,
    /// Per-job deadline in milliseconds, measured from arrival.
    pub deadline_ms: Option<u64>,
}

fn to_u64(v: &JsonValue) -> Option<u64> {
    let n = v.as_f64()?;
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    if n >= 0.0 && n.fract() == 0.0 && n <= 2f64.powi(53) {
        Some(n as u64)
    } else {
        None
    }
}

fn field_u64(obj: &JsonValue, key: &str) -> Result<Option<u64>, ServeError> {
    match obj.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(v) => to_u64(v).map(Some).ok_or_else(|| {
            ServeError::BadRequest(format!("`{key}` must be a non-negative integer"))
        }),
    }
}

fn field_u32(obj: &JsonValue, key: &str) -> Result<Option<u32>, ServeError> {
    match field_u64(obj, key)? {
        None => Ok(None),
        Some(n) => u32::try_from(n)
            .map(Some)
            .map_err(|_| ServeError::BadRequest(format!("`{key}` out of range"))),
    }
}

fn field_bool(obj: &JsonValue, key: &str) -> Result<bool, ServeError> {
    match obj.get(key) {
        None | Some(JsonValue::Null) => Ok(false),
        Some(JsonValue::Bool(b)) => Ok(*b),
        Some(_) => Err(ServeError::BadRequest(format!("`{key}` must be a boolean"))),
    }
}

/// Parses `partition`: the string `"auto"` or a positive partition
/// count.
fn field_partition(obj: &JsonValue) -> Result<Option<PartitionCount>, ServeError> {
    let bad = || ServeError::BadRequest("`partition` must be `auto` or a positive count".into());
    match obj.get("partition") {
        None | Some(JsonValue::Null) => Ok(None),
        Some(JsonValue::String(s)) if s == "auto" => Ok(Some(PartitionCount::Auto)),
        Some(v) => {
            let n = to_u64(v)
                .and_then(|n| usize::try_from(n).ok())
                .ok_or_else(bad)?;
            if n == 0 {
                return Err(bad());
            }
            Ok(Some(PartitionCount::Fixed(n)))
        }
    }
}

fn field_design(obj: &JsonValue) -> Result<String, ServeError> {
    obj.get("design")
        .and_then(JsonValue::as_str)
        .map(str::to_owned)
        .ok_or_else(|| ServeError::BadRequest("`design` must be a string".into()))
}

/// Parses `globals`: an object `{"mul":2}` (keys sorted — deterministic)
/// or an array of `[name, period]` pairs (order preserved).
fn field_globals(obj: &JsonValue) -> Result<Vec<(String, u32)>, ServeError> {
    let bad = || ServeError::BadRequest("`globals` must map type names to periods".into());
    match obj.get("globals") {
        None | Some(JsonValue::Null) => Ok(Vec::new()),
        Some(JsonValue::Object(map)) => map
            .iter()
            .map(|(name, v)| {
                let period = to_u64(v)
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(bad)?;
                Ok((name.clone(), period))
            })
            .collect(),
        Some(JsonValue::Array(items)) => items
            .iter()
            .map(|item| {
                let pair = item.as_array().ok_or_else(bad)?;
                let [name, period] = pair else {
                    return Err(bad());
                };
                let name = name.as_str().ok_or_else(bad)?.to_owned();
                let period = to_u64(period)
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(bad)?;
                Ok((name, period))
            })
            .collect(),
        Some(_) => Err(bad()),
    }
}

/// Parses one request line.
///
/// # Errors
///
/// Returns [`ServeError::BadRequest`] for invalid JSON, missing or
/// ill-typed fields and unknown actions. The parsed `id` is returned
/// alongside the error whenever the line was at least a JSON object, so
/// the response can still be correlated.
pub fn parse_request(line: &str) -> Result<Request, (RequestId, ServeError)> {
    let v = json::parse(line).map_err(|e| {
        (
            JsonValue::Null,
            ServeError::BadRequest(format!("invalid JSON: {e}")),
        )
    })?;
    if v.as_object().is_none() {
        return Err((
            JsonValue::Null,
            ServeError::BadRequest("request must be a JSON object".into()),
        ));
    }
    let id = v.get("id").cloned().unwrap_or(JsonValue::Null);
    parse_body(&v)
        .map_err(|e| (id.clone(), e))
        .map(|(action, deadline_ms)| Request {
            id,
            action,
            deadline_ms,
        })
}

fn parse_body(v: &JsonValue) -> Result<(Action, Option<u64>), ServeError> {
    let deadline_ms = field_u64(v, "deadline_ms")?;
    let action = v
        .get("action")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| ServeError::BadRequest("`action` must be a string".into()))?;
    let action = match action {
        "schedule" => Action::Schedule {
            design: field_design(v)?,
            opts: ScheduleOptions {
                all_global: field_u32(v, "all_global")?,
                globals: field_globals(v)?,
                gantt: field_bool(v, "gantt")?,
                verify: usize::try_from(field_u64(v, "verify")?.unwrap_or(0))
                    .map_err(|_| ServeError::BadRequest("`verify` out of range".into()))?,
                degrade: field_bool(v, "degrade")?,
                partition: field_partition(v)?,
            },
        },
        "simulate" => {
            let defaults = SimulateOptions::default();
            let horizon = field_u64(v, "horizon")?.unwrap_or(defaults.horizon);
            let mean_gap = field_u64(v, "mean_gap")?.unwrap_or(defaults.mean_gap);
            if horizon == 0 {
                return Err(ServeError::BadRequest("`horizon` must be positive".into()));
            }
            if mean_gap == 0 {
                return Err(ServeError::BadRequest("`mean_gap` must be positive".into()));
            }
            Action::Simulate {
                design: field_design(v)?,
                opts: SimulateOptions {
                    all_global: field_u32(v, "all_global")?,
                    globals: field_globals(v)?,
                    horizon,
                    seed: field_u64(v, "seed")?.unwrap_or(defaults.seed),
                    mean_gap,
                },
            }
        }
        "stats" => Action::Stats,
        "ping" => Action::Ping,
        "shutdown" => Action::Shutdown,
        "sync_digest" => Action::SyncDigest,
        "sync_pull" => {
            let shard = match field_u64(v, "shard")? {
                None => None,
                Some(n) => Some(
                    usize::try_from(n)
                        .map_err(|_| ServeError::BadRequest("`shard` out of range".into()))?,
                ),
            };
            let key = parse_key_fields(v)?;
            if shard.is_some() == key.is_some() {
                return Err(ServeError::BadRequest(
                    "`sync_pull` needs exactly one of `shard` or `spec`+`config`".into(),
                ));
            }
            Action::SyncPull { shard, key }
        }
        "sync_push" => {
            let items = v
                .get("entries")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| {
                    ServeError::BadRequest("`entries` must be an array of cache entries".into())
                })?;
            let mut entries = Vec::with_capacity(items.len());
            let mut rejected = 0usize;
            for item in items {
                match crate::persist::parse_entry_value(item) {
                    Some(entry) => entries.push(entry),
                    None => rejected += 1,
                }
            }
            Action::SyncPush { entries, rejected }
        }
        other => {
            return Err(ServeError::UnknownAction(other.to_owned()));
        }
    };
    Ok((action, deadline_ms))
}

/// Parses the optional exact-key selector of `sync_pull`: both `spec`
/// and `config` must be present (hex strings) or both absent.
fn parse_key_fields(v: &JsonValue) -> Result<Option<CacheKey>, ServeError> {
    let bad = || ServeError::BadRequest("`spec` and `config` must be hex strings".into());
    match (v.get("spec"), v.get("config")) {
        (None, None) => Ok(None),
        (Some(spec), Some(config)) => {
            let spec = SpecHash::parse(spec.as_str().ok_or_else(bad)?).map_err(|_| bad())?;
            let config =
                u64::from_str_radix(config.as_str().ok_or_else(bad)?, 16).map_err(|_| bad())?;
            Ok(Some(CacheKey { spec, config }))
        }
        _ => Err(bad()),
    }
}

/// One response line (without the trailing newline).
#[must_use]
pub fn success_line(id: &RequestId, body: BTreeMap<String, JsonValue>) -> String {
    let mut map = body;
    map.insert("id".into(), id.clone());
    map.insert("ok".into(), JsonValue::Bool(true));
    json::to_string(&JsonValue::Object(map))
}

/// The success body of a schedule/simulate response.
#[must_use]
pub fn output_body(
    output: &str,
    disposition: Disposition,
    iterations: u64,
) -> BTreeMap<String, JsonValue> {
    let mut map = BTreeMap::new();
    map.insert("output".into(), JsonValue::String(output.to_owned()));
    map.insert(
        "cache".into(),
        JsonValue::String(disposition.as_str().to_owned()),
    );
    #[allow(clippy::cast_precision_loss)]
    map.insert("iterations".into(), JsonValue::Number(iterations as f64));
    map
}

/// One error-response line (without the trailing newline).
#[must_use]
pub fn error_line(id: &RequestId, error: &ServeError) -> String {
    let mut err = BTreeMap::new();
    err.insert("class".into(), JsonValue::String(error.class().to_owned()));
    err.insert("code".into(), JsonValue::Number(f64::from(error.code())));
    err.insert("message".into(), JsonValue::String(error.to_string()));
    let mut map = BTreeMap::new();
    map.insert("id".into(), id.clone());
    map.insert("ok".into(), JsonValue::Bool(false));
    map.insert("error".into(), JsonValue::Object(err));
    json::to_string(&JsonValue::Object(map))
}

/// A decoded response, as seen by the client.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The echoed request id.
    pub id: RequestId,
    /// The full response object (for action-specific fields).
    pub body: JsonValue,
    /// The error `(class, code, message)` when `ok` was false.
    pub error: Option<(String, u16, String)>,
}

impl Response {
    /// Whether the request succeeded.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }

    /// The `output` field of a successful schedule/simulate response.
    #[must_use]
    pub fn output(&self) -> Option<&str> {
        self.body.get("output").and_then(JsonValue::as_str)
    }

    /// The `cache` disposition field, when present.
    #[must_use]
    pub fn cache(&self) -> Option<&str> {
        self.body.get("cache").and_then(JsonValue::as_str)
    }
}

/// Parses one response line (client side).
///
/// # Errors
///
/// Returns a message when the line is not a valid response object.
pub fn parse_response(line: &str) -> Result<Response, String> {
    let v = json::parse(line)?;
    let ok = match v.get("ok") {
        Some(JsonValue::Bool(b)) => *b,
        _ => return Err("response lacks boolean `ok`".into()),
    };
    let id = v.get("id").cloned().unwrap_or(JsonValue::Null);
    let error = if ok {
        None
    } else {
        let e = v.get("error").ok_or("error response lacks `error`")?;
        let class = e
            .get("class")
            .and_then(JsonValue::as_str)
            .ok_or("error lacks `class`")?
            .to_owned();
        let code = e
            .get("code")
            .and_then(JsonValue::as_f64)
            .ok_or("error lacks `code`")?;
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let code = code as u16;
        let message = e
            .get("message")
            .and_then(JsonValue::as_str)
            .unwrap_or_default()
            .to_owned();
        Some((class, code, message))
    };
    Ok(Response { id, body: v, error })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_request_round_trip() {
        let line = r#"{"id":"a1","action":"schedule","design":"x","all_global":4,
            "globals":{"mul":2},"gantt":true,"verify":3,"deadline_ms":250}"#;
        let req = parse_request(&line.replace('\n', " ")).unwrap();
        assert_eq!(req.id, JsonValue::String("a1".into()));
        assert_eq!(req.deadline_ms, Some(250));
        match req.action {
            Action::Schedule { design, opts } => {
                assert_eq!(design, "x");
                assert_eq!(opts.all_global, Some(4));
                assert_eq!(opts.globals, vec![("mul".into(), 2)]);
                assert!(opts.gantt);
                assert_eq!(opts.verify, 3);
                assert!(!opts.degrade);
                assert_eq!(opts.partition, None);
            }
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn partition_field_round_trips() {
        let opts_of = |line: &str| match parse_request(line).unwrap().action {
            Action::Schedule { opts, .. } => opts,
            other => panic!("unexpected action {other:?}"),
        };
        let auto = opts_of(r#"{"action":"schedule","design":"x","partition":"auto"}"#);
        assert_eq!(auto.partition, Some(PartitionCount::Auto));
        let fixed = opts_of(r#"{"action":"schedule","design":"x","partition":4}"#);
        assert_eq!(fixed.partition, Some(PartitionCount::Fixed(4)));
        let absent = opts_of(r#"{"action":"schedule","design":"x"}"#);
        assert_eq!(absent.partition, None);
        // The client renders what the daemon parses.
        for opts in [auto, fixed, absent] {
            let line = crate::client::schedule_request_line("t", "x", &opts, None);
            assert_eq!(opts_of(&line), opts);
        }
        for bad in [
            r#"{"action":"schedule","design":"x","partition":0}"#,
            r#"{"action":"schedule","design":"x","partition":"many"}"#,
            r#"{"action":"schedule","design":"x","partition":true}"#,
        ] {
            assert!(parse_request(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn globals_accepts_pair_array() {
        let req =
            parse_request(r#"{"action":"schedule","design":"x","globals":[["mul",2],["add",4]]}"#)
                .unwrap();
        match req.action {
            Action::Schedule { opts, .. } => {
                assert_eq!(opts.globals, vec![("mul".into(), 2), ("add".into(), 4)]);
            }
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn simulate_defaults_match_the_cli() {
        let req = parse_request(r#"{"action":"simulate","design":"x"}"#).unwrap();
        match req.action {
            Action::Simulate { opts, .. } => assert_eq!(opts, SimulateOptions::default()),
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn control_actions_parse() {
        for (text, want) in [
            (r#"{"action":"stats"}"#, Action::Stats),
            (r#"{"action":"ping"}"#, Action::Ping),
            (r#"{"action":"shutdown"}"#, Action::Shutdown),
        ] {
            assert_eq!(parse_request(text).unwrap().action, want);
        }
    }

    #[test]
    fn bad_requests_keep_their_id() {
        let (id, err) = parse_request(r#"{"id":7,"action":"frobnicate"}"#).unwrap_err();
        assert_eq!(id, JsonValue::Number(7.0));
        // Unknown actions are their own class with a pinned code, so a
        // newer client against an older daemon gets a diagnosable reply.
        assert_eq!(err, ServeError::UnknownAction("frobnicate".into()));
        assert_eq!(err.class(), "unknown-action");
        assert_eq!(err.code(), 404);

        let (id, err) = parse_request("not json").unwrap_err();
        assert_eq!(id, JsonValue::Null);
        assert!(matches!(err, ServeError::BadRequest(_)));

        let (_, err) = parse_request(r#"{"action":"schedule"}"#).unwrap_err();
        assert!(err.to_string().contains("design"), "{err}");

        let (_, err) =
            parse_request(r#"{"action":"simulate","design":"x","horizon":0}"#).unwrap_err();
        assert!(err.to_string().contains("horizon"), "{err}");
    }

    #[test]
    fn response_lines_round_trip() {
        let id = JsonValue::String("r9".into());
        let line = success_line(&id, output_body("hello\n", Disposition::Hit, 12));
        let resp = parse_response(&line).unwrap();
        assert!(resp.is_ok());
        assert_eq!(resp.id, id);
        assert_eq!(resp.output(), Some("hello\n"));
        assert_eq!(resp.cache(), Some("hit"));

        let line = error_line(&id, &ServeError::Overloaded { capacity: 8 });
        let resp = parse_response(&line).unwrap();
        assert!(!resp.is_ok());
        let (class, code, message) = resp.error.unwrap();
        assert_eq!(class, "overloaded");
        assert_eq!(code, 429);
        assert!(message.contains("queue full"));
    }

    #[test]
    fn response_lines_are_single_line_json() {
        let id = JsonValue::Null;
        let line = success_line(&id, output_body("a\nb\n", Disposition::Miss, 1));
        assert!(!line.contains('\n'), "newlines must be escaped: {line}");
        assert!(json::parse(&line).is_ok());
    }
}
