//! A seeded in-process TCP fault proxy for chaos-testing the daemon.
//!
//! [`ChaosProxy`] sits between a client and a running [`Server`]
//! (`client → proxy → daemon`), forwards bytes chunk by chunk, and asks
//! a [`NetFaultPlan`] (the pure, seed-deterministic decision module in
//! `tcms-sim`) what to do with each chunk: forward, delay, truncate
//! then cut, reset before forwarding, or forward then cut. Each
//! connection gets two independent decision streams (one per
//! direction), so a chaos run's faults are reproducible per connection
//! regardless of thread scheduling.
//!
//! The proxy exists to prove the failure model end to end: under
//! injected resets, latency spikes, truncations and mid-write kills, a
//! retrying client ([`ServeClient`](crate::ServeClient)) must observe
//! only typed errors or retried successes — never a wrong answer, never
//! a hung daemon. The `repro_chaos` bench drives exactly that argument
//! at several seeds.

use std::io::{Read as _, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use tcms_sim::{ChunkFault, NetFaultPlan, NetFaultStream};

/// Counters of everything a [`ChaosProxy`] did (point-in-time snapshot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosStats {
    /// Connections accepted and proxied.
    pub connections: u64,
    /// Chunks forwarded (or faulted) across all connections.
    pub chunks: u64,
    /// Latency spikes injected.
    pub delays: u64,
    /// Chunks truncated mid-write (connection cut after the partial
    /// forward).
    pub truncations: u64,
    /// Connections reset before a chunk was forwarded.
    pub resets: u64,
    /// Connections cut immediately after a complete forward.
    pub kills: u64,
}

impl ChaosStats {
    /// Total faults injected (everything except clean forwards).
    #[must_use]
    pub fn faults(&self) -> u64 {
        self.delays + self.truncations + self.resets + self.kills
    }
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    chunks: AtomicU64,
    delays: AtomicU64,
    truncations: AtomicU64,
    resets: AtomicU64,
    kills: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> ChaosStats {
        ChaosStats {
            connections: self.connections.load(Ordering::Relaxed),
            chunks: self.chunks.load(Ordering::Relaxed),
            delays: self.delays.load(Ordering::Relaxed),
            truncations: self.truncations.load(Ordering::Relaxed),
            resets: self.resets.load(Ordering::Relaxed),
            kills: self.kills.load(Ordering::Relaxed),
        }
    }
}

/// The fault-injecting TCP proxy. See the module docs.
pub struct ChaosProxy {
    addr: SocketAddr,
    counters: Arc<Counters>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds a local proxy port in front of `upstream` and starts
    /// accepting. Faults follow `plan`; a quiet plan makes the proxy a
    /// transparent byte pipe.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(upstream: SocketAddr, plan: NetFaultPlan) -> std::io::Result<ChaosProxy> {
        plan.validate();
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let counters = Arc::new(Counters::default());
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let counters = Arc::clone(&counters);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("tcms-chaos-accept".into())
                .spawn(move || {
                    let mut conn_id = 0u64;
                    loop {
                        if stop.load(Ordering::SeqCst) {
                            return;
                        }
                        match listener.accept() {
                            Ok((client, _)) => {
                                counters.connections.fetch_add(1, Ordering::Relaxed);
                                let id = conn_id;
                                conn_id += 1;
                                spawn_connection(client, upstream, &plan, id, &counters, &stop);
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(5));
                            }
                            Err(_) => std::thread::sleep(Duration::from_millis(5)),
                        }
                    }
                })
                .map_err(|e| std::io::Error::other(format!("spawn chaos accept: {e}")))?
        };
        Ok(ChaosProxy {
            addr,
            counters,
            stop,
            accept: Some(accept),
        })
    }

    /// The proxy's listen address — point clients here.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the fault counters.
    #[must_use]
    pub fn stats(&self) -> ChaosStats {
        self.counters.snapshot()
    }

    /// Stops accepting and joins the accept thread. Live pump threads
    /// notice the flag within their poll interval and tear down.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

fn spawn_connection(
    client: TcpStream,
    upstream: SocketAddr,
    plan: &NetFaultPlan,
    id: u64,
    counters: &Arc<Counters>,
    stop: &Arc<AtomicBool>,
) {
    let Ok(server) = TcpStream::connect_timeout(&upstream, Duration::from_secs(2)) else {
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    // One kill flag per connection: either direction's fault cuts both.
    let kill = Arc::new(AtomicBool::new(false));
    // Two decision streams per connection, one per direction, so fault
    // sequences do not depend on how the two pump threads interleave.
    for (from, to, faults, label) in [
        (
            client.try_clone(),
            server.try_clone(),
            plan.stream(id * 2),
            "tcms-chaos-up",
        ),
        (
            server.try_clone(),
            client.try_clone(),
            plan.stream(id * 2 + 1),
            "tcms-chaos-down",
        ),
    ] {
        let (Ok(from), Ok(to)) = (from, to) else {
            let _ = client.shutdown(Shutdown::Both);
            let _ = server.shutdown(Shutdown::Both);
            return;
        };
        let counters = Arc::clone(counters);
        let kill = Arc::clone(&kill);
        let stop = Arc::clone(stop);
        let _ = std::thread::Builder::new()
            .name(label.into())
            .spawn(move || pump(&from, &to, faults, &counters, &kill, &stop));
    }
}

/// Forwards `from → to` chunk by chunk, applying one fault decision per
/// chunk, until EOF, a cut fault, or shutdown.
fn pump(
    from: &TcpStream,
    to: &TcpStream,
    mut faults: NetFaultStream,
    counters: &Counters,
    kill: &AtomicBool,
    stop: &AtomicBool,
) {
    // The read timeout is the kill/stop poll interval.
    let _ = from.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = to.set_nodelay(true);
    let mut from = from;
    let mut buf = [0u8; 1024];
    loop {
        if kill.load(Ordering::SeqCst) || stop.load(Ordering::SeqCst) {
            break;
        }
        let n = match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        };
        counters.chunks.fetch_add(1, Ordering::Relaxed);
        let mut to = to;
        match faults.next_fault() {
            ChunkFault::None => {
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
            ChunkFault::Delay(ms) => {
                counters.delays.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(ms));
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
            ChunkFault::Truncate { keep_permille } => {
                counters.truncations.fetch_add(1, Ordering::Relaxed);
                let keep = n * usize::from(keep_permille) / 1000;
                let _ = to.write_all(&buf[..keep]);
                let _ = to.flush();
                kill.store(true, Ordering::SeqCst);
                break;
            }
            ChunkFault::Reset => {
                counters.resets.fetch_add(1, Ordering::Relaxed);
                kill.store(true, Ordering::SeqCst);
                break;
            }
            ChunkFault::KillAfter => {
                counters.kills.fetch_add(1, Ordering::Relaxed);
                let _ = to.write_all(&buf[..n]);
                let _ = to.flush();
                kill.store(true, Ordering::SeqCst);
                break;
            }
        }
    }
    // Tear down both halves: a cut in one direction must not leave the
    // other half-open and wedged.
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{schedule_request_line, RetryPolicy, ServeClient};
    use crate::pipeline::ScheduleOptions;
    use crate::server::{ServeConfig, Server};
    use crate::Client;

    const SAMPLE: &str = "resource add delay=1 area=1\nresource mul delay=2 area=4 pipelined\n\
        process A\nblock body time=8\nop m0 mul\nop a0 add\nedge m0 a0\n\
        process B\nblock body time=8\nop m0 mul\nop a0 add\nedge m0 a0\n";

    fn schedule_line(id: &str) -> String {
        let opts = ScheduleOptions {
            all_global: Some(4),
            ..ScheduleOptions::default()
        };
        schedule_request_line(id, SAMPLE, &opts, None)
    }

    #[test]
    fn quiet_proxy_is_transparent() {
        let server = Server::start(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        })
        .unwrap();
        let mut proxy = ChaosProxy::start(server.local_addr(), NetFaultPlan::quiet(0)).unwrap();

        let mut direct = Client::connect(server.local_addr()).unwrap();
        let want = direct.request(&schedule_line("direct")).unwrap();
        assert!(want.is_ok());

        let mut through = Client::connect(proxy.local_addr()).unwrap();
        let got = through.request(&schedule_line("proxied")).unwrap();
        assert!(got.is_ok());
        assert_eq!(
            got.output(),
            want.output(),
            "byte-identical through the pipe"
        );
        assert_eq!(proxy.stats().faults(), 0);
        assert!(proxy.stats().chunks > 0);

        proxy.stop();
        server.shutdown();
        server.wait().unwrap();
    }

    #[test]
    fn retrying_client_survives_a_faulty_proxy_with_correct_answers() {
        let server = Server::start(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        })
        .unwrap();
        let mut direct = Client::connect(server.local_addr()).unwrap();
        let want = direct.request(&schedule_line("truth")).unwrap();
        let want_output = want.output().unwrap().to_owned();

        let mut proxy = ChaosProxy::start(server.local_addr(), NetFaultPlan::moderate(3)).unwrap();
        let mut client = ServeClient::new(
            proxy.local_addr().to_string(),
            RetryPolicy {
                max_retries: 10,
                base_backoff: Duration::from_millis(2),
                max_backoff: Duration::from_millis(50),
                seed: 3,
                ..RetryPolicy::default()
            },
        );
        let mut completed = 0;
        for i in 0..12 {
            if let Ok(resp) = client.request(&schedule_line(&format!("r{i}"))) {
                if resp.is_ok() {
                    assert_eq!(
                        resp.output(),
                        Some(want_output.as_str()),
                        "a completed answer is never wrong"
                    );
                    completed += 1;
                }
            }
        }
        assert!(completed > 0, "some requests complete under chaos");
        assert!(
            proxy.stats().faults() > 0,
            "the plan actually injected faults: {:?}",
            proxy.stats()
        );
        proxy.stop();
        server.shutdown();
        server.wait().unwrap();
    }
}
