//! Disk persistence of the schedule cache (`--cache-dir`).
//!
//! The snapshot is a JSONL file (`cache.jsonl` inside the cache
//! directory): a header line identifying the format, one line per entry,
//! and a **checksum trailer** covering every byte before it. Each entry
//! line additionally carries its own integrity digest (`check`) over its
//! payload and key. (A replayed schedule is re-verified against the
//! design before it is served, so even an undetected collision cannot
//! produce an invalid response.)
//!
//! # Crash safety
//!
//! Snapshots are written crash-safely: a temporary file in the same
//! directory, `fsync`, an atomic rename over the final name, then a
//! directory `fsync` — a crash at any point leaves either the old
//! snapshot or the new one, never a torn mix. Loading verifies the
//! trailer first; a snapshot that is empty, truncated, bit-flipped or
//! from an incompatible version is **quarantined** (renamed to
//! `cache.jsonl.corrupt`, preserving the bytes for inspection) and the
//! daemon starts cold — corruption costs warmth, never availability and
//! never wrong results.
//!
//! Writing sorts entries by key, so two daemons holding the same cache
//! content produce byte-identical snapshots.

use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use tcms_core::CacheableResult;
use tcms_ir::canon::fnv64;
use tcms_ir::SpecHash;
use tcms_obs::json::{self, JsonValue};

use crate::cache::{CacheKey, SchedCache};

/// Snapshot format marker.
const MAGIC: &str = "tcms-serve-cache";
/// Snapshot format version; bump on incompatible change. Version 2
/// added the whole-file checksum trailer (version-1 files quarantine
/// and reload cold).
const VERSION: f64 = 2.0;

/// The snapshot path inside a cache directory.
#[must_use]
pub fn snapshot_path(cache_dir: &Path) -> PathBuf {
    cache_dir.join("cache.jsonl")
}

/// Where a corrupt snapshot is moved when the loader quarantines it.
#[must_use]
pub fn quarantine_path(cache_dir: &Path) -> PathBuf {
    cache_dir.join("cache.jsonl.corrupt")
}

/// Per-entry integrity digest over key and payload; shared by the
/// snapshot and the fleet's anti-entropy op-batches (which reuse the
/// snapshot's node-independent entry encoding on the wire).
pub(crate) fn entry_check(key: &CacheKey, value: &CacheableResult) -> u64 {
    let keyed = format!("{}|{:016x}|", key.spec, key.config);
    fnv64(keyed.as_bytes()) ^ value.integrity()
}

/// One snapshot entry as a self-checking JSON object (also the op-batch
/// element of the fleet sync protocol).
pub(crate) fn entry_line(key: &CacheKey, value: &CacheableResult) -> String {
    format!(
        "{{\"spec\":\"{}\",\"config\":\"{:016x}\",{},\"check\":\"{:016x}\"}}",
        key.spec,
        key.config,
        value.to_json_fields(),
        entry_check(key, value)
    )
}

fn trailer_line(entries: usize, body: &str) -> String {
    format!(
        "{{\"trailer\":true,\"entries\":{entries},\"check\":\"{:016x}\"}}",
        fnv64(body.as_bytes())
    )
}

/// `fsync` on a directory so a just-renamed file inside it survives a
/// power loss (a no-op on platforms without directory handles).
pub(crate) fn sync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        std::fs::File::open(dir)?.sync_all()
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
        Ok(())
    }
}

/// Writes a snapshot of `entries` to `cache_dir/cache.jsonl`, creating
/// the directory if needed. Crash-safe: temp file, `fsync`, atomic
/// rename, directory `fsync`; the file ends with a checksum trailer the
/// loader verifies.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_snapshot(
    cache_dir: &Path,
    entries: &[(CacheKey, Arc<CacheableResult>)],
) -> io::Result<()> {
    std::fs::create_dir_all(cache_dir)?;
    let final_path = snapshot_path(cache_dir);
    let tmp_path = cache_dir.join(format!("cache.jsonl.tmp.{}", std::process::id()));
    let mut ordered: Vec<&(CacheKey, Arc<CacheableResult>)> = entries.iter().collect();
    ordered.sort_by_key(|(k, _)| (k.spec, k.config));
    let mut body = format!("{{\"magic\":\"{MAGIC}\",\"version\":{VERSION}}}\n");
    for (key, value) in &ordered {
        body.push_str(&entry_line(key, value));
        body.push('\n');
    }
    let trailer = trailer_line(ordered.len(), &body);
    {
        let mut f = std::fs::File::create(&tmp_path)?;
        f.write_all(body.as_bytes())?;
        f.write_all(trailer.as_bytes())?;
        f.write_all(b"\n")?;
        // The data must be durable *before* the rename publishes it:
        // rename-then-crash must never expose a half-written file.
        f.sync_all()?;
    }
    std::fs::rename(&tmp_path, &final_path)?;
    sync_dir(cache_dir)
}

/// What a snapshot load found.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoadReport {
    /// Entries loaded into the cache.
    pub loaded: usize,
    /// Lines skipped: corrupt JSON, failed integrity check, wrong
    /// format version.
    pub skipped: usize,
    /// Whether the snapshot failed validation and was moved to
    /// [`quarantine_path`] — the daemon starts cold.
    pub quarantined: bool,
}

/// Parses one self-checking entry line (or op-batch element). Returns
/// `None` on malformed JSON or a failed integrity check.
pub(crate) fn parse_entry(line: &str) -> Option<(CacheKey, CacheableResult)> {
    parse_entry_value(&json::parse(line).ok()?)
}

/// [`parse_entry`] over an already-parsed JSON value (the fleet sync
/// protocol embeds entries as array elements of a larger request).
pub(crate) fn parse_entry_value(v: &JsonValue) -> Option<(CacheKey, CacheableResult)> {
    let spec = SpecHash::parse(v.get("spec")?.as_str()?).ok()?;
    let config = u64::from_str_radix(v.get("config")?.as_str()?, 16).ok()?;
    let check = u64::from_str_radix(v.get("check")?.as_str()?, 16).ok()?;
    let iterations = to_u64(v.get("iterations")?)?;
    let starts = v
        .get("starts")?
        .as_array()?
        .iter()
        .map(|s| to_u64(s).and_then(|n| u32::try_from(n).ok()))
        .collect::<Option<Vec<u32>>>()?;
    let note = match v.get("note") {
        Some(n) => Some(n.as_str()?.to_owned()),
        None => None,
    };
    let key = CacheKey { spec, config };
    let value = CacheableResult {
        starts,
        iterations,
        note,
    };
    if entry_check(&key, &value) != check {
        return None;
    }
    Some((key, value))
}

fn to_u64(v: &JsonValue) -> Option<u64> {
    let n = v.as_f64()?;
    // Exact non-negative integers only; snapshot numbers are counts.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    if n >= 0.0 && n.fract() == 0.0 && n <= 2f64.powi(53) {
        Some(n as u64)
    } else {
        None
    }
}

/// Why a snapshot failed validation (the quarantine reasons).
fn validate_snapshot(content: &str) -> Result<(usize, &str), &'static str> {
    if content.is_empty() {
        return Err("empty file");
    }
    let Some((body, tail)) = content.rsplit_once('\n').and_then(|(rest, after)| {
        // The file must end in a newline; the trailer is the last
        // complete line.
        if after.is_empty() {
            let cut = rest.rfind('\n').map_or(0, |i| i + 1);
            Some((&content[..cut], &rest[cut..]))
        } else {
            None
        }
    }) else {
        return Err("missing trailing newline (torn write)");
    };
    let trailer = json::parse(tail).map_err(|_| "unparseable trailer line")?;
    if trailer.get("trailer") != Some(&JsonValue::Bool(true)) {
        return Err("missing checksum trailer");
    }
    let entries = trailer
        .get("entries")
        .and_then(to_u64)
        .ok_or("trailer lacks an entry count")?;
    let check = trailer
        .get("check")
        .and_then(JsonValue::as_str)
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or("trailer lacks a checksum")?;
    if fnv64(body.as_bytes()) != check {
        return Err("checksum mismatch (truncated or corrupt)");
    }
    let header = body.lines().next().ok_or("missing header line")?;
    let h = json::parse(header).map_err(|_| "unparseable header line")?;
    if h.get("magic").and_then(JsonValue::as_str) != Some(MAGIC) {
        return Err("foreign magic");
    }
    if h.get("version").and_then(JsonValue::as_f64) != Some(VERSION) {
        return Err("incompatible snapshot version");
    }
    let entries = usize::try_from(entries).map_err(|_| "entry count out of range")?;
    Ok((entries, body))
}

/// Loads `cache_dir/cache.jsonl` into `cache`. A missing snapshot file
/// is an empty load; an invalid one (empty, truncated, bit-flipped,
/// foreign, wrong version) is **quarantined** — renamed to
/// `cache.jsonl.corrupt` — and reported, and the cache starts cold.
///
/// # Errors
///
/// Propagates filesystem errors other than "not found".
pub fn load_snapshot(cache_dir: &Path, cache: &SchedCache) -> io::Result<LoadReport> {
    let path = snapshot_path(cache_dir);
    let content = match std::fs::read_to_string(&path) {
        Ok(c) => c,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(LoadReport::default()),
        Err(e) => return Err(e),
    };
    let (declared, body) = match validate_snapshot(&content) {
        Ok(v) => v,
        Err(_reason) => {
            // Quarantine, don't delete: the bytes stay inspectable, the
            // name is free for the next good snapshot, and the daemon
            // starts cold instead of erroring out.
            std::fs::rename(&path, quarantine_path(cache_dir))?;
            sync_dir(cache_dir)?;
            return Ok(LoadReport {
                loaded: 0,
                skipped: content.lines().count(),
                quarantined: true,
            });
        }
    };
    let mut report = LoadReport::default();
    for line in body.lines().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        match parse_entry(line) {
            Some((key, value)) => {
                cache.insert(key, Arc::new(value));
                report.loaded += 1;
            }
            // Unreachable once the trailer checksum matched, but kept as
            // defence in depth against checksum collisions.
            None => report.skipped += 1,
        }
    }
    if report.loaded != declared {
        report.skipped += declared.saturating_sub(report.loaded);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entries() -> Vec<(CacheKey, Arc<CacheableResult>)> {
        (0..4u32)
            .map(|n| {
                (
                    CacheKey {
                        spec: SpecHash::of_text(&format!("design {n}")),
                        config: u64::from(n) * 1717,
                    },
                    Arc::new(CacheableResult {
                        starts: vec![n, n + 1, n + 2],
                        iterations: u64::from(n) + 10,
                        // Exercise both shapes: entry 0 carries a
                        // provenance note, the rest are bare.
                        note: (n == 0).then(|| format!("partitioned: {n} subgraphs")),
                    }),
                )
            })
            .collect()
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tcms_persist_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_round_trip() {
        let dir = tmp_dir("roundtrip");
        let entries = sample_entries();
        save_snapshot(&dir, &entries).unwrap();
        let cache = SchedCache::new(64, 4);
        let report = load_snapshot(&dir, &cache).unwrap();
        assert_eq!(
            report,
            LoadReport {
                loaded: 4,
                skipped: 0,
                quarantined: false,
            }
        );
        for (key, value) in &entries {
            assert_eq!(cache.peek(key).unwrap(), *value);
        }
    }

    #[test]
    fn bit_flip_quarantines_and_starts_cold() {
        let dir = tmp_dir("bitflip");
        save_snapshot(&dir, &sample_entries()).unwrap();
        let path = snapshot_path(&dir);
        let mut text = std::fs::read_to_string(&path).unwrap();
        // Flip a start time inside the second entry: the entry check
        // *and* the trailer checksum no longer match.
        text = text.replacen("\"starts\":[1,2,3]", "\"starts\":[1,2,9]", 1);
        std::fs::write(&path, text).unwrap();
        let cache = SchedCache::new(64, 4);
        let report = load_snapshot(&dir, &cache).unwrap();
        assert!(report.quarantined);
        assert_eq!(report.loaded, 0, "corruption means a cold start");
        assert!(cache.is_empty());
        assert!(!path.exists(), "bad snapshot moved out of the way");
        assert!(quarantine_path(&dir).exists(), "bytes kept for inspection");
        // The next save + load works again.
        save_snapshot(&dir, &sample_entries()).unwrap();
        assert_eq!(load_snapshot(&dir, &cache).unwrap().loaded, 4);
    }

    #[test]
    fn truncation_and_empty_files_quarantine() {
        for (tag, mutilate) in [("trunc", Some(())), ("empty", None)] {
            let dir = tmp_dir(&format!("t_{tag}"));
            save_snapshot(&dir, &sample_entries()).unwrap();
            let path = snapshot_path(&dir);
            if mutilate.is_some() {
                let text = std::fs::read_to_string(&path).unwrap();
                std::fs::write(&path, &text[..text.len() / 2]).unwrap();
            } else {
                std::fs::write(&path, "").unwrap();
            }
            let cache = SchedCache::new(64, 4);
            let report = load_snapshot(&dir, &cache).unwrap();
            assert!(report.quarantined, "{tag}");
            assert_eq!(report.loaded, 0, "{tag}");
            assert!(cache.is_empty(), "{tag}");
            assert!(quarantine_path(&dir).exists(), "{tag}");
        }
    }

    #[test]
    fn foreign_or_missing_snapshot() {
        let dir = tmp_dir("foreign");
        let cache = SchedCache::new(8, 1);
        assert_eq!(
            load_snapshot(&dir, &cache).unwrap(),
            LoadReport::default(),
            "missing file"
        );
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(snapshot_path(&dir), "{\"magic\":\"other\"}\n").unwrap();
        let report = load_snapshot(&dir, &cache).unwrap();
        assert!(report.quarantined, "foreign file is moved aside");
        assert_eq!(report.loaded, 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn version_one_snapshots_reload_cold() {
        // A pre-trailer (version 1) snapshot has no trailer line: it
        // must quarantine, not error and not half-load.
        let dir = tmp_dir("v1");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            snapshot_path(&dir),
            "{\"magic\":\"tcms-serve-cache\",\"version\":1,\"entries\":0}\n",
        )
        .unwrap();
        let cache = SchedCache::new(8, 1);
        let report = load_snapshot(&dir, &cache).unwrap();
        assert!(report.quarantined);
        assert_eq!(report.loaded, 0);
    }

    #[test]
    fn snapshots_are_deterministic() {
        let dir_a = tmp_dir("det_a");
        let dir_b = tmp_dir("det_b");
        let entries = sample_entries();
        let mut reversed = entries.clone();
        reversed.reverse();
        // save_snapshot sorts internally: any input order produces the
        // same bytes.
        save_snapshot(&dir_a, &entries).unwrap();
        save_snapshot(&dir_b, &reversed).unwrap();
        assert_eq!(
            std::fs::read_to_string(snapshot_path(&dir_a)).unwrap(),
            std::fs::read_to_string(snapshot_path(&dir_b)).unwrap()
        );
    }
}
