//! Disk persistence of the schedule cache (`--cache-dir`).
//!
//! The snapshot is a JSONL file (`cache.jsonl` inside the cache
//! directory): a header line identifying the format, then one line per
//! entry. Every entry line carries an integrity digest (`check`) over
//! its payload and key; loading verifies each line and **skips** corrupt
//! or foreign lines instead of failing — a half-written snapshot from a
//! crashed daemon degrades to a partially warm cache, never to wrong
//! results. (A replayed schedule is additionally re-verified against the
//! design before it is served, so even an undetected collision cannot
//! produce an invalid response.)
//!
//! Snapshots are written atomically: a temporary file in the same
//! directory, then a rename. Writing sorts entries by key, so two
//! daemons holding the same cache content produce byte-identical
//! snapshots.

use std::io::{self, BufRead as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use tcms_core::CacheableResult;
use tcms_ir::canon::fnv64;
use tcms_ir::SpecHash;
use tcms_obs::json::{self, JsonValue};

use crate::cache::{CacheKey, SchedCache};

/// Snapshot format marker.
const MAGIC: &str = "tcms-serve-cache";
/// Snapshot format version; bump on incompatible change.
const VERSION: f64 = 1.0;

/// The snapshot path inside a cache directory.
#[must_use]
pub fn snapshot_path(cache_dir: &Path) -> PathBuf {
    cache_dir.join("cache.jsonl")
}

fn entry_check(key: &CacheKey, value: &CacheableResult) -> u64 {
    let keyed = format!("{}|{:016x}|", key.spec, key.config);
    fnv64(keyed.as_bytes()) ^ value.integrity()
}

fn entry_line(key: &CacheKey, value: &CacheableResult) -> String {
    format!(
        "{{\"spec\":\"{}\",\"config\":\"{:016x}\",{},\"check\":\"{:016x}\"}}",
        key.spec,
        key.config,
        value.to_json_fields(),
        entry_check(key, value)
    )
}

/// Writes a snapshot of `entries` to `cache_dir/cache.jsonl`, creating
/// the directory if needed. Atomic via temp-file-then-rename.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_snapshot(
    cache_dir: &Path,
    entries: &[(CacheKey, Arc<CacheableResult>)],
) -> io::Result<()> {
    std::fs::create_dir_all(cache_dir)?;
    let final_path = snapshot_path(cache_dir);
    let tmp_path = cache_dir.join(format!("cache.jsonl.tmp.{}", std::process::id()));
    let mut ordered: Vec<&(CacheKey, Arc<CacheableResult>)> = entries.iter().collect();
    ordered.sort_by_key(|(k, _)| (k.spec, k.config));
    {
        let mut f = io::BufWriter::new(std::fs::File::create(&tmp_path)?);
        writeln!(
            f,
            "{{\"magic\":\"{MAGIC}\",\"version\":{VERSION},\"entries\":{}}}",
            ordered.len()
        )?;
        for (key, value) in ordered {
            writeln!(f, "{}", entry_line(key, value))?;
        }
        f.flush()?;
    }
    std::fs::rename(&tmp_path, &final_path)
}

/// What a snapshot load found.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoadReport {
    /// Entries loaded into the cache.
    pub loaded: usize,
    /// Lines skipped: corrupt JSON, failed integrity check, wrong
    /// format version.
    pub skipped: usize,
}

fn parse_entry(line: &str) -> Option<(CacheKey, CacheableResult)> {
    let v = json::parse(line).ok()?;
    let spec = SpecHash::parse(v.get("spec")?.as_str()?).ok()?;
    let config = u64::from_str_radix(v.get("config")?.as_str()?, 16).ok()?;
    let check = u64::from_str_radix(v.get("check")?.as_str()?, 16).ok()?;
    let iterations = to_u64(v.get("iterations")?)?;
    let starts = v
        .get("starts")?
        .as_array()?
        .iter()
        .map(|s| to_u64(s).and_then(|n| u32::try_from(n).ok()))
        .collect::<Option<Vec<u32>>>()?;
    let key = CacheKey { spec, config };
    let value = CacheableResult { starts, iterations };
    if entry_check(&key, &value) != check {
        return None;
    }
    Some((key, value))
}

fn to_u64(v: &JsonValue) -> Option<u64> {
    let n = v.as_f64()?;
    // Exact non-negative integers only; snapshot numbers are counts.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    if n >= 0.0 && n.fract() == 0.0 && n <= 2f64.powi(53) {
        Some(n as u64)
    } else {
        None
    }
}

/// Loads `cache_dir/cache.jsonl` into `cache`, skipping corrupt lines.
/// A missing snapshot file is an empty load, not an error.
///
/// # Errors
///
/// Propagates filesystem errors other than "not found".
pub fn load_snapshot(cache_dir: &Path, cache: &SchedCache) -> io::Result<LoadReport> {
    let path = snapshot_path(cache_dir);
    let file = match std::fs::File::open(&path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(LoadReport::default()),
        Err(e) => return Err(e),
    };
    let mut report = LoadReport::default();
    let mut lines = io::BufReader::new(file).lines();
    // Header: wrong magic or version means a foreign file — load nothing.
    match lines.next() {
        Some(Ok(header)) => {
            let ok = json::parse(&header).ok().is_some_and(|h| {
                h.get("magic").and_then(JsonValue::as_str) == Some(MAGIC)
                    && h.get("version").and_then(JsonValue::as_f64) == Some(VERSION)
            });
            if !ok {
                return Ok(LoadReport {
                    loaded: 0,
                    skipped: 1,
                });
            }
        }
        _ => return Ok(LoadReport::default()),
    }
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match parse_entry(&line) {
            Some((key, value)) => {
                cache.insert(key, Arc::new(value));
                report.loaded += 1;
            }
            None => report.skipped += 1,
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entries() -> Vec<(CacheKey, Arc<CacheableResult>)> {
        (0..4u32)
            .map(|n| {
                (
                    CacheKey {
                        spec: SpecHash::of_text(&format!("design {n}")),
                        config: u64::from(n) * 1717,
                    },
                    Arc::new(CacheableResult {
                        starts: vec![n, n + 1, n + 2],
                        iterations: u64::from(n) + 10,
                    }),
                )
            })
            .collect()
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tcms_persist_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_round_trip() {
        let dir = tmp_dir("roundtrip");
        let entries = sample_entries();
        save_snapshot(&dir, &entries).unwrap();
        let cache = SchedCache::new(64, 4);
        let report = load_snapshot(&dir, &cache).unwrap();
        assert_eq!(
            report,
            LoadReport {
                loaded: 4,
                skipped: 0
            }
        );
        for (key, value) in &entries {
            assert_eq!(cache.peek(key).unwrap(), *value);
        }
    }

    #[test]
    fn corrupt_lines_are_skipped_not_fatal() {
        let dir = tmp_dir("corrupt");
        let entries = sample_entries();
        save_snapshot(&dir, &entries).unwrap();
        let path = snapshot_path(&dir);
        let mut text = std::fs::read_to_string(&path).unwrap();
        // Flip a start time inside the second entry: its check no longer
        // matches. Also append plain garbage.
        text = text.replacen("\"starts\":[1,2,3]", "\"starts\":[1,2,9]", 1);
        text.push_str("not json at all\n");
        std::fs::write(&path, text).unwrap();
        let cache = SchedCache::new(64, 4);
        let report = load_snapshot(&dir, &cache).unwrap();
        assert_eq!(
            report,
            LoadReport {
                loaded: 3,
                skipped: 2
            }
        );
    }

    #[test]
    fn foreign_or_missing_snapshot_loads_nothing() {
        let dir = tmp_dir("foreign");
        let cache = SchedCache::new(8, 1);
        assert_eq!(
            load_snapshot(&dir, &cache).unwrap(),
            LoadReport::default(),
            "missing file"
        );
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(snapshot_path(&dir), "{\"magic\":\"other\"}\n").unwrap();
        let report = load_snapshot(&dir, &cache).unwrap();
        assert_eq!(
            report,
            LoadReport {
                loaded: 0,
                skipped: 1
            }
        );
        assert!(cache.is_empty());
    }

    #[test]
    fn snapshots_are_deterministic() {
        let dir_a = tmp_dir("det_a");
        let dir_b = tmp_dir("det_b");
        let entries = sample_entries();
        let mut reversed = entries.clone();
        reversed.reverse();
        // save_snapshot sorts internally: any input order produces the
        // same bytes.
        save_snapshot(&dir_a, &entries).unwrap();
        save_snapshot(&dir_b, &reversed).unwrap();
        assert_eq!(
            std::fs::read_to_string(snapshot_path(&dir_a)).unwrap(),
            std::fs::read_to_string(snapshot_path(&dir_b)).unwrap()
        );
    }
}
