//! Sharded in-memory LRU cache with single-flight deduplication.
//!
//! Entries are finished schedules ([`CacheableResult`]) keyed by
//! `(canonical spec hash, config fingerprint)` — see
//! [`tcms_core::fingerprint`]. The map is split into shards (each behind
//! its own mutex) so concurrent workers rarely contend, and an
//! **in-flight registry** coalesces identical concurrent misses: the
//! first requester becomes the *leader* and runs the scheduler, every
//! concurrent identical request blocks on the same flight and receives
//! the leader's result — one IFDS run total. Failed computations are
//! propagated to all waiters but never cached, so a later request
//! retries (relevant for deadline-dependent failures).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use tcms_core::CacheableResult;
use tcms_ir::SpecHash;

use crate::error::ServeError;

/// Content-addressed cache key: what design, under what configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Canonical hash of the design ([`tcms_ir::canon`]).
    pub spec: SpecHash,
    /// Fingerprint of the sharing spec and force-model configuration
    /// ([`tcms_core::fingerprint::config_fingerprint`]).
    pub config: u64,
}

/// How a request's result was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Found in the cache; zero scheduler work.
    Hit,
    /// Computed by this request (the single-flight leader) and inserted.
    Miss,
    /// Coalesced onto a concurrent identical request's run.
    Coalesced,
}

impl Disposition {
    /// The wire rendering used in responses and metrics.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Disposition::Hit => "hit",
            Disposition::Miss => "miss",
            Disposition::Coalesced => "coalesced",
        }
    }
}

/// Monotonic counters of cache behaviour, readable without locking the
/// shards (used by the `stats` request and the load generator).
#[derive(Debug, Default)]
pub struct CacheStats {
    /// Lookups answered from memory.
    pub hits: AtomicU64,
    /// Lookups that scheduled fresh work.
    pub misses: AtomicU64,
    /// Lookups coalesced onto an in-flight identical job.
    pub coalesced: AtomicU64,
    /// Entries evicted by the LRU policy.
    pub evictions: AtomicU64,
    /// Entries inserted (misses that completed plus snapshot loads).
    pub insertions: AtomicU64,
}

/// A point-in-time view of a single cache shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Entries currently resident in this shard.
    pub occupancy: usize,
    /// Maximum entries this shard holds before evicting.
    pub capacity: usize,
    /// Entries this shard has evicted since startup.
    pub evictions: u64,
}

/// A point-in-time copy of [`CacheStats`] plus per-shard occupancy.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CacheStatsSnapshot {
    /// Lookups answered from memory.
    pub hits: u64,
    /// Lookups that scheduled fresh work.
    pub misses: u64,
    /// Lookups coalesced onto an in-flight identical job.
    pub coalesced: u64,
    /// Entries evicted by the LRU policy (sum over shards).
    pub evictions: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Per-shard occupancy/capacity/evictions, in shard order. Skewed
    /// occupancy here is the signal the ROADMAP's cache tuner feeds on.
    pub shards: Vec<ShardStats>,
}

impl CacheStatsSnapshot {
    /// Hit rate over all completed lookups, in `[0, 1]`; hits and
    /// coalesced lookups both count as avoided scheduler runs.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.coalesced;
        if total == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            (self.hits + self.coalesced) as f64 / total as f64
        }
    }
}

struct Entry {
    value: Arc<CacheableResult>,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<CacheKey, Entry>,
    tick: u64,
    evictions: u64,
}

enum FlightState {
    Running,
    Done(Result<Arc<CacheableResult>, ServeError>),
}

struct Flight {
    state: Mutex<FlightState>,
    cv: Condvar,
}

/// Unwind protection for the single-flight leader: resolves the flight
/// (normally via [`FlightGuard::resolve`], or with a typed
/// [`ServeError::Internal`] from `Drop` when the compute closure
/// panics) and removes the in-flight registry entry, exactly once.
struct FlightGuard<'a> {
    cache: &'a SchedCache,
    key: CacheKey,
    flight: &'a Arc<Flight>,
    armed: bool,
}

impl FlightGuard<'_> {
    /// Publishes `result` to every waiter and clears the in-flight
    /// entry; disarms the drop path.
    fn resolve(mut self, result: Result<Arc<CacheableResult>, ServeError>) {
        self.armed = false;
        self.publish(result);
    }

    fn publish(&self, result: Result<Arc<CacheableResult>, ServeError>) {
        {
            let mut inflight = self
                .cache
                .inflight
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            inflight.remove(&self.key);
        }
        let mut state = self.flight.state.lock().unwrap_or_else(|e| e.into_inner());
        *state = FlightState::Done(result);
        self.flight.cv.notify_all();
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.publish(Err(ServeError::Internal(
                "scheduler panicked while computing this entry".into(),
            )));
        }
    }
}

/// The sharded LRU schedule cache with single-flight deduplication.
pub struct SchedCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_cap: usize,
    inflight: Mutex<HashMap<CacheKey, Arc<Flight>>>,
    stats: CacheStats,
}

impl std::fmt::Debug for SchedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchedCache")
            .field("shards", &self.shards.len())
            .field("per_shard_cap", &self.per_shard_cap)
            .field("len", &self.len())
            .finish()
    }
}

impl SchedCache {
    /// A cache holding at most `capacity` entries, split over `shards`
    /// independently locked shards (both rounded up to at least 1).
    #[must_use]
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard_cap = capacity.div_ceil(shards).max(1);
        SchedCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_cap,
            inflight: Mutex::new(HashMap::new()),
            stats: CacheStats::default(),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard> {
        // The canonical hash is already uniform; fold in the config
        // fingerprint so spec-heavy sweeps still spread across shards.
        let h = key.spec.hi() ^ key.spec.lo().rotate_left(17) ^ key.config;
        &self.shards[(h as usize) % self.shards.len()]
    }

    /// Looks `key` up, refreshing its LRU position. Does not touch the
    /// hit/miss counters — [`SchedCache::get_or_compute`] owns those.
    #[must_use]
    pub fn peek(&self, key: &CacheKey) -> Option<Arc<CacheableResult>> {
        let mut shard = self.shard(key).lock().unwrap_or_else(|e| e.into_inner());
        shard.tick += 1;
        let tick = shard.tick;
        shard.map.get_mut(key).map(|e| {
            e.last_used = tick;
            Arc::clone(&e.value)
        })
    }

    /// Inserts `value` under `key`, evicting the least-recently-used
    /// entry of the target shard when it is full.
    pub fn insert(&self, key: CacheKey, value: Arc<CacheableResult>) {
        let mut shard = self.shard(&key).lock().unwrap_or_else(|e| e.into_inner());
        shard.tick += 1;
        let tick = shard.tick;
        if shard.map.len() >= self.per_shard_cap && !shard.map.contains_key(&key) {
            if let Some(oldest) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            {
                shard.map.remove(&oldest);
                shard.evictions += 1;
                self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.map.insert(
            key,
            Entry {
                value,
                last_used: tick,
            },
        );
        self.stats.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Inserts `value` only when `key` is absent, returning whether an
    /// insert happened. This is the anti-entropy apply primitive:
    /// values are bit-identical by construction (content addressing),
    /// so first-writer-stays equals last-writer-wins, re-applying a
    /// batch is a no-op, and apply order across nodes cannot matter.
    pub fn insert_if_absent(&self, key: CacheKey, value: Arc<CacheableResult>) -> bool {
        {
            let shard = self.shard(&key).lock().unwrap_or_else(|e| e.into_inner());
            if shard.map.contains_key(&key) {
                return false;
            }
        }
        self.insert(key, value);
        true
    }

    /// The single-flight lookup: returns the cached value, or runs
    /// `compute` exactly once per key across all concurrent callers.
    ///
    /// The leader's successful result is inserted before the flight is
    /// resolved, so a request arriving after resolution hits the cache.
    /// Errors are fanned out to every waiter and **not** cached.
    ///
    /// # Panics
    ///
    /// A panic inside `compute` propagates to the leader's caller, but
    /// only after the flight has been resolved with
    /// [`ServeError::Internal`] and the in-flight entry cleared — waiters
    /// receive the typed error and the key is immediately reusable.
    ///
    /// # Errors
    ///
    /// Propagates `compute`'s error (to the leader and every coalesced
    /// waiter alike).
    pub fn get_or_compute<F>(
        &self,
        key: CacheKey,
        compute: F,
    ) -> (Result<Arc<CacheableResult>, ServeError>, Disposition)
    where
        F: FnOnce() -> Result<CacheableResult, ServeError>,
    {
        if let Some(v) = self.peek(&key) {
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            return (Ok(v), Disposition::Hit);
        }
        // Miss: join or create the flight for this key.
        let (flight, leader) = {
            let mut inflight = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
            match inflight.get(&key) {
                Some(f) => (Arc::clone(f), false),
                None => {
                    let f = Arc::new(Flight {
                        state: Mutex::new(FlightState::Running),
                        cv: Condvar::new(),
                    });
                    inflight.insert(key, Arc::clone(&f));
                    (f, true)
                }
            }
        };
        if leader {
            // If `compute` panics, the guard resolves the flight with a
            // typed error and clears the in-flight entry *during unwind*,
            // so coalesced waiters are released (with `Internal`) and a
            // later identical request starts a fresh flight — a panicking
            // job can never wedge the single-flight slot. The panic
            // itself keeps unwinding to the worker's `catch_unwind`.
            let guard = FlightGuard {
                cache: self,
                key,
                flight: &flight,
                armed: true,
            };
            let result = compute().map(Arc::new);
            if let Ok(v) = &result {
                self.insert(key, Arc::clone(v));
            }
            guard.resolve(result.clone());
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
            (result, Disposition::Miss)
        } else {
            let mut state = flight.state.lock().unwrap_or_else(|e| e.into_inner());
            while matches!(*state, FlightState::Running) {
                state = flight
                    .cv
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            let result = match &*state {
                FlightState::Done(r) => r.clone(),
                FlightState::Running => unreachable!("loop exits only when done"),
            };
            drop(state);
            self.stats.coalesced.fetch_add(1, Ordering::Relaxed);
            (result, Disposition::Coalesced)
        }
    }

    /// Number of cached entries across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).map.len())
            .sum()
    }

    /// `true` when no entry is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All entries, for snapshot persistence. Ordered by key so
    /// snapshots of equal caches are byte-identical.
    #[must_use]
    pub fn entries(&self) -> Vec<(CacheKey, Arc<CacheableResult>)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().unwrap_or_else(|e| e.into_inner());
            out.extend(shard.map.iter().map(|(k, e)| (*k, Arc::clone(&e.value))));
        }
        out.sort_by_key(|(k, _)| (k.spec, k.config));
        out
    }

    /// A point-in-time copy of the behaviour counters plus per-shard
    /// occupancy (locks each shard briefly, one at a time).
    #[must_use]
    pub fn stats(&self) -> CacheStatsSnapshot {
        let shards = self
            .shards
            .iter()
            .map(|s| {
                let shard = s.lock().unwrap_or_else(|e| e.into_inner());
                ShardStats {
                    occupancy: shard.map.len(),
                    capacity: self.per_shard_cap,
                    evictions: shard.evictions,
                }
            })
            .collect();
        CacheStatsSnapshot {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            coalesced: self.stats.coalesced.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
            insertions: self.stats.insertions.load(Ordering::Relaxed),
            shards,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn key(n: u64) -> CacheKey {
        CacheKey {
            spec: SpecHash::of_text(&n.to_string()),
            config: n,
        }
    }

    fn result(n: u32) -> CacheableResult {
        CacheableResult {
            starts: vec![n],
            iterations: u64::from(n),
            note: None,
        }
    }

    #[test]
    fn hit_after_miss() {
        let cache = SchedCache::new(8, 2);
        let (v, d) = cache.get_or_compute(key(1), || Ok(result(7)));
        assert_eq!(d, Disposition::Miss);
        assert_eq!(v.unwrap().iterations, 7);
        let (v, d) = cache.get_or_compute(key(1), || panic!("must not recompute"));
        assert_eq!(d, Disposition::Hit);
        assert_eq!(v.unwrap().iterations, 7);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.coalesced), (1, 1, 0));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = SchedCache::new(8, 2);
        let (v, d) = cache.get_or_compute(key(1), || Err(ServeError::Verify("boom".into())));
        assert_eq!(d, Disposition::Miss);
        assert!(v.is_err());
        assert!(cache.is_empty());
        let (v, d) = cache.get_or_compute(key(1), || Ok(result(3)));
        assert_eq!(d, Disposition::Miss, "failed run must be retried");
        assert!(v.is_ok());
    }

    #[test]
    fn lru_evicts_oldest_within_shard() {
        let cache = SchedCache::new(2, 1);
        cache.insert(key(1), Arc::new(result(1)));
        cache.insert(key(2), Arc::new(result(2)));
        let _ = cache.peek(&key(1)); // refresh 1 → 2 is now the LRU entry
        cache.insert(key(3), Arc::new(result(3)));
        assert!(cache.peek(&key(1)).is_some());
        assert!(cache.peek(&key(2)).is_none(), "LRU entry evicted");
        assert!(cache.peek(&key(3)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn concurrent_identical_misses_coalesce_to_one_compute() {
        let cache = Arc::new(SchedCache::new(8, 2));
        let computes = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(std::sync::Barrier::new(8));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let computes = Arc::clone(&computes);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                let (v, d) = cache.get_or_compute(key(42), || {
                    computes.fetch_add(1, Ordering::SeqCst);
                    // Hold the flight open long enough for the others
                    // to join it.
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    Ok(result(9))
                });
                (v.unwrap().iterations, d)
            }));
        }
        let outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(computes.load(Ordering::SeqCst), 1, "exactly one compute");
        assert!(outcomes.iter().all(|(it, _)| *it == 9));
        let leaders = outcomes
            .iter()
            .filter(|(_, d)| *d == Disposition::Miss)
            .count();
        assert_eq!(leaders, 1);
        let s = cache.stats();
        assert_eq!(s.misses, 1);
        // Late arrivals may hit the already-resolved entry instead of
        // coalescing; either way no second compute happened.
        assert_eq!(s.coalesced + s.hits, 7);
    }

    #[test]
    fn leader_panic_releases_waiters_and_unwedges_the_flight() {
        let cache = Arc::new(SchedCache::new(8, 2));
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let waiter = {
            let cache = Arc::clone(&cache);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                // Give the leader time to claim the flight.
                std::thread::sleep(std::time::Duration::from_millis(30));
                cache.get_or_compute(key(7), || Ok(result(5)))
            })
        };
        let leader = {
            let cache = Arc::clone(&cache);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    cache.get_or_compute(key(7), || {
                        std::thread::sleep(std::time::Duration::from_millis(100));
                        panic!("deliberate test panic")
                    })
                }))
            })
        };
        assert!(
            leader.join().unwrap().is_err(),
            "the panic still propagates to the leader's caller"
        );
        // The waiter either coalesced onto the panicked flight (and got
        // the typed error) or arrived after resolution and recomputed.
        match waiter.join().unwrap() {
            (Err(ServeError::Internal(_)), Disposition::Coalesced) => {}
            (Ok(v), _) => assert_eq!(v.iterations, 5),
            (other, d) => panic!("unexpected waiter outcome {other:?} / {d:?}"),
        }
        // Not wedged: the key is free for a fresh flight, and nothing
        // from the panicked run was cached.
        let (v, d) = cache.get_or_compute(key(7), || Ok(result(5)));
        assert_eq!(d, Disposition::Miss);
        assert_eq!(v.unwrap().iterations, 5);
    }

    #[test]
    fn hit_rate_is_zero_not_nan_before_any_lookup() {
        let s = CacheStatsSnapshot::default();
        let rate = s.hit_rate();
        assert!(!rate.is_nan(), "zero lookups must not divide by zero");
        assert_eq!(rate, 0.0);
        // A fresh cache's snapshot agrees.
        assert_eq!(SchedCache::new(8, 2).stats().hit_rate(), 0.0);
    }

    #[test]
    fn snapshot_reports_per_shard_occupancy_and_evictions() {
        let cache = SchedCache::new(4, 4); // per-shard capacity 1
        let empty = cache.stats();
        assert_eq!(empty.shards.len(), 4);
        assert!(empty
            .shards
            .iter()
            .all(|s| s.occupancy == 0 && s.capacity == 1 && s.evictions == 0));

        // Overfill: 16 distinct keys into 4 one-entry shards must evict
        // exactly 16 - 4 entries, attributed to the shards that overflowed.
        for n in 0..16u64 {
            cache.insert(key(n), Arc::new(result(n as u32)));
        }
        let s = cache.stats();
        assert_eq!(
            s.shards.iter().map(|s| s.occupancy).sum::<usize>(),
            cache.len()
        );
        assert!(s.shards.iter().all(|s| s.occupancy <= s.capacity));
        assert_eq!(
            s.shards.iter().map(|s| s.evictions).sum::<u64>(),
            s.evictions
        );
        assert_eq!(s.evictions, 16 - cache.len() as u64);
    }

    #[test]
    fn entries_are_sorted_and_complete() {
        let cache = SchedCache::new(16, 4);
        for n in [5u64, 1, 9, 3] {
            cache.insert(key(n), Arc::new(result(n as u32)));
        }
        let entries = cache.entries();
        assert_eq!(entries.len(), 4);
        let mut sorted = entries.clone();
        sorted.sort_by_key(|(k, _)| (k.spec, k.config));
        assert_eq!(
            entries.iter().map(|(k, _)| k.config).collect::<Vec<_>>(),
            sorted.iter().map(|(k, _)| k.config).collect::<Vec<_>>()
        );
    }
}
