//! The shared request pipeline: load → spec → schedule (optionally
//! through the content-addressed cache) → render.
//!
//! Both the one-shot CLI (`tcms schedule` / `tcms simulate`) and every
//! daemon worker execute **this** code, so their outputs are
//! bit-identical by construction — the daemon does not reimplement the
//! report renderer, it shares it.
//!
//! # Cache semantics
//!
//! With a [`SchedCache`], the plain scheduling path becomes
//! content-addressed:
//!
//! 1. canonicalize the design ([`tcms_ir::canon`]) and fingerprint the
//!    configuration ([`tcms_core::fingerprint`]),
//! 2. single-flight `get_or_compute` on `(spec hash, fingerprint)`,
//! 3. replay the cached canonical starts onto *this* request's system
//!    and re-verify before rendering.
//!
//! On a miss the compute closure runs the exact scheduler invocation the
//! cache-less path runs; capturing and immediately replaying the result
//! is the identity mapping, so miss responses equal cache-less
//! responses byte for byte. On a hit the replayed schedule is the one
//! the original miss produced (same canonical form ⇒ same translation),
//! so hits render the same bytes too — with **zero** IFDS iterations of
//! new work. Partitioned runs are content-addressed like monolithic
//! ones: the partition knobs are part of the fingerprint and the
//! telemetry note is stored in the entry. The degradation ladder
//! rewrites the system itself, so `degrade` requests bypass the cache.

use std::fmt::Write as _;

use tcms_core::degrade::schedule_with_degradation_recorded;
use tcms_core::{
    check_execution, config_fingerprint_with, random_activations, schedule_partitioned_recorded,
    CacheableResult, LadderConfig, ModuloScheduler, PartitionConfig, PartitionCount, SharingSpec,
};
use tcms_fds::{gantt, FdsConfig, RunBudget, Schedule};
use tcms_ir::canon::Canonicalization;
use tcms_ir::generators::paper_library;
use tcms_ir::{display, frontend, parse, System};
use tcms_obs::{NoopRecorder, Recorder};
use tcms_sim::{SimConfig, Simulator, Trigger};

use crate::cache::{CacheKey, Disposition, SchedCache};
use crate::error::ServeError;

/// Loads a system from either input language. A file whose first
/// non-comment keyword is `resource` is structural `.dfg` (so a `:=`
/// inside a comment cannot misroute it); otherwise the presence of `:=`
/// selects the behavioral compiler.
///
/// # Errors
///
/// Returns [`ServeError::Malformed`] when neither language accepts the
/// text.
pub fn load_system(source: &str) -> Result<System, ServeError> {
    let first_keyword = source
        .lines()
        .map(|l| l.split('#').next().unwrap_or("").trim())
        .find(|l| !l.is_empty())
        .and_then(|l| l.split_whitespace().next())
        .unwrap_or("");
    let behavioral = first_keyword != "resource" && source.contains(":=");
    if behavioral {
        let (lib, _) = paper_library();
        frontend::compile(source, lib).map_err(|e| ServeError::Malformed(e.to_string()))
    } else {
        parse::parse_system(source).map_err(|e| ServeError::Malformed(e.to_string()))
    }
}

/// Builds and validates the sharing specification from the CLI-style
/// `--all-global` / `--global TYPE=ρ` arguments.
///
/// # Errors
///
/// Returns [`ServeError::Spec`] for unknown type names and invalid
/// specifications.
pub fn build_spec(
    system: &System,
    all_global: Option<u32>,
    globals: &[(String, u32)],
) -> Result<SharingSpec, ServeError> {
    let mut spec = match all_global {
        Some(period) => SharingSpec::all_global(system, period),
        None => SharingSpec::all_local(system),
    };
    for (name, period) in globals {
        let k = system
            .library()
            .by_name(name)
            .ok_or_else(|| ServeError::Spec(format!("unknown resource type `{name}`")))?;
        spec.set_global(k, system.users_of_type(k), *period);
    }
    spec.validate(system).map_err(ServeError::from)?;
    Ok(spec)
}

/// Options of a schedule request (the CLI's `schedule` flags).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScheduleOptions {
    /// Uniform period for all shareable types (`--all-global`).
    pub all_global: Option<u32>,
    /// Per-type `TYPE=PERIOD` global assignments (`--global`).
    pub globals: Vec<(String, u32)>,
    /// Render ASCII Gantt charts (`--gantt`).
    pub gantt: bool,
    /// Number of randomized execution checks (`--verify N`).
    pub verify: usize,
    /// Retry failures through the degradation ladder (`--degrade`);
    /// bypasses the cache.
    pub degrade: bool,
    /// Feedback-guided subgraph decomposition (`--partition <K|auto>`).
    /// Partitioned runs are content-addressed like monolithic ones —
    /// the partition knobs are folded into the config fingerprint
    /// ([`tcms_core::config_fingerprint_with`]) and the telemetry note
    /// rides in the cache entry, so hits replay byte-identically.
    /// `None` follows the context's size threshold
    /// ([`ExecContext::auto_partition_ops`]).
    pub partition: Option<PartitionCount>,
}

/// Execution context of one pipeline run.
pub struct ExecContext<'a> {
    /// The content-addressed cache, if caching is enabled.
    pub cache: Option<&'a SchedCache>,
    /// Run budget applied to fresh scheduler runs (deadline enforcement).
    pub budget: RunBudget,
    /// Observability recorder threaded through the scheduler.
    pub rec: &'a dyn Recorder,
    /// Chaos/test hook, off by default: when set, a design containing
    /// the literal token [`PANIC_MARKER`] panics at pipeline entry —
    /// before the cache, because the marker lives in a comment that
    /// canonicalization strips, so a marked design would otherwise ride
    /// a cache hit from its unmarked twin. This is how the
    /// fault-injection harness exercises worker supervision without a
    /// real scheduler bug; production servers leave it disabled.
    pub fault_marker: bool,
    /// Specs with at least this many operations are routed through the
    /// feedback-guided partitioner even when the request does not ask
    /// for it (`0` disables the automatic routing). Requests that set
    /// [`ScheduleOptions::partition`] explicitly always win.
    pub auto_partition_ops: usize,
}

/// Default [`ExecContext::auto_partition_ops`]: specs of this size and
/// above decompose into parallel partitions (a pure function of the
/// design, so one-shot CLI runs and daemon responses stay identical).
pub const DEFAULT_AUTO_PARTITION_OPS: usize = 500;

/// The design token that [`ExecContext::fault_marker`] turns into a
/// deliberate panic (it lives in a `#` comment, so the design parses).
pub const PANIC_MARKER: &str = "#chaos:panic";

fn chaos_panic_check(fault_marker: bool, source: &str) {
    if fault_marker && source.contains(PANIC_MARKER) {
        panic!("chaos: deliberate panic marker in design");
    }
}

impl Default for ExecContext<'_> {
    fn default() -> Self {
        ExecContext {
            cache: None,
            budget: RunBudget::UNLIMITED,
            rec: &NoopRecorder,
            fault_marker: false,
            auto_partition_ops: DEFAULT_AUTO_PARTITION_OPS,
        }
    }
}

/// Computes the content address a schedule request *would* use, without
/// scheduling anything: parse, build the spec, canonicalize,
/// fingerprint. This is what fleet routing keys on — every node derives
/// the same address from the same request bytes, so every node agrees
/// on the owner.
///
/// Returns `None` for requests that bypass the cache (`degrade`): those
/// are never routed, always computed where they land. The budget axes
/// that enter the fingerprint (`max_iterations`, `max_evals`) are
/// always unlimited in the daemon — a deadline only sets the wall
/// clock, which the fingerprint excludes — so the key computed here
/// matches the one [`schedule_request`] computes while executing.
///
/// # Errors
///
/// The same parse/spec classes as [`schedule_request`] — a malformed
/// design fails here exactly as it would fail executing, so callers can
/// simply handle such requests locally.
pub fn request_cache_key(
    source: &str,
    opts: &ScheduleOptions,
    auto_partition_ops: usize,
) -> Result<Option<CacheKey>, ServeError> {
    if opts.degrade {
        return Ok(None);
    }
    let system = load_system(source)?;
    let spec = build_spec(&system, opts.all_global, &opts.globals)?;
    let partition = opts.partition.or_else(|| {
        (auto_partition_ops > 0 && system.num_ops() >= auto_partition_ops)
            .then_some(PartitionCount::Auto)
    });
    let pcfg = partition.map(|count| PartitionConfig {
        count,
        ..PartitionConfig::default()
    });
    let config = FdsConfig::default();
    let canon = Canonicalization::of(&system);
    Ok(Some(CacheKey {
        spec: canon.hash(),
        config: config_fingerprint_with(&system, &canon, &spec, &config, pcfg.as_ref()),
    }))
}

/// Everything a schedule request produced.
#[derive(Debug)]
pub struct ScheduleArtifacts {
    /// The rendered report (the response payload / CLI stdout).
    pub text: String,
    /// The loaded system (for `--save` and binding follow-ups).
    pub system: System,
    /// The finished schedule.
    pub schedule: Schedule,
    /// How the result was obtained; `Miss` for cache-less runs.
    pub disposition: Disposition,
    /// Frame-reduction iterations *executed by this request* — zero on a
    /// cache hit or coalesced wait (the rendered report still shows the
    /// original run's count).
    pub fresh_iterations: u64,
    /// The content-address of the result, when the cached path computed
    /// one (`None` for cache-less and degrade runs). The daemon's
    /// workload journal records it so replays can be correlated without
    /// re-canonicalizing.
    pub cache_key: Option<CacheKey>,
}

/// Runs the full schedule pipeline on `source`.
///
/// # Errors
///
/// Returns the typed [`ServeError`] for parse, spec, scheduling and
/// verification failures.
pub fn schedule_request(
    source: &str,
    opts: &ScheduleOptions,
    ctx: &ExecContext<'_>,
) -> Result<ScheduleArtifacts, ServeError> {
    // The marker lives in a comment, which canonicalization strips — a
    // marked design content-addresses to the same cache key as its
    // unmarked twin. Check *before* the cache so an armed marked
    // request panics deterministically instead of riding a cache hit.
    chaos_panic_check(ctx.fault_marker, source);
    let system = load_system(source)?;
    let spec = build_spec(&system, opts.all_global, &opts.globals)?;
    let config = FdsConfig {
        budget: ctx.budget,
        ..FdsConfig::default()
    };

    // Explicit `--partition` always wins; otherwise over-threshold specs
    // are routed through the partitioner automatically.
    let partition = opts.partition.or_else(|| {
        (ctx.auto_partition_ops > 0 && system.num_ops() >= ctx.auto_partition_ops)
            .then_some(PartitionCount::Auto)
    });
    let pcfg = partition.map(|count| PartitionConfig {
        count,
        ..PartitionConfig::default()
    });

    let mut cache_key = None;
    let (system, spec, schedule, iterations, fresh_iterations, disposition, note) = if opts.degrade
    {
        // The ladder may rewrite the system (relaxed periods, widened
        // time ranges), so its results are not content-addressed by the
        // *input* design — bypass the cache.
        let outcome = schedule_with_degradation_recorded(
            &system,
            &spec,
            &config,
            &LadderConfig::default(),
            ctx.rec,
        )?;
        let note = format!("degradation: {}", outcome.summary());
        let final_system = outcome.system.unwrap_or(system);
        let iterations = outcome.iterations;
        (
            final_system,
            outcome.spec,
            outcome.schedule,
            iterations,
            iterations,
            Disposition::Miss,
            Some(note),
        )
    } else if let Some(cache) = ctx.cache {
        // Monolithic and partitioned runs are both content-addressed:
        // the partition knobs separate the fingerprint, and the
        // partition telemetry note rides inside the cache entry so a
        // hit replays the original run byte for byte.
        let canon = Canonicalization::of(&system);
        let key = CacheKey {
            spec: canon.hash(),
            config: config_fingerprint_with(&system, &canon, &spec, &config, pcfg.as_ref()),
        };
        cache_key = Some(key);
        let (result, disposition) = cache.get_or_compute(key, || match &pcfg {
            Some(pcfg) => {
                let out =
                    schedule_partitioned_recorded(&system, spec.clone(), &config, pcfg, ctx.rec)
                        .map_err(ServeError::from)?;
                out.schedule
                    .verify(&system)
                    .map_err(|e| ServeError::Verify(e.to_string()))?;
                let note = format!(
                    "partitioned: {} subgraphs, {} feedback rounds, {} cut edges",
                    out.partitions, out.rounds, out.cut_edges
                );
                let iterations = out.iterations();
                Ok(CacheableResult::capture(&canon, &out.schedule, iterations).with_note(note))
            }
            None => {
                let outcome = ModuloScheduler::new(&system, spec.clone())
                    .map_err(ServeError::from)?
                    .with_config(config.clone())
                    .run_recorded(ctx.rec)
                    .map_err(ServeError::from)?;
                outcome
                    .schedule
                    .verify(&system)
                    .map_err(|e| ServeError::Verify(e.to_string()))?;
                Ok(CacheableResult::capture(
                    &canon,
                    &outcome.schedule,
                    outcome.iterations,
                ))
            }
        });
        let cached = result?;
        let schedule = cached
            .replay(&canon)
            .map_err(|e| ServeError::Verify(format!("cache replay failed: {e}")))?;
        // Replay is re-verified even on hits: a hash collision or
        // corrupt snapshot entry surfaces as a typed error, never as a
        // silently wrong response.
        schedule
            .verify(&system)
            .map_err(|e| ServeError::Verify(format!("cached schedule invalid: {e}")))?;
        let fresh = if disposition == Disposition::Miss {
            cached.iterations
        } else {
            0
        };
        let note = cached.note.clone();
        (
            system,
            spec,
            schedule,
            cached.iterations,
            fresh,
            disposition,
            note,
        )
    } else if let Some(pcfg) = &pcfg {
        // Cache-less partitioned run: same driver invocation the cached
        // miss makes, so the two render identical bytes.
        let (schedule, iterations, note) = {
            let out = schedule_partitioned_recorded(&system, spec.clone(), &config, pcfg, ctx.rec)
                .map_err(ServeError::from)?;
            let note = format!(
                "partitioned: {} subgraphs, {} feedback rounds, {} cut edges",
                out.partitions, out.rounds, out.cut_edges
            );
            let iterations = out.iterations();
            (out.schedule, iterations, note)
        };
        schedule
            .verify(&system)
            .map_err(|e| ServeError::Verify(e.to_string()))?;
        (
            system,
            spec,
            schedule,
            iterations,
            iterations,
            Disposition::Miss,
            Some(note),
        )
    } else {
        let (schedule, iterations) = {
            let outcome = ModuloScheduler::new(&system, spec.clone())
                .map_err(ServeError::from)?
                .with_config(config)
                .run_recorded(ctx.rec)
                .map_err(ServeError::from)?;
            outcome
                .schedule
                .verify(&system)
                .map_err(|e| ServeError::Verify(e.to_string()))?;
            (outcome.schedule, outcome.iterations)
        };
        (
            system,
            spec,
            schedule,
            iterations,
            iterations,
            Disposition::Miss,
            None,
        )
    };

    let text = render_schedule_report(
        &system,
        &spec,
        &schedule,
        iterations,
        note.as_deref(),
        opts.gantt,
        opts.verify,
    )?;
    Ok(ScheduleArtifacts {
        text,
        system,
        schedule,
        disposition,
        fresh_iterations,
        cache_key,
    })
}

/// Renders the schedule report exactly as `tcms schedule` prints it.
/// `note` is an optional self-describing provenance line (degradation
/// summary, partition telemetry) printed verbatim below the summary.
///
/// # Errors
///
/// Returns [`ServeError::Verify`] when a `--verify` execution check
/// fails.
pub fn render_schedule_report(
    system: &System,
    spec: &SharingSpec,
    schedule: &Schedule,
    iterations: u64,
    note: Option<&str>,
    want_gantt: bool,
    verify: usize,
) -> Result<String, ServeError> {
    let report = tcms_core::compute_report(system, spec, schedule);
    let mut out = String::new();
    let _ = writeln!(out, "{}", display::summary(system));
    if let Some(note) = note {
        let _ = writeln!(out, "{note}");
    }
    let _ = writeln!(out, "iterations: {iterations}");
    for (k, rt) in system.library().iter() {
        let tr = report.of_type(k);
        let _ = write!(out, "{:<8} {:>3} instances", rt.name(), tr.instances());
        if let Some(auth) = &tr.authorization {
            let _ = write!(
                out,
                "  (shared pool {}, period {}",
                auth.pool(),
                auth.period()
            );
            let locals: u32 = tr.local_counts.iter().map(|&(_, c)| c).sum();
            if locals > 0 {
                let _ = write!(out, ", +{locals} local");
            }
            let _ = write!(out, ")");
        }
        out.push('\n');
    }
    let _ = writeln!(out, "total area: {}", report.total_area());

    if verify > 0 {
        for seed in 0..verify as u64 {
            let acts = random_activations(system, spec, schedule, 3, seed);
            check_execution(system, spec, schedule, &report, &acts)
                .map_err(|e| ServeError::Verify(e.to_string()))?;
        }
        let _ = writeln!(
            out,
            "verified {verify} randomized grid-aligned executions: conflict-free"
        );
    }
    if want_gantt {
        let _ = writeln!(out, "\n{}", gantt::render_system(system, schedule));
    }
    Ok(out)
}

/// Options of a simulate request (the CLI's `simulate` flags, without
/// fault injection — reactive-load simulation over the wire).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimulateOptions {
    /// Uniform period for all shareable types.
    pub all_global: Option<u32>,
    /// Per-type global assignments.
    pub globals: Vec<(String, u32)>,
    /// Simulated time steps.
    pub horizon: u64,
    /// Workload seed.
    pub seed: u64,
    /// Mean gap of the random triggers.
    pub mean_gap: u64,
}

impl Default for SimulateOptions {
    fn default() -> Self {
        SimulateOptions {
            all_global: None,
            globals: Vec::new(),
            horizon: 5_000,
            seed: 0,
            mean_gap: 50,
        }
    }
}

/// Everything a simulate request produced.
#[derive(Debug)]
pub struct SimulateArtifacts {
    /// The rendered simulation report (the response payload).
    pub text: String,
    /// How the underlying *schedule* was obtained.
    pub disposition: Disposition,
    /// IFDS iterations executed by this request (zero on a warm hit).
    pub fresh_iterations: u64,
    /// The schedule's content-address, when the cached path computed one.
    pub cache_key: Option<CacheKey>,
}

/// Runs the simulate pipeline: schedule (through the cache when one is
/// given — the simulation itself is not cached) and simulate the
/// reactive workload, rendering exactly the CLI's `simulate` output.
///
/// # Errors
///
/// Same classes as [`schedule_request`].
pub fn simulate_request(
    source: &str,
    opts: &SimulateOptions,
    ctx: &ExecContext<'_>,
) -> Result<SimulateArtifacts, ServeError> {
    let sched_opts = ScheduleOptions {
        all_global: opts.all_global,
        globals: opts.globals.clone(),
        ..ScheduleOptions::default()
    };
    let arts = schedule_request(source, &sched_opts, ctx)?;
    let system = arts.system;
    let spec = build_spec(&system, opts.all_global, &opts.globals)?;
    let sim = Simulator::new(&system, &spec, &arts.schedule);
    let workloads = vec![
        Trigger::Random {
            mean_gap: opts.mean_gap
        };
        system.num_processes()
    ];
    let config = SimConfig {
        horizon: opts.horizon,
        seed: opts.seed,
    };
    let result = sim.run(&workloads, &config);
    let out = render_simulation(
        &system,
        &spec,
        &sim,
        &result,
        opts.horizon,
        opts.seed,
        opts.mean_gap,
    );
    Ok(SimulateArtifacts {
        text: out,
        disposition: arts.disposition,
        fresh_iterations: arts.fresh_iterations,
        cache_key: arts.cache_key,
    })
}

/// Renders the standard simulation block exactly as `tcms simulate`
/// prints it (shared by the daemon and the CLI, including the CLI's
/// fault-injection mode, which appends its own lines after this block).
#[must_use]
pub fn render_simulation(
    system: &System,
    spec: &SharingSpec,
    sim: &Simulator<'_>,
    result: &tcms_sim::SimResult,
    horizon: u64,
    seed: u64,
    mean_gap: u64,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", display::summary(system));
    let _ = writeln!(
        out,
        "simulated {horizon} steps (workload seed {seed}, mean gap {mean_gap}): \
         {} activations",
        result.activations
    );
    let _ = writeln!(
        out,
        "mean wait {:.2}, mean latency {:.2}",
        result.mean_wait, result.mean_latency
    );
    for k in system.library().ids() {
        if spec.is_global(k) {
            let _ = writeln!(
                out,
                "pool {:<8} utilization {:.2}  peak {}/{}",
                system.library().get(k).name(),
                result.utilization[k.index()],
                result.peak_usage[k.index()],
                sim.report().instances(k)
            );
        }
    }
    let _ = writeln!(out, "conflicts vs full pools: {}", result.conflicts.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "
resource add delay=1 area=1
resource mul delay=2 area=4 pipelined
process A
block body time=8
op m0 mul
op a0 add
edge m0 a0
process B
block body time=8
op m0 mul
op a0 add
edge m0 a0
";

    /// The same design with every declaration order permuted.
    const SAMPLE_SHUFFLED: &str = "
resource mul delay=2 area=4 pipelined
resource add delay=1 area=1
process B
block body time=8
op a0 add
op m0 mul
edge m0 a0
process A
block body time=8
op a0 add
op m0 mul
edge m0 a0
";

    fn opts_global(period: u32) -> ScheduleOptions {
        ScheduleOptions {
            all_global: Some(period),
            ..ScheduleOptions::default()
        }
    }

    #[test]
    fn cacheless_and_miss_and_hit_render_identical_bytes() {
        let plain = schedule_request(SAMPLE, &opts_global(4), &ExecContext::default()).unwrap();
        assert_eq!(plain.disposition, Disposition::Miss);
        assert!(plain.fresh_iterations > 0);

        let cache = SchedCache::new(16, 2);
        let ctx = ExecContext {
            cache: Some(&cache),
            ..ExecContext::default()
        };
        let miss = schedule_request(SAMPLE, &opts_global(4), &ctx).unwrap();
        assert_eq!(miss.disposition, Disposition::Miss);
        assert_eq!(miss.text, plain.text);

        let hit = schedule_request(SAMPLE, &opts_global(4), &ctx).unwrap();
        assert_eq!(hit.disposition, Disposition::Hit);
        assert_eq!(hit.fresh_iterations, 0, "warm hits do zero IFDS work");
        assert_eq!(hit.text, plain.text);
    }

    #[test]
    fn permuted_design_hits_the_same_entry() {
        let cache = SchedCache::new(16, 2);
        let ctx = ExecContext {
            cache: Some(&cache),
            ..ExecContext::default()
        };
        let miss = schedule_request(SAMPLE, &opts_global(4), &ctx).unwrap();
        let hit = schedule_request(SAMPLE_SHUFFLED, &opts_global(4), &ctx).unwrap();
        assert_eq!(miss.disposition, Disposition::Miss);
        assert_eq!(hit.disposition, Disposition::Hit);
        assert_eq!(hit.fresh_iterations, 0);
        // Same design, same totals — rendered from the replayed schedule
        // against the permuted declaration.
        assert!(hit.text.contains("total area"));
        let area = |t: &str| {
            t.lines()
                .find(|l| l.starts_with("total area"))
                .map(str::to_owned)
        };
        assert_eq!(area(&hit.text), area(&miss.text));
    }

    #[test]
    fn different_config_is_a_different_entry() {
        let cache = SchedCache::new(16, 2);
        let ctx = ExecContext {
            cache: Some(&cache),
            ..ExecContext::default()
        };
        let a = schedule_request(SAMPLE, &opts_global(4), &ctx).unwrap();
        let b = schedule_request(SAMPLE, &opts_global(2), &ctx).unwrap();
        assert_eq!(a.disposition, Disposition::Miss);
        assert_eq!(b.disposition, Disposition::Miss);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn malformed_and_bad_spec_are_typed() {
        let err = schedule_request(
            "resource add delay=zero",
            &ScheduleOptions::default(),
            &ExecContext::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ServeError::Malformed(_)), "{err:?}");
        let opts = ScheduleOptions {
            globals: vec![("div".into(), 2)],
            ..ScheduleOptions::default()
        };
        let err = schedule_request(SAMPLE, &opts, &ExecContext::default()).unwrap_err();
        assert!(matches!(err, ServeError::Spec(_)), "{err:?}");
        assert_eq!(err.code(), 5);
    }

    #[test]
    fn degrade_requests_bypass_the_cache() {
        let cache = SchedCache::new(16, 2);
        let ctx = ExecContext {
            cache: Some(&cache),
            ..ExecContext::default()
        };
        let opts = ScheduleOptions {
            degrade: true,
            ..opts_global(4)
        };
        let a = schedule_request(SAMPLE, &opts, &ctx).unwrap();
        assert!(cache.is_empty(), "degrade results are never cached");
        assert!(a.fresh_iterations > 0);
    }

    #[test]
    fn partition_requests_are_cached_with_their_note() {
        let cache = SchedCache::new(16, 2);
        let ctx = ExecContext {
            cache: Some(&cache),
            ..ExecContext::default()
        };
        let opts = ScheduleOptions {
            partition: Some(PartitionCount::Fixed(2)),
            ..opts_global(4)
        };
        let a = schedule_request(SAMPLE, &opts, &ctx).unwrap();
        assert_eq!(cache.len(), 1, "partitioned results are content-addressed");
        assert_eq!(a.disposition, Disposition::Miss);
        assert!(a.fresh_iterations > 0);
        assert!(
            a.text.contains("partitioned: 2 subgraphs"),
            "report names the split: {}",
            a.text
        );
        // The hit replays the stored note: identical bytes, zero work.
        let b = schedule_request(SAMPLE, &opts, &ctx).unwrap();
        assert_eq!(b.disposition, Disposition::Hit);
        assert_eq!(b.fresh_iterations, 0);
        assert_eq!(b.text, a.text, "partitioned hits are byte-identical");
        // A different K is a different content address, and the plain
        // (monolithic) run is a third one.
        let opts4 = ScheduleOptions {
            partition: Some(PartitionCount::Fixed(4)),
            ..opts_global(4)
        };
        let c = schedule_request(SAMPLE, &opts4, &ctx).unwrap();
        assert_eq!(c.disposition, Disposition::Miss);
        let plain = schedule_request(SAMPLE, &opts_global(4), &ctx).unwrap();
        assert_eq!(plain.disposition, Disposition::Miss);
        assert!(!plain.text.contains("partitioned:"));
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn cacheless_and_cached_partition_runs_render_identical_bytes() {
        let opts = ScheduleOptions {
            partition: Some(PartitionCount::Fixed(2)),
            ..opts_global(4)
        };
        let plain = schedule_request(SAMPLE, &opts, &ExecContext::default()).unwrap();
        let cache = SchedCache::new(16, 2);
        let ctx = ExecContext {
            cache: Some(&cache),
            ..ExecContext::default()
        };
        let miss = schedule_request(SAMPLE, &opts, &ctx).unwrap();
        let hit = schedule_request(SAMPLE, &opts, &ctx).unwrap();
        assert_eq!(miss.text, plain.text);
        assert_eq!(hit.text, plain.text);
    }

    #[test]
    fn single_partition_renders_identical_bytes_to_monolithic() {
        let plain = schedule_request(SAMPLE, &opts_global(4), &ExecContext::default()).unwrap();
        let opts = ScheduleOptions {
            partition: Some(PartitionCount::Fixed(1)),
            ..opts_global(4)
        };
        let one = schedule_request(SAMPLE, &opts, &ExecContext::default()).unwrap();
        // K=1 delegates to the monolithic scheduler; only the note line
        // differs from a plain run.
        let strip = |t: &str| {
            t.lines()
                .filter(|l| !l.starts_with("partitioned:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&one.text), strip(&plain.text));
        assert!(one.text.contains("partitioned: 1 subgraphs"));
    }

    #[test]
    fn auto_partition_threshold_routes_large_specs() {
        // Threshold at/below the op count → auto-partitioned note; the
        // explicit field still wins over the context default.
        let ctx = ExecContext {
            auto_partition_ops: 4,
            ..ExecContext::default()
        };
        let auto = schedule_request(SAMPLE, &opts_global(4), &ctx).unwrap();
        assert!(auto.text.contains("partitioned:"), "{}", auto.text);
        let off = ExecContext {
            auto_partition_ops: 0,
            ..ExecContext::default()
        };
        let plain = schedule_request(SAMPLE, &opts_global(4), &off).unwrap();
        assert!(!plain.text.contains("partitioned:"));
    }

    #[test]
    fn request_cache_key_matches_the_executed_key() {
        let cache = SchedCache::new(16, 2);
        let ctx = ExecContext {
            cache: Some(&cache),
            ..ExecContext::default()
        };
        for opts in [
            opts_global(4),
            opts_global(2),
            ScheduleOptions {
                partition: Some(PartitionCount::Fixed(2)),
                ..opts_global(4)
            },
        ] {
            let routed = request_cache_key(SAMPLE, &opts, ctx.auto_partition_ops).unwrap();
            let executed = schedule_request(SAMPLE, &opts, &ctx).unwrap().cache_key;
            assert_eq!(routed, executed, "{opts:?}");
            assert!(routed.is_some());
        }
        // Isomorphic designs route to the same address.
        let a = request_cache_key(SAMPLE, &opts_global(4), 0).unwrap();
        let b = request_cache_key(SAMPLE_SHUFFLED, &opts_global(4), 0).unwrap();
        assert_eq!(a, b);
        // Degrade requests are never routed.
        let degrade = ScheduleOptions {
            degrade: true,
            ..opts_global(4)
        };
        assert_eq!(request_cache_key(SAMPLE, &degrade, 0).unwrap(), None);
        // The auto-partition threshold changes the address exactly as it
        // changes execution.
        let auto = request_cache_key(SAMPLE, &opts_global(4), 4).unwrap();
        assert_ne!(auto, a, "auto-partitioned specs address differently");
    }

    #[test]
    fn fault_marker_panics_only_when_armed() {
        let marked = format!("{SAMPLE}{PANIC_MARKER}\n");
        let armed = ExecContext {
            fault_marker: true,
            ..ExecContext::default()
        };
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            schedule_request(&marked, &opts_global(4), &armed)
        }));
        assert!(panicked.is_err(), "marker + armed context panics");
        // Disarmed, the marker is an ordinary `#` comment: the design
        // schedules normally and renders the usual report.
        let ok = schedule_request(&marked, &opts_global(4), &ExecContext::default()).unwrap();
        assert!(ok.text.contains("total area"));
    }

    #[test]
    fn simulate_renders_and_uses_cache_for_scheduling() {
        let cache = SchedCache::new(16, 2);
        let ctx = ExecContext {
            cache: Some(&cache),
            ..ExecContext::default()
        };
        let opts = SimulateOptions {
            all_global: Some(4),
            horizon: 500,
            ..SimulateOptions::default()
        };
        let a = simulate_request(SAMPLE, &opts, &ctx).unwrap();
        let b = simulate_request(SAMPLE, &opts, &ctx).unwrap();
        assert_eq!(a.disposition, Disposition::Miss);
        assert_eq!(b.disposition, Disposition::Hit);
        assert!(a.fresh_iterations > 0);
        assert_eq!(b.fresh_iterations, 0);
        assert_eq!(a.cache_key, b.cache_key);
        assert!(a.cache_key.is_some(), "cached runs expose their key");
        assert_eq!(a.text, b.text, "simulation output is deterministic");
        assert!(a.text.contains("simulated 500 steps"));
    }
}
