//! Human-readable rendering of a daemon `stats` response
//! (`tcms stats <addr>`).
//!
//! The daemon ships its full [`MetricsRegistry`] in wire form inside
//! the `stats` body; this module rebuilds the registry with
//! [`MetricsRegistry::from_json`] and renders the standard
//! [`render_summary`](MetricsRegistry::render_summary) block, prefixed
//! by a headline section (requests, errors, queue/inflight), the cache
//! section (hit rate plus **per-shard** occupancy and evictions — shard
//! imbalance shows up here long before the global hit rate moves) and
//! the journal section (enabled, recorded, dropped, rotated). Older
//! daemons
//! whose bodies predate a field render what they have; nothing here is
//! load-bearing for scripts, which should parse the JSON body instead.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use tcms_obs::json::JsonValue;
use tcms_obs::MetricsRegistry;

fn num(body: &BTreeMap<String, JsonValue>, key: &str) -> f64 {
    body.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0)
}

/// Renders the body of a `stats` response as a terminal-friendly
/// summary. Missing fields render as zeros / absent sections so the
/// command degrades gracefully against older daemons.
#[must_use]
pub fn render_stats(body: &BTreeMap<String, JsonValue>) -> String {
    let mut out = String::new();
    let n = |key: &str| num(body, key);

    out.push_str("daemon:\n");
    let _ = writeln!(out, "  {:<22} {:>12}", "requests", n("requests"));
    let _ = writeln!(out, "  {:<22} {:>12}", "errors", n("errors"));
    let _ = writeln!(
        out,
        "  {:<22} {:>12}",
        "scheduler runs",
        n("scheduler_runs")
    );
    let _ = writeln!(
        out,
        "  {:<22} {:>12}",
        "ifds iterations",
        n("ifds_iterations")
    );
    let _ = writeln!(out, "  {:<22} {:>12}", "queue depth", n("queue_depth"));
    let _ = writeln!(out, "  {:<22} {:>12}", "inflight", n("inflight"));
    let _ = writeln!(out, "  {:<22} {:>12}", "workers", n("workers"));
    let _ = writeln!(out, "  {:<22} {:>12}", "worker panics", n("worker_panics"));
    let _ = writeln!(
        out,
        "  {:<22} {:>12}",
        "worker restarts",
        n("worker_restarts")
    );

    out.push_str("cache:\n");
    let _ = writeln!(out, "  {:<22} {:>12}", "entries", n("cache_entries"));
    let _ = writeln!(out, "  {:<22} {:>12}", "hits", n("cache_hits"));
    let _ = writeln!(out, "  {:<22} {:>12}", "misses", n("cache_misses"));
    let _ = writeln!(out, "  {:<22} {:>12}", "coalesced", n("cache_coalesced"));
    let _ = writeln!(out, "  {:<22} {:>12}", "evictions", n("cache_evictions"));
    let _ = writeln!(
        out,
        "  {:<22} {:>11.1}%",
        "hit rate",
        n("cache_hit_rate") * 100.0
    );
    if let Some(shards) = body.get("cache_shards").and_then(JsonValue::as_array) {
        let _ = writeln!(
            out,
            "  {:<8} {:>10} {:>10} {:>10}",
            "shard", "occupancy", "capacity", "evictions"
        );
        for (i, shard) in shards.iter().enumerate() {
            let g = |key: &str| shard.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0);
            let _ = writeln!(
                out,
                "  {i:<8} {:>10} {:>10} {:>10}",
                g("occupancy"),
                g("capacity"),
                g("evictions")
            );
        }
    }

    if let Some(journal) = body.get("journal") {
        out.push_str("journal:\n");
        let enabled = journal.get("enabled") == Some(&JsonValue::Bool(true));
        let _ = writeln!(
            out,
            "  {:<22} {:>12}",
            "enabled",
            if enabled { "yes" } else { "no" }
        );
        if enabled {
            let g = |key: &str| journal.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0);
            let _ = writeln!(out, "  {:<22} {:>12}", "recorded", g("recorded"));
            let _ = writeln!(out, "  {:<22} {:>12}", "dropped", g("dropped"));
            let _ = writeln!(out, "  {:<22} {:>12}", "rotated", g("rotated"));
            if let Some(path) = journal.get("path").and_then(JsonValue::as_str) {
                let _ = writeln!(out, "  {:<22} {path}", "path");
            }
        }
    }

    match body.get("metrics").map(MetricsRegistry::from_json) {
        Some(Ok(registry)) => {
            out.push_str(&registry.render_summary());
        }
        Some(Err(e)) => {
            let _ = writeln!(out, "(metrics block unreadable: {e})");
        }
        // Pre-journal daemons ship no registry; the headline is all
        // there is.
        None => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body_with(entries: &[(&str, JsonValue)]) -> BTreeMap<String, JsonValue> {
        entries
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.clone()))
            .collect()
    }

    #[test]
    fn renders_all_sections_from_a_full_body() {
        let mut registry = MetricsRegistry::default();
        registry.counter_add("serve.requests", 7);
        registry.gauge_set("serve.inflight", 2.0);
        registry.histogram_record("serve.exec_us.miss", 1500.0);
        let shard = JsonValue::Object(body_with(&[
            ("occupancy", JsonValue::Number(3.0)),
            ("capacity", JsonValue::Number(128.0)),
            ("evictions", JsonValue::Number(1.0)),
        ]));
        let journal = JsonValue::Object(body_with(&[
            ("enabled", JsonValue::Bool(true)),
            ("recorded", JsonValue::Number(41.0)),
            ("dropped", JsonValue::Number(2.0)),
            ("path", JsonValue::String("/tmp/j/journal.jsonl".into())),
        ]));
        let body = body_with(&[
            ("requests", JsonValue::Number(7.0)),
            ("errors", JsonValue::Number(1.0)),
            ("worker_panics", JsonValue::Number(3.0)),
            ("worker_restarts", JsonValue::Number(1.0)),
            ("cache_entries", JsonValue::Number(3.0)),
            ("cache_hit_rate", JsonValue::Number(0.5)),
            ("cache_shards", JsonValue::Array(vec![shard])),
            ("journal", journal),
            ("metrics", registry.to_json()),
        ]);
        let text = render_stats(&body);
        for needle in [
            "daemon:",
            "worker panics",
            "worker restarts",
            "rotated",
            "cache:",
            "hit rate",
            "50.0%",
            "shard",
            "journal:",
            "recorded",
            "/tmp/j/journal.jsonl",
            "serve.requests",
            "serve.exec_us.miss",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn degrades_gracefully_without_optional_sections() {
        let body = body_with(&[("requests", JsonValue::Number(1.0))]);
        let text = render_stats(&body);
        assert!(text.contains("daemon:"));
        assert!(!text.contains("journal:"));
        assert!(!text.contains("shard "));
    }
}
