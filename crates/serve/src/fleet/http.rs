//! A minimal hand-rolled HTTP/1.1 layer over the daemon's objects.
//!
//! No dependency ships an HTTP server in this workspace, and the
//! daemon needs only three routes — `POST /schedule`, `GET /stats`,
//! `GET /healthz` — so this module implements exactly the slice of
//! RFC 9112 those need: a request line, headers, and an optional
//! `Content-Length` body. Chunked transfer encoding, continuations,
//! and multipart are rejected rather than half-supported.
//!
//! The functions here are pure (bytes in, bytes out); the socket loop
//! lives in [`crate::server`] next to the NDJSON one. The response
//! body of a work request is **exactly the NDJSON response line** the
//! TCP protocol would have produced, so the fleet's bit-identicality
//! guarantee extends to HTTP byte-for-byte at the object level.

use crate::error::ServeError;

/// Parsed head of an HTTP request (request line + headers, no body).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestHead {
    /// Uppercased method, e.g. `GET`.
    pub method: String,
    /// Request target path, query string stripped.
    pub path: String,
    /// Declared `Content-Length` (0 when absent).
    pub content_length: usize,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

/// Parses the head of an HTTP request: the request line plus header
/// lines, as received up to (not including) the blank line.
///
/// # Errors
///
/// Returns a human-readable message for anything outside the supported
/// slice: bad request line, non-HTTP/1.x version, unparseable
/// `Content-Length`, or a `Transfer-Encoding` header (chunked bodies
/// are deliberately unsupported).
pub fn parse_request_head(head: &str) -> Result<RequestHead, String> {
    let mut lines = head.lines();
    let request_line = lines.next().ok_or("empty request")?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or("missing method")?.to_uppercase();
    let target = parts.next().ok_or("missing request target")?;
    let version = parts.next().ok_or("missing HTTP version")?;
    if parts.next().is_some() {
        return Err("malformed request line".into());
    }
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported version `{version}`"));
    }
    // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close.
    let mut keep_alive = version == "HTTP/1.1";
    let path = target.split('?').next().unwrap_or(target).to_owned();
    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(format!("malformed header line `{line}`"));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                content_length = value
                    .parse::<usize>()
                    .map_err(|_| format!("bad Content-Length `{value}`"))?;
            }
            "transfer-encoding" => {
                return Err("Transfer-Encoding is not supported; send Content-Length".into());
            }
            "connection" => {
                let v = value.to_ascii_lowercase();
                if v.contains("close") {
                    keep_alive = false;
                } else if v.contains("keep-alive") {
                    keep_alive = true;
                }
            }
            _ => {}
        }
    }
    Ok(RequestHead {
        method,
        path,
        content_length,
        keep_alive,
    })
}

/// The standard reason phrase for the status codes this daemon emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Content Too Large",
        422 => "Unprocessable Content",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Maps a typed [`ServeError`] onto an HTTP status. The service-only
/// classes already carry HTTP-flavoured codes and pass through; the
/// CLI-exit-code classes fold into 400 (caller's input is wrong) or
/// 422 (input understood, scheduling cannot satisfy it).
#[must_use]
pub fn status_of(error: &ServeError) -> u16 {
    status_of_code(error.code())
}

/// [`status_of`] over a bare wire code — for responses already rendered
/// to NDJSON, where only the numeric code survives.
#[must_use]
pub fn status_of_code(code: u16) -> u16 {
    match code {
        // Request-shaped failures: bad JSON, bad design, bad spec.
        2 | 4 | 5 => 400,
        // Understood but unsatisfiable: infeasible, budget, period
        // grid, verification.
        6..=9 => 422,
        // Service codes are already HTTP codes.
        code @ (404 | 408 | 413 | 429 | 500 | 503) => code,
        // Future classes default to 500: fail loudly, not misleadingly.
        _ => 500,
    }
}

/// Renders a full HTTP/1.1 response. The body is sent verbatim with an
/// exact `Content-Length`, so NDJSON response lines pass through
/// byte-identical.
#[must_use]
pub fn response_bytes(status: u16, body: &str, keep_alive: bool) -> Vec<u8> {
    let mut out = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )
    .into_bytes();
    out.extend_from_slice(body.as_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_post_with_body_headers() {
        let head = "POST /schedule?x=1 HTTP/1.1\r\nHost: a\r\nContent-Length: 42\r\n"
            .replace("\r\n", "\n");
        let h = parse_request_head(&head).unwrap();
        assert_eq!(h.method, "POST");
        assert_eq!(h.path, "/schedule", "query string stripped");
        assert_eq!(h.content_length, 42);
        assert!(h.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn connection_and_version_drive_keep_alive() {
        let close = parse_request_head("GET /healthz HTTP/1.1\nConnection: close\n").unwrap();
        assert!(!close.keep_alive);
        let old = parse_request_head("GET /healthz HTTP/1.0\n").unwrap();
        assert!(!old.keep_alive, "HTTP/1.0 defaults to close");
        let revived =
            parse_request_head("GET /healthz HTTP/1.0\nConnection: keep-alive\n").unwrap();
        assert!(revived.keep_alive);
    }

    #[test]
    fn unsupported_shapes_are_rejected_with_reasons() {
        for (head, needle) in [
            ("", "empty"),
            ("GET\n", "missing request target"),
            ("GET /x\n", "missing HTTP version"),
            ("GET /x HTTP/2\n", "unsupported version"),
            ("GET /x HTTP/1.1 extra\n", "malformed request line"),
            ("GET /x HTTP/1.1\nbroken header\n", "malformed header"),
            ("POST /x HTTP/1.1\nContent-Length: many\n", "Content-Length"),
            (
                "POST /x HTTP/1.1\nTransfer-Encoding: chunked\n",
                "Transfer-Encoding",
            ),
        ] {
            let err = parse_request_head(head).unwrap_err();
            assert!(err.contains(needle), "`{head}` → `{err}`");
        }
    }

    #[test]
    fn serve_errors_map_onto_http_statuses() {
        use tcms_core::ScheduleError;
        let cases: Vec<(ServeError, u16)> = vec![
            (ServeError::BadRequest("x".into()), 400),
            (ServeError::Malformed("x".into()), 400),
            (ServeError::Spec("x".into()), 400),
            (
                ServeError::Schedule(ScheduleError::Infeasible {
                    block: "P::b".into(),
                    slack: -1,
                    binding_resource: "mul".into(),
                }),
                422,
            ),
            (ServeError::Verify("x".into()), 422),
            (ServeError::UnknownAction("x".into()), 404),
            (ServeError::Overloaded { capacity: 1 }, 429),
            (ServeError::DeadlineExpired { waited_ms: 1 }, 408),
            (ServeError::TooLarge { limit: 1 }, 413),
            (ServeError::Internal("x".into()), 500),
            (ServeError::ShuttingDown, 503),
            (ServeError::PeerUnavailable { peer: "p".into() }, 503),
        ];
        for (e, status) in cases {
            assert_eq!(status_of(&e), status, "{e}");
            assert_ne!(reason(status), "Unknown");
        }
    }

    #[test]
    fn response_bytes_carry_the_body_verbatim() {
        let body = "{\"id\":\"1\",\"ok\":true}\n";
        let bytes = response_bytes(200, body, true);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains(&format!("content-length: {}\r\n", body.len())));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with(body), "body must be byte-identical");
        let closed = String::from_utf8(response_bytes(503, "x", false)).unwrap();
        assert!(closed.contains("connection: close\r\n"));
    }
}
