//! The distributed serve fleet: several daemons behaving as one
//! logical cache.
//!
//! Three mechanisms compose (see `DESIGN.md` §14):
//!
//! * **Routing** ([`ring`]): a deterministic consistent-hash ring over
//!   the static `--peers` list maps every content address to an owner
//!   and an R-replica set, so any node knows — with no coordination —
//!   which node should hold a given result.
//! * **Anti-entropy** ([`sync`]): a background loop exchanges
//!   per-shard cache digests with each peer and ships only diverging
//!   shards as self-checking op-batches, so caches converge even
//!   through peer death, restart, and fault-injected transports.
//! * **HTTP front-end** ([`http`]): a hand-rolled HTTP/1.1 layer over
//!   the same request/response objects as the NDJSON protocol.
//!
//! Peer health lives in [`membership`] and only ever gates *effort*
//! (proxy vs. compute locally), never *placement* — so no failure
//! observation can make two nodes disagree about ownership, and any
//! reachable node always produces the same bytes for the same request.

pub mod http;
pub mod membership;
pub mod ring;
pub mod sync;

use std::time::Duration;

pub use membership::{Membership, PeerHealth, DEATH_THRESHOLD};
pub use ring::{HashRing, DEFAULT_REPLICAS};
pub use sync::{ShardDigest, SyncOutcome, SYNC_SHARDS};

use crate::cache::CacheKey;

/// How a non-owner node handles a request it does not own.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouteMode {
    /// Forward the raw request line to the owner and relay its response
    /// verbatim — the fleet's hit rate is the owner's hit rate.
    #[default]
    Proxy,
    /// Answer locally (fetching the entry from the owner first when the
    /// local cache misses) and push fresh results to the owner — useful
    /// when cross-node latency dominates compute.
    Local,
}

impl RouteMode {
    /// Stable lowercase name (CLI flag value and stats field).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            RouteMode::Proxy => "proxy",
            RouteMode::Local => "local",
        }
    }

    /// Parses a CLI flag value.
    ///
    /// # Errors
    ///
    /// Returns the offending string for anything but `proxy` / `local`.
    pub fn parse(s: &str) -> Result<RouteMode, String> {
        match s {
            "proxy" => Ok(RouteMode::Proxy),
            "local" => Ok(RouteMode::Local),
            other => Err(format!("unknown route mode `{other}` (proxy|local)")),
        }
    }
}

/// Static fleet configuration, one per daemon.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// This node's advertised address — must appear in `peers` exactly
    /// as the other nodes list it, or the ring routes around us.
    pub self_addr: String,
    /// Every fleet member's advertised address, including self. Order
    /// does not matter (the ring sorts).
    pub peers: Vec<String>,
    /// Replica-set size (owner + backups), clamped to the fleet size.
    pub replicas: usize,
    /// Non-owner behaviour.
    pub route: RouteMode,
    /// Anti-entropy period; `None` disables the background loop (tests
    /// drive sync rounds explicitly).
    pub sync_interval: Option<Duration>,
}

impl FleetConfig {
    /// A fleet config with the default replica count, proxy routing and
    /// a 2-second sync period.
    #[must_use]
    pub fn new(self_addr: impl Into<String>, peers: Vec<String>) -> FleetConfig {
        FleetConfig {
            self_addr: self_addr.into(),
            peers,
            replicas: DEFAULT_REPLICAS,
            route: RouteMode::default(),
            sync_interval: Some(Duration::from_secs(2)),
        }
    }
}

/// Runtime fleet state held by the server: the (immutable) ring plus
/// the (mutable, local) peer-health table.
pub struct Fleet {
    /// The configuration the fleet was built from.
    pub config: FleetConfig,
    /// Consistent-hash placement.
    pub ring: HashRing,
    /// Local health opinion of every peer except self.
    pub membership: Membership,
}

impl Fleet {
    /// Builds the runtime state. The ring always includes `self_addr`
    /// even if the peer list forgot it; membership tracks everyone
    /// else.
    #[must_use]
    pub fn new(config: FleetConfig) -> Fleet {
        let mut ring_peers = config.peers.clone();
        if !ring_peers.contains(&config.self_addr) {
            ring_peers.push(config.self_addr.clone());
        }
        let ring = HashRing::new(&ring_peers, config.replicas);
        let others: Vec<String> = ring
            .peers()
            .iter()
            .filter(|p| **p != config.self_addr)
            .cloned()
            .collect();
        Fleet {
            ring,
            membership: Membership::new(others),
            config,
        }
    }

    /// The owner of a content address.
    #[must_use]
    pub fn owner(&self, key: &CacheKey) -> &str {
        self.ring.owner(key)
    }

    /// Whether this node is in the key's replica set (owner or backup).
    #[must_use]
    pub fn is_local(&self, key: &CacheKey) -> bool {
        self.ring.is_replica(key, &self.config.self_addr)
    }

    /// The key's replica peers other than this node, owner first.
    #[must_use]
    pub fn replica_peers(&self, key: &CacheKey) -> Vec<&str> {
        self.ring
            .replica_set(key)
            .into_iter()
            .filter(|p| *p != self.config.self_addr)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcms_ir::SpecHash;

    fn key(n: u64) -> CacheKey {
        CacheKey {
            spec: SpecHash::of_text(&format!("d{n}")),
            config: n,
        }
    }

    fn three_node(self_idx: usize) -> Fleet {
        let peers: Vec<String> = (0..3).map(|i| format!("n{i}:1")).collect();
        Fleet::new(FleetConfig::new(format!("n{self_idx}:1"), peers))
    }

    #[test]
    fn all_nodes_agree_on_ownership() {
        let fleets: Vec<Fleet> = (0..3).map(three_node).collect();
        for n in 0..100 {
            let k = key(n);
            let owner = fleets[0].owner(&k).to_owned();
            for f in &fleets {
                assert_eq!(f.owner(&k), owner);
            }
            // Exactly `replicas` nodes consider the key local.
            let locals = fleets.iter().filter(|f| f.is_local(&k)).count();
            assert_eq!(locals, DEFAULT_REPLICAS);
            // replica_peers excludes self and has the right size.
            for f in &fleets {
                let others = f.replica_peers(&k);
                assert!(!others.contains(&f.config.self_addr.as_str()));
                let expect = if f.is_local(&k) {
                    DEFAULT_REPLICAS - 1
                } else {
                    DEFAULT_REPLICAS
                };
                assert_eq!(others.len(), expect);
            }
        }
    }

    #[test]
    fn self_is_added_to_the_ring_when_omitted() {
        let fleet = Fleet::new(FleetConfig::new("me:9", vec!["a:1".into(), "b:2".into()]));
        assert!(fleet.ring.peers().contains(&"me:9".to_owned()));
        assert_eq!(fleet.membership.addrs().count(), 2, "self not tracked");
    }

    #[test]
    fn route_mode_parses_and_prints() {
        assert_eq!(RouteMode::parse("proxy").unwrap(), RouteMode::Proxy);
        assert_eq!(RouteMode::parse("local").unwrap(), RouteMode::Local);
        assert!(RouteMode::parse("magic").is_err());
        assert_eq!(RouteMode::Proxy.as_str(), "proxy");
        assert_eq!(RouteMode::Local.as_str(), "local");
    }
}
