//! Local peer-health bookkeeping for the fleet.
//!
//! Membership is intentionally *not* a consensus protocol: the peer
//! list is static (the ring never changes), and each node keeps only a
//! local opinion of which peers currently answer. That opinion gates
//! expensive choices — whether to proxy to an owner or fall back to
//! computing locally — but never placement, so two nodes with different
//! failure observations still agree on who owns a key.
//!
//! A peer is declared dead after [`DEATH_THRESHOLD`] consecutive
//! failures and resurrects on the first success (the anti-entropy loop
//! doubles as the failure detector: every sync round probes every
//! peer). Counters saturate rather than wrap so a week-long soak can't
//! corrupt the stats.

use std::sync::Mutex;

/// Consecutive failures after which a peer is considered dead and
/// routing stops waiting on it.
pub const DEATH_THRESHOLD: u32 = 3;

/// Health counters for one peer, as locally observed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PeerHealth {
    /// Consecutive failures since the last success.
    pub consecutive_failures: u32,
    /// Total successful exchanges.
    pub ok_count: u64,
    /// Total failed exchanges.
    pub failure_count: u64,
    /// Round-trip time of the most recent successful exchange, in
    /// microseconds.
    pub last_rtt_us: Option<u64>,
}

impl PeerHealth {
    /// Whether this peer is currently considered alive.
    #[must_use]
    pub fn is_alive(&self) -> bool {
        self.consecutive_failures < DEATH_THRESHOLD
    }
}

struct PeerSlot {
    addr: String,
    health: Mutex<PeerHealth>,
}

/// Health table over the static peer list (self excluded).
pub struct Membership {
    peers: Vec<PeerSlot>,
}

impl Membership {
    /// Builds the table. `peers` should be the ring's peer list minus
    /// the node's own advertised address.
    #[must_use]
    pub fn new(peers: Vec<String>) -> Membership {
        Membership {
            peers: peers
                .into_iter()
                .map(|addr| PeerSlot {
                    addr,
                    health: Mutex::new(PeerHealth::default()),
                })
                .collect(),
        }
    }

    /// The tracked peer addresses, in ring order.
    pub fn addrs(&self) -> impl Iterator<Item = &str> {
        self.peers.iter().map(|p| p.addr.as_str())
    }

    fn slot(&self, addr: &str) -> Option<&PeerSlot> {
        self.peers.iter().find(|p| p.addr == addr)
    }

    /// Records a successful exchange with `addr`: resets the failure
    /// streak (resurrecting a dead peer) and stores the observed RTT.
    pub fn record_ok(&self, addr: &str, rtt_us: u64) {
        if let Some(slot) = self.slot(addr) {
            let mut h = slot.health.lock().unwrap_or_else(|e| e.into_inner());
            h.consecutive_failures = 0;
            h.ok_count = h.ok_count.saturating_add(1);
            h.last_rtt_us = Some(rtt_us);
        }
    }

    /// Records a failed exchange with `addr`.
    pub fn record_failure(&self, addr: &str) {
        if let Some(slot) = self.slot(addr) {
            let mut h = slot.health.lock().unwrap_or_else(|e| e.into_inner());
            h.consecutive_failures = h.consecutive_failures.saturating_add(1);
            h.failure_count = h.failure_count.saturating_add(1);
        }
    }

    /// Whether `addr` is currently considered alive. Untracked
    /// addresses (including self) are alive by definition — a node
    /// never declares itself dead.
    #[must_use]
    pub fn is_alive(&self, addr: &str) -> bool {
        self.slot(addr).is_none_or(|slot| {
            slot.health
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_alive()
        })
    }

    /// A snapshot of every tracked peer's health, in ring order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(String, PeerHealth)> {
        self.peers
            .iter()
            .map(|slot| {
                (
                    slot.addr.clone(),
                    slot.health
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .clone(),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peers_die_after_the_threshold_and_resurrect_on_success() {
        let m = Membership::new(vec!["a:1".into(), "b:2".into()]);
        assert!(m.is_alive("a:1"));
        for _ in 0..DEATH_THRESHOLD - 1 {
            m.record_failure("a:1");
            assert!(m.is_alive("a:1"), "below threshold stays alive");
        }
        m.record_failure("a:1");
        assert!(!m.is_alive("a:1"), "threshold reached: dead");
        assert!(m.is_alive("b:2"), "other peers unaffected");

        m.record_ok("a:1", 420);
        assert!(m.is_alive("a:1"), "one success resurrects");
        let snap = m.snapshot();
        let a = &snap.iter().find(|(addr, _)| addr == "a:1").unwrap().1;
        assert_eq!(a.last_rtt_us, Some(420));
        assert_eq!(a.failure_count, u64::from(DEATH_THRESHOLD));
        assert_eq!(a.ok_count, 1);
    }

    #[test]
    fn unknown_addresses_are_alive_and_ignored() {
        let m = Membership::new(vec!["a:1".into()]);
        assert!(m.is_alive("self:0"), "self / unknown is never dead");
        m.record_failure("self:0"); // no-op, must not panic
        m.record_ok("self:0", 1);
        assert_eq!(m.snapshot().len(), 1);
    }
}
