//! Deterministic consistent-hash placement of content addresses.
//!
//! Every node builds the ring from the same static `--peers` list, so
//! every node computes the same owner for the same [`CacheKey`] with no
//! coordination: the peer list is sorted and deduplicated first
//! (declaration order cannot matter), each peer contributes a fixed
//! number of virtual points (`mix(fnv64("{addr}#{v}"))`), and a key
//! maps to
//! the first `replicas` **distinct** peers clockwise from its own hash
//! point. Virtual points smooth the load split; the walk skipping
//! duplicate peers makes the replica set well-defined even when two
//! peers' points interleave arbitrarily.
//!
//! The ring is static by design — membership health (who is *alive*)
//! is a separate, local judgement ([`super::membership`]); placement
//! must never depend on it, or two nodes with different failure
//! observations would route the same key to different owners.

use tcms_ir::canon::fnv64;

use crate::cache::CacheKey;

/// Virtual points per peer: enough that a 3-node fleet splits within a
/// few percent of evenly, cheap enough that ring construction is
/// microseconds.
const VNODES_PER_PEER: usize = 128;

/// A splitmix64-style finaliser applied over `fnv64`: FNV of short,
/// near-identical strings (`addr#0`, `addr#1`, …) clusters in the low
/// bits, which skews the ring's arc lengths; the multiply-xorshift
/// rounds disperse points uniformly while staying fully deterministic.
fn mix(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Default replica-set size (R): the owner plus one backup.
pub const DEFAULT_REPLICAS: usize = 2;

/// The consistent-hash ring over a static peer list.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, peer index)` sorted by point.
    points: Vec<(u64, u32)>,
    /// Sorted, deduplicated advertised addresses.
    peers: Vec<String>,
    /// Replica-set size, clamped to the peer count.
    replicas: usize,
}

impl HashRing {
    /// Builds the ring. The peer list is sorted and deduplicated, so
    /// every node passing the same *set* of addresses (in any order)
    /// builds the identical ring. `replicas` is clamped to
    /// `1..=peers.len()`.
    ///
    /// # Panics
    ///
    /// Panics on an empty peer list — a fleet of zero nodes cannot own
    /// anything; callers gate fleet construction on a non-empty
    /// `--peers`.
    #[must_use]
    pub fn new(peers: &[String], replicas: usize) -> HashRing {
        let mut peers: Vec<String> = peers.to_vec();
        peers.sort();
        peers.dedup();
        assert!(!peers.is_empty(), "consistent-hash ring needs >= 1 peer");
        let replicas = replicas.clamp(1, peers.len());
        let mut points = Vec::with_capacity(peers.len() * VNODES_PER_PEER);
        for (i, peer) in peers.iter().enumerate() {
            let i = u32::try_from(i).expect("peer count fits u32");
            for v in 0..VNODES_PER_PEER {
                points.push((mix(fnv64(format!("{peer}#{v}").as_bytes())), i));
            }
        }
        // Sorting the (point, index) pair makes even a point collision
        // between two peers deterministic.
        points.sort_unstable();
        HashRing {
            points,
            peers,
            replicas,
        }
    }

    /// The hash point of a content address on the ring. Derived from
    /// the canonical spec hash and config fingerprint only — every node
    /// computes the same point for the same key.
    #[must_use]
    pub fn key_point(key: &CacheKey) -> u64 {
        mix(fnv64(
            format!("{}|{:016x}", key.spec, key.config).as_bytes(),
        ))
    }

    /// The sorted, deduplicated peer list the ring was built from.
    #[must_use]
    pub fn peers(&self) -> &[String] {
        &self.peers
    }

    /// The effective replica-set size.
    #[must_use]
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// The owner of `key`: the first distinct peer clockwise from the
    /// key's point.
    #[must_use]
    pub fn owner(&self, key: &CacheKey) -> &str {
        self.replica_set(key)[0]
    }

    /// The replica set of `key`: the first `replicas` **distinct**
    /// peers clockwise from the key's point, owner first.
    #[must_use]
    pub fn replica_set(&self, key: &CacheKey) -> Vec<&str> {
        let point = Self::key_point(key);
        let start = self.points.partition_point(|&(p, _)| p < point);
        let mut seen = vec![false; self.peers.len()];
        let mut set = Vec::with_capacity(self.replicas);
        for step in 0..self.points.len() {
            let (_, idx) = self.points[(start + step) % self.points.len()];
            let idx = idx as usize;
            if !seen[idx] {
                seen[idx] = true;
                set.push(self.peers[idx].as_str());
                if set.len() == self.replicas {
                    break;
                }
            }
        }
        set
    }

    /// Whether `addr` is in `key`'s replica set.
    #[must_use]
    pub fn is_replica(&self, key: &CacheKey, addr: &str) -> bool {
        self.replica_set(key).contains(&addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcms_ir::SpecHash;

    fn peers(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{i}:7733")).collect()
    }

    fn key(n: u64) -> CacheKey {
        CacheKey {
            spec: SpecHash::of_text(&format!("design {n}")),
            config: n.wrapping_mul(0x9e37_79b9),
        }
    }

    #[test]
    fn placement_is_order_independent_and_deterministic() {
        let a = HashRing::new(&peers(5), 2);
        let mut shuffled = peers(5);
        shuffled.reverse();
        shuffled.push(shuffled[0].clone()); // duplicate entry
        let b = HashRing::new(&shuffled, 2);
        for n in 0..500 {
            let k = key(n);
            assert_eq!(a.owner(&k), b.owner(&k));
            assert_eq!(a.replica_set(&k), b.replica_set(&k));
        }
    }

    #[test]
    fn replica_sets_are_distinct_and_owner_first() {
        let ring = HashRing::new(&peers(4), 3);
        for n in 0..200 {
            let k = key(n);
            let set = ring.replica_set(&k);
            assert_eq!(set.len(), 3);
            assert_eq!(set[0], ring.owner(&k));
            let mut sorted = set.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "replica set has no duplicates");
            for peer in &set {
                assert!(ring.is_replica(&k, peer));
            }
        }
    }

    #[test]
    fn load_splits_roughly_evenly() {
        let ring = HashRing::new(&peers(3), 2);
        let mut owned = [0u64; 3];
        let total = 3_000;
        for n in 0..total {
            let owner = ring.owner(&key(n));
            let idx = ring.peers().iter().position(|p| p == owner).unwrap();
            owned[idx] += 1;
        }
        for (i, count) in owned.iter().enumerate() {
            assert!(
                (total / 6..=total / 2).contains(count),
                "peer {i} owns {count}/{total}: virtual points failed to spread"
            );
        }
    }

    #[test]
    fn single_node_owns_everything_and_replicas_clamp() {
        let one = HashRing::new(&peers(1), 2);
        assert_eq!(one.replicas(), 1);
        for n in 0..50 {
            assert_eq!(one.owner(&key(n)), one.peers()[0]);
        }
        let zero_r = HashRing::new(&peers(3), 0);
        assert_eq!(zero_r.replicas(), 1, "replicas clamp up to 1");
    }

    #[test]
    fn adding_a_peer_moves_only_a_fraction_of_keys() {
        let small = HashRing::new(&peers(3), 1);
        let big = HashRing::new(&peers(4), 1);
        let total = 2_000;
        let moved = (0..total)
            .filter(|&n| small.owner(&key(n)) != big.owner(&key(n)))
            .count() as u64;
        // Consistent hashing moves ~1/4 of keys when going 3 → 4 nodes;
        // modulo hashing would move ~3/4. Allow generous slack.
        assert!(
            moved < total / 2,
            "{moved}/{total} keys moved — not consistent hashing"
        );
        assert!(moved > 0, "a new peer must take over some keys");
    }
}
