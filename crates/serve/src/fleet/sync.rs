//! Snapshot anti-entropy: digest exchange and self-checking op-batches.
//!
//! Two nodes compare caches without shipping them: each summarises its
//! entries into [`SYNC_SHARDS`] fixed digests (entry count + fnv64
//! checksum over the sorted keys and their per-entry integrity digests)
//! and only shards whose digests differ are transferred, as op-batches
//! of self-checking entries in the snapshot's node-independent JSONL
//! encoding ([`crate::persist`]).
//!
//! The shard space is a property of the *protocol*, not of any node:
//! a key's sync shard is derived from its content address alone, so two
//! daemons configured with different local cache shard counts still
//! compute comparable digests.
//!
//! Convergence argument: values are bit-identical by construction (the
//! cache is content-addressed and the scheduler deterministic), so the
//! only merge operation needed is *set union*, implemented as
//! insert-if-absent. Union is idempotent and commutative, which makes
//! every sync action safe to repeat, reorder, or crash out of halfway:
//! a pull round can only add entries the peer has, and two nodes that
//! alternate pull rounds converge from arbitrary disjoint states in at
//! most two rounds (after round one, A ⊇ A∪B; after round two, B ⊇
//! A∪B; equal digests stop further transfers).

use std::collections::BTreeMap;
use std::sync::Arc;

use tcms_core::CacheableResult;
use tcms_ir::canon::fnv64;
use tcms_obs::json::{self, JsonValue};

use crate::cache::{CacheKey, SchedCache};
use crate::persist;

/// Number of protocol-level digest shards. Fixed: digests are only
/// comparable because every node in every configuration buckets keys
/// identically.
pub const SYNC_SHARDS: usize = 16;

/// The sync shard of a content address. Depends only on the key (and a
/// salt distinct from the ring's, so shard and placement don't alias).
#[must_use]
pub fn sync_shard(key: &CacheKey) -> usize {
    let h = fnv64(format!("shard|{}|{:016x}", key.spec, key.config).as_bytes());
    usize::try_from(h % SYNC_SHARDS as u64).expect("shard fits usize")
}

/// Digest of one sync shard: how many entries, and a checksum over the
/// sorted keys plus their per-entry integrity digests. Equal digests ⇒
/// same entry set with overwhelming probability; the op-batch entries
/// are self-checking, so even a digest collision cannot replicate a
/// corrupt value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardDigest {
    /// Entries currently cached in this shard.
    pub count: u64,
    /// fnv64 over `"{spec}|{config}|{entry_check}\n"` in key order.
    pub check: u64,
}

/// Computes all [`SYNC_SHARDS`] digests of a cache.
#[must_use]
pub fn digests(cache: &SchedCache) -> Vec<ShardDigest> {
    let mut texts = vec![String::new(); SYNC_SHARDS];
    let mut counts = [0u64; SYNC_SHARDS];
    // entries() is sorted by key, so per-shard accumulation order is
    // deterministic and node-independent.
    for (key, value) in cache.entries() {
        let s = sync_shard(&key);
        texts[s].push_str(&format!(
            "{}|{:016x}|{:016x}\n",
            key.spec,
            key.config,
            persist::entry_check(&key, &value)
        ));
        counts[s] += 1;
    }
    (0..SYNC_SHARDS)
        .map(|s| ShardDigest {
            count: counts[s],
            check: fnv64(texts[s].as_bytes()),
        })
        .collect()
}

/// The shard indices where two digest vectors disagree.
#[must_use]
pub fn diverging_shards(mine: &[ShardDigest], theirs: &[ShardDigest]) -> Vec<usize> {
    (0..SYNC_SHARDS.min(mine.len()).min(theirs.len()))
        .filter(|&s| mine[s] != theirs[s])
        .collect()
}

/// All cached entries of one sync shard, in key order.
#[must_use]
pub fn shard_entries(cache: &SchedCache, shard: usize) -> Vec<(CacheKey, Arc<CacheableResult>)> {
    cache
        .entries()
        .into_iter()
        .filter(|(key, _)| sync_shard(key) == shard)
        .collect()
}

/// Applies an op-batch: insert-if-absent for every entry (idempotent
/// and commutative — see the module docs). Returns how many entries
/// were actually new.
#[must_use]
pub fn apply_entries(cache: &SchedCache, entries: Vec<(CacheKey, CacheableResult)>) -> usize {
    entries
        .into_iter()
        .filter(|(key, value)| cache.insert_if_absent(*key, Arc::new(value.clone())))
        .count()
}

/// What one anti-entropy round against one peer did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SyncOutcome {
    /// Shards whose digests diverged and were pulled.
    pub shards_pulled: usize,
    /// Entries the pulls actually added locally.
    pub applied: usize,
}

/// One pull-based anti-entropy round: compare local digests against a
/// peer's, pull every diverging shard through `pull`, and apply what
/// comes back. Transport-agnostic so the same round drives the TCP sync
/// loop and the in-memory property tests.
///
/// # Errors
///
/// Propagates the first `pull` transport error; entries applied before
/// the failure stay applied (applying is idempotent, so the retry that
/// follows a failure is safe).
pub fn pull_round<E>(
    local: &SchedCache,
    remote_digests: &[ShardDigest],
    mut pull: impl FnMut(usize) -> Result<Vec<(CacheKey, CacheableResult)>, E>,
) -> Result<SyncOutcome, E> {
    let mine = digests(local);
    let mut outcome = SyncOutcome::default();
    for s in diverging_shards(&mine, remote_digests) {
        let entries = pull(s)?;
        outcome.shards_pulled += 1;
        outcome.applied += apply_entries(local, entries);
    }
    Ok(outcome)
}

// ---------------------------------------------------------------------
// Wire encoding: request lines a syncing node sends, response bodies a
// node answers with, and the parsers for both directions.
// ---------------------------------------------------------------------

fn id_field(id: &str) -> String {
    let mut out = String::new();
    tcms_obs::json::write_escaped(&mut out, id);
    format!("\"id\":{out}")
}

/// The `sync_digest` request line (without trailing newline).
#[must_use]
pub fn digest_request_line(id: &str) -> String {
    format!("{{{},\"action\":\"sync_digest\"}}", id_field(id))
}

/// The `sync_pull` request line for one whole shard.
#[must_use]
pub fn pull_shard_request_line(id: &str, shard: usize) -> String {
    format!(
        "{{{},\"action\":\"sync_pull\",\"shard\":{shard}}}",
        id_field(id)
    )
}

/// The `sync_pull` request line for one exact content address.
#[must_use]
pub fn fetch_request_line(id: &str, key: &CacheKey) -> String {
    format!(
        "{{{},\"action\":\"sync_pull\",\"spec\":\"{}\",\"config\":\"{:016x}\"}}",
        id_field(id),
        key.spec,
        key.config
    )
}

/// The `sync_push` request line carrying an op-batch of entries.
#[must_use]
pub fn push_request_line(id: &str, entries: &[(CacheKey, Arc<CacheableResult>)]) -> String {
    let items: Vec<String> = entries
        .iter()
        .map(|(key, value)| persist::entry_line(key, value))
        .collect();
    format!(
        "{{{},\"action\":\"sync_push\",\"entries\":[{}]}}",
        id_field(id),
        items.join(",")
    )
}

/// The success body answering `sync_digest`.
#[must_use]
pub fn digest_body(digests: &[ShardDigest]) -> BTreeMap<String, JsonValue> {
    let shards: Vec<JsonValue> = digests
        .iter()
        .map(|d| {
            let mut m = BTreeMap::new();
            #[allow(clippy::cast_precision_loss)]
            m.insert("count".into(), JsonValue::Number(d.count as f64));
            m.insert(
                "check".into(),
                JsonValue::String(format!("{:016x}", d.check)),
            );
            JsonValue::Object(m)
        })
        .collect();
    let total: u64 = digests.iter().map(|d| d.count).sum();
    let mut map = BTreeMap::new();
    map.insert("shards".into(), JsonValue::Array(shards));
    #[allow(clippy::cast_precision_loss)]
    map.insert("entries".into(), JsonValue::Number(total as f64));
    map
}

/// The success body answering `sync_pull`.
#[must_use]
pub fn entries_body(entries: &[(CacheKey, Arc<CacheableResult>)]) -> BTreeMap<String, JsonValue> {
    let items: Vec<JsonValue> = entries
        .iter()
        .map(|(key, value)| {
            json::parse(&persist::entry_line(key, value)).expect("entry lines are valid JSON")
        })
        .collect();
    let mut map = BTreeMap::new();
    #[allow(clippy::cast_precision_loss)]
    map.insert("count".into(), JsonValue::Number(items.len() as f64));
    map.insert("entries".into(), JsonValue::Array(items));
    map
}

/// Parses a `sync_digest` response body back into digests. `None` when
/// the body is not a digest response.
#[must_use]
pub fn parse_digests(body: &JsonValue) -> Option<Vec<ShardDigest>> {
    let shards = body.get("shards")?.as_array()?;
    if shards.len() != SYNC_SHARDS {
        return None;
    }
    shards
        .iter()
        .map(|s| {
            let count = s.get("count")?.as_f64()?;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let count = if count >= 0.0 && count.fract() == 0.0 {
                count as u64
            } else {
                return None;
            };
            let check = u64::from_str_radix(s.get("check")?.as_str()?, 16).ok()?;
            Some(ShardDigest { count, check })
        })
        .collect()
}

/// Parses a `sync_pull` response body into `(entries, rejected)`:
/// entries are re-verified against their own integrity digest, so a
/// value corrupted in flight is dropped here, not cached. `None` when
/// the body is not an entries response.
#[must_use]
pub fn parse_entries(body: &JsonValue) -> Option<(Vec<(CacheKey, CacheableResult)>, usize)> {
    let items = body.get("entries")?.as_array()?;
    let mut entries = Vec::with_capacity(items.len());
    let mut rejected = 0usize;
    for item in items {
        match persist::parse_entry_value(item) {
            Some(entry) => entries.push(entry),
            None => rejected += 1,
        }
    }
    Some((entries, rejected))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcms_ir::SpecHash;

    fn entry(n: u64) -> (CacheKey, CacheableResult) {
        (
            CacheKey {
                spec: SpecHash::of_text(&format!("design {n}")),
                config: n.wrapping_mul(0x2545_f491),
            },
            CacheableResult {
                starts: vec![u32::try_from(n % 97).unwrap(), 3, 7],
                iterations: n + 1,
                note: n.is_multiple_of(3).then(|| format!("note {n}")),
            },
        )
    }

    fn filled(range: std::ops::Range<u64>) -> SchedCache {
        let cache = SchedCache::new(4096, 4);
        for n in range {
            let (k, v) = entry(n);
            cache.insert(k, Arc::new(v));
        }
        cache
    }

    #[test]
    fn sync_shards_are_key_derived_and_stable() {
        for n in 0..100 {
            let (k, _) = entry(n);
            let s = sync_shard(&k);
            assert!(s < SYNC_SHARDS);
            assert_eq!(s, sync_shard(&k), "same key, same shard, always");
        }
    }

    #[test]
    fn digests_ignore_local_shard_layout() {
        // Two caches with different *local* shard counts but the same
        // content must produce identical sync digests.
        let a = SchedCache::new(4096, 1);
        let b = SchedCache::new(4096, 8);
        for n in 0..60 {
            let (k, v) = entry(n);
            a.insert(k, Arc::new(v.clone()));
            b.insert(k, Arc::new(v));
        }
        assert_eq!(digests(&a), digests(&b));
        assert!(diverging_shards(&digests(&a), &digests(&b)).is_empty());
    }

    #[test]
    fn digests_detect_any_single_divergence() {
        let a = filled(0..40);
        let b = filled(0..40);
        assert!(diverging_shards(&digests(&a), &digests(&b)).is_empty());
        let (k, v) = entry(999);
        b.insert(k, Arc::new(v));
        let diverging = diverging_shards(&digests(&a), &digests(&b));
        assert_eq!(diverging, vec![sync_shard(&k)]);
    }

    #[test]
    fn two_pull_rounds_converge_disjoint_caches() {
        let a = filled(0..25);
        let b = filled(25..50);
        // Round 1: A pulls B's divergent shards.
        let out = pull_round(&a, &digests(&b), |s| {
            Ok::<_, ()>(
                shard_entries(&b, s)
                    .into_iter()
                    .map(|(k, v)| (k, (*v).clone()))
                    .collect(),
            )
        })
        .unwrap();
        assert_eq!(out.applied, 25, "A gained exactly B's entries");
        assert_eq!(a.len(), 50);
        // Round 2: B pulls from A.
        let out = pull_round(&b, &digests(&a), |s| {
            Ok::<_, ()>(
                shard_entries(&a, s)
                    .into_iter()
                    .map(|(k, v)| (k, (*v).clone()))
                    .collect(),
            )
        })
        .unwrap();
        assert_eq!(out.applied, 25, "B gained exactly A's entries");
        assert_eq!(digests(&a), digests(&b), "converged");
        // Round 3 is a no-op: digests agree, nothing transfers.
        let out = pull_round(&a, &digests(&b), |_| {
            panic!("no shard should be pulled once digests agree");
            #[allow(unreachable_code)]
            Ok::<Vec<(CacheKey, CacheableResult)>, ()>(Vec::new())
        })
        .unwrap();
        assert_eq!(out, SyncOutcome::default());
    }

    #[test]
    fn apply_is_idempotent() {
        let cache = filled(0..10);
        let batch: Vec<_> = (5..15).map(entry).collect();
        assert_eq!(apply_entries(&cache, batch.clone()), 5);
        assert_eq!(apply_entries(&cache, batch), 0, "second apply adds nothing");
        assert_eq!(cache.len(), 15);
    }

    #[test]
    fn wire_round_trips_preserve_entries_and_digests() {
        let cache = filled(0..30);
        // Digest body → parse.
        let d = digests(&cache);
        let body = JsonValue::Object(digest_body(&d));
        assert_eq!(parse_digests(&body).unwrap(), d);
        // Entries body → parse (integrity re-verified).
        let shard0 = shard_entries(&cache, 0);
        let body = JsonValue::Object(entries_body(&shard0));
        let (parsed, rejected) = parse_entries(&body).unwrap();
        assert_eq!(rejected, 0);
        assert_eq!(parsed.len(), shard0.len());
        for ((pk, pv), (k, v)) in parsed.iter().zip(&shard0) {
            assert_eq!(pk, k);
            assert_eq!(pv, &**v);
        }
        // Push request line → daemon-side parse (via protocol).
        let line = push_request_line("sync-1", &shard0);
        let req = crate::protocol::parse_request(&line).unwrap();
        match req.action {
            crate::protocol::Action::SyncPush { entries, rejected } => {
                assert_eq!(rejected, 0);
                assert_eq!(entries.len(), shard0.len());
            }
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn corrupted_wire_entries_are_rejected_not_applied() {
        let cache = filled(0..5);
        let line = push_request_line("sync-2", &shard_entries(&cache, sync_shard(&entry(0).0)));
        let tampered = line.replacen("\"iterations\":1", "\"iterations\":9", 1);
        if tampered != line {
            let req = crate::protocol::parse_request(&tampered).unwrap();
            match req.action {
                crate::protocol::Action::SyncPush { rejected, .. } => {
                    assert!(rejected > 0, "tampered entry must fail its check");
                }
                other => panic!("unexpected action {other:?}"),
            }
        }
    }

    #[test]
    fn request_lines_parse_as_protocol_actions() {
        use crate::protocol::{parse_request, Action};
        assert_eq!(
            parse_request(&digest_request_line("d1")).unwrap().action,
            Action::SyncDigest
        );
        match parse_request(&pull_shard_request_line("p1", 7))
            .unwrap()
            .action
        {
            Action::SyncPull { shard, key } => {
                assert_eq!(shard, Some(7));
                assert_eq!(key, None);
            }
            other => panic!("unexpected action {other:?}"),
        }
        let (k, _) = entry(3);
        match parse_request(&fetch_request_line("f1", &k)).unwrap().action {
            Action::SyncPull { shard, key } => {
                assert_eq!(shard, None);
                assert_eq!(key, Some(k));
            }
            other => panic!("unexpected action {other:?}"),
        }
    }
}
