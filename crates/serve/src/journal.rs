//! The persistent workload journal (`--journal-dir`): an append-only
//! JSONL capture of every work request the daemon executed.
//!
//! # Why a journal
//!
//! The force-directed search and the sharded cache are only tunable
//! against *real* traffic. The journal records, per request: the raw
//! request line (so replay needs no reconstruction), the canonical
//! [`CacheKey`] (spec hash + config fingerprint), the cache
//! [`Disposition`], the outcome class and wire code, and queue/exec
//! timings — enough to re-drive the exact workload through a fresh
//! daemon (`repro_replay`) or feed an offline tuner.
//!
//! # Off the hot path
//!
//! Workers never touch the file. They hand a [`JournalEntry`] to a
//! bounded [`std::sync::mpsc::sync_channel`] with a **non-blocking**
//! `try_send`; a dedicated writer thread drains the channel, assigns the
//! **monotone sequence number** (single-writer ⇒ strictly increasing
//! on-disk order, no cross-thread reordering) and appends one line per
//! record. When the channel is full the entry is *dropped, not queued*:
//! an [`AtomicU64`] counts the drops and every subsequent record carries
//! the cumulative count, so a replay knows exactly how many requests are
//! missing and a worker is never stalled by a slow disk.
//!
//! # Crash tolerance
//!
//! The file starts with a magic header line (like
//! [`persist`](crate::persist) snapshots). A crash mid-append leaves a
//! torn final line; [`load_journal`] skips it (and any corrupt line)
//! with a count rather than an error, and [`JournalWriter::open`]
//! truncates a torn tail before appending so recovery never glues new
//! records onto half-written ones. Sequence numbers continue from the
//! last valid record. A live file whose header never made it to disk
//! (empty, or an unparseable first line) is **quarantined** — renamed to
//! `journal.jsonl.corrupt` — and a fresh journal is started; a *foreign*
//! file (valid header, wrong magic) is still refused, never renamed.
//! The `trace_check --journal` validator in `tcms-obs` enforces the same
//! schema strictly (torn tails allowed at the tail only); a test keeps
//! the two in sync.
//!
//! # Rotation
//!
//! With [`JournalWriter::open_with`] and a nonzero `rotate_bytes`, a
//! live file that grows past the threshold is **sealed** — a checksum
//! trailer line covering every preceding byte is appended and fsynced —
//! then atomically renamed to `journal.<n>.jsonl` (followed by a
//! directory fsync) and a fresh live file is started. Sequence numbers
//! run across segments, so [`load_journal_dir`] reassembles the full
//! history in order. A crash between sealing and renaming leaves a
//! sealed live file; the next open completes the rotation.

use std::fs::{self, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

use tcms_ir::canon::fnv64;
use tcms_ir::SpecHash;
use tcms_obs::json::{self, JsonValue};

use crate::cache::{CacheKey, Disposition};
use crate::persist::sync_dir;

/// Magic header value of a journal file. Must match
/// [`tcms_obs::JOURNAL_MAGIC`] — the obs validator lints what this
/// writer emits.
pub const JOURNAL_MAGIC: &str = "tcms-serve-journal";
/// Schema version written to the header.
pub const JOURNAL_VERSION: f64 = 1.0;
/// File name inside the `--journal-dir` directory.
pub const JOURNAL_FILE: &str = "journal.jsonl";
/// Where a corrupt live journal is moved when the opener quarantines it.
pub const JOURNAL_CORRUPT: &str = "journal.jsonl.corrupt";
/// Default bounded-channel capacity between workers and the writer.
pub const DEFAULT_JOURNAL_BUFFER: usize = 1024;

/// What a worker hands to the writer thread: everything about one
/// executed (or shed) request except the fields the writer itself
/// assigns (`seq`, `ts_us`, cumulative `dropped`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// The work action: `"schedule"` or `"simulate"`.
    pub action: &'static str,
    /// Content-address of the result, when the pipeline computed one.
    pub key: Option<CacheKey>,
    /// Cache disposition, `None` when the request failed before lookup.
    pub disposition: Option<Disposition>,
    /// `"ok"` or the [`ServeError`](crate::ServeError) class.
    pub outcome: &'static str,
    /// 0 on success, the stable wire code otherwise.
    pub code: u16,
    /// Time spent queued, in microseconds.
    pub queue_us: u64,
    /// Time spent executing the pipeline, in microseconds.
    pub exec_us: u64,
    /// Total time from arrival to response, in microseconds.
    pub total_us: u64,
    /// The raw request line, verbatim — what a replay re-sends.
    pub request: String,
}

/// One record loaded back from a journal file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// Writer-assigned sequence number, strictly increasing in file
    /// order.
    pub seq: u64,
    /// Microseconds since the writer (re)opened the journal.
    pub ts_us: u64,
    /// The work action name.
    pub action: String,
    /// Canonical spec hash, when captured.
    pub spec: Option<SpecHash>,
    /// Config fingerprint, when captured.
    pub config: Option<u64>,
    /// Cache disposition string (`hit`/`miss`/`coalesced`).
    pub disposition: Option<String>,
    /// `"ok"` or the error class.
    pub outcome: String,
    /// Wire code (0 on success).
    pub code: u16,
    /// Queue wait in microseconds.
    pub queue_us: u64,
    /// Execution time in microseconds.
    pub exec_us: u64,
    /// Arrival-to-response time in microseconds.
    pub total_us: u64,
    /// Cumulative dropped-entry count at write time.
    pub dropped: u64,
    /// The raw request line.
    pub request: String,
}

/// Counters of a live [`JournalWriter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JournalStats {
    /// Entries accepted onto the channel (≥ records on disk until the
    /// writer catches up).
    pub recorded: u64,
    /// Entries dropped because the channel was full.
    pub dropped: u64,
    /// Completed size-based rotations since open.
    pub rotated: u64,
}

/// Outcome of loading a journal file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JournalLoadReport {
    /// Valid records loaded.
    pub loaded: usize,
    /// Invalid lines skipped (each one a warning, not an error).
    pub skipped: usize,
    /// Whether the final line was torn (partial append before a crash).
    pub torn_tail: bool,
    /// Whether the file ends with a valid checksum trailer — a rotated
    /// (or rotation-pending) segment rather than a live journal.
    pub sealed: bool,
}

enum Msg {
    Record(JournalEntry),
    Shutdown,
}

/// The off-hot-path journal writer: bounded channel in, JSONL out.
pub struct JournalWriter {
    tx: SyncSender<Msg>,
    recorded: Arc<AtomicU64>,
    dropped: Arc<AtomicU64>,
    rotated: Arc<AtomicU64>,
    handle: Mutex<Option<JoinHandle<()>>>,
    path: PathBuf,
}

impl std::fmt::Debug for JournalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JournalWriter")
            .field("path", &self.path)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Path of the journal file inside a journal directory.
#[must_use]
pub fn journal_path(dir: &Path) -> PathBuf {
    dir.join(JOURNAL_FILE)
}

impl JournalWriter {
    /// Opens (or creates) the journal in `dir` and spawns the writer
    /// thread. An existing journal is continued: sequence numbers resume
    /// after the last valid record and a torn tail is truncated away
    /// first. `buffer` bounds the worker→writer channel (clamped to at
    /// least 1).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures, and refuses (with `InvalidData`) to
    /// append to a file whose header is not a journal header — the
    /// daemon must not grow records onto a foreign file.
    pub fn open(dir: &Path, buffer: usize) -> io::Result<JournalWriter> {
        Self::open_with(dir, buffer, 0)
    }

    /// Like [`JournalWriter::open`], with size-based rotation: once the
    /// live file reaches `rotate_bytes` (0 disables rotation), it is
    /// sealed with a checksum trailer, fsynced, atomically renamed to
    /// `journal.<n>.jsonl`, and a fresh live file is started. Sequence
    /// numbers continue across segments and restarts.
    ///
    /// # Errors
    ///
    /// Same as [`JournalWriter::open`]. A live file that is empty or has
    /// an unparseable header is quarantined to `journal.jsonl.corrupt`
    /// (not an error); a foreign header is refused.
    pub fn open_with(dir: &Path, buffer: usize, rotate_bytes: u64) -> io::Result<JournalWriter> {
        fs::create_dir_all(dir)?;
        let path = journal_path(dir);
        let mut next_seq = 0;
        let mut valid_len = 0u64;
        let mut fresh = !path.exists();
        if !fresh {
            // Non-UTF-8 bytes are as much "our own torn creation" as a
            // garbage first line — read raw and fall through to the
            // quarantine path instead of erroring.
            let content = String::from_utf8(fs::read(&path)?).unwrap_or_default();
            let header_parses = content
                .lines()
                .next()
                .is_some_and(|l| json::parse(l).is_ok());
            if !header_parses {
                // An empty file or garbage first line is our own torn
                // creation: quarantine it (the bytes stay inspectable)
                // and start fresh. A *foreign* file — a valid JSON
                // header with the wrong magic — is refused below, never
                // renamed.
                fs::rename(&path, dir.join(JOURNAL_CORRUPT))?;
                sync_dir(dir)?;
                fresh = true;
            } else {
                let scan = scan_journal(&content).map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("{}: {e}", path.display()),
                    )
                })?;
                // A header-only live file (fresh after a rotation)
                // carries no seqs of its own — continue from the
                // newest rotated segment instead of restarting at 0.
                next_seq = scan
                    .records
                    .last()
                    .map_or_else(|| next_seq_after_rotated(dir), |r| r.seq + 1);
                if scan.report.sealed {
                    // A crash between sealing and renaming left a sealed
                    // live file: complete the rotation now.
                    fs::rename(&path, rotated_path(dir, next_rotated_index(dir)))?;
                    sync_dir(dir)?;
                    fresh = true;
                } else {
                    valid_len = scan.valid_len;
                }
            }
        }
        if fresh {
            if next_seq == 0 {
                // Continue the sequence across rotation + restart: the
                // newest rotated segment knows the last assigned seq.
                next_seq = next_seq_after_rotated(dir);
            }
            let header = journal_header();
            valid_len = header.len() as u64;
            fs::write(&path, header.as_bytes())?;
        }
        let file = OpenOptions::new().append(true).open(&path)?;
        // Drop a torn tail (and any trailing garbage) so recovery never
        // appends onto a half-written line.
        file.set_len(valid_len)?;

        let (tx, rx) = sync_channel(buffer.max(1));
        let recorded = Arc::new(AtomicU64::new(0));
        let dropped = Arc::new(AtomicU64::new(0));
        let rotated = Arc::new(AtomicU64::new(0));
        let ctx = WriterCtx {
            dir: dir.to_path_buf(),
            path: path.clone(),
            rotate_bytes,
            dropped: Arc::clone(&dropped),
            rotated: Arc::clone(&rotated),
        };
        let handle = std::thread::Builder::new()
            .name("tcms-serve-journal".into())
            .spawn(move || writer_loop(&rx, file, next_seq, valid_len, &ctx))
            .map_err(|e| io::Error::other(format!("spawn journal writer: {e}")))?;
        Ok(JournalWriter {
            tx,
            recorded,
            dropped,
            rotated,
            handle: Mutex::new(Some(handle)),
            path,
        })
    }

    /// Hands one entry to the writer thread **without blocking**: when
    /// the channel is full (or the writer is gone) the entry is dropped
    /// and counted, never queued — a slow disk costs records, not
    /// request latency.
    pub fn record(&self, entry: JournalEntry) {
        match self.tx.try_send(Msg::Record(entry)) {
            Ok(()) => {
                self.recorded.fetch_add(1, Ordering::Relaxed);
            }
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Drains the channel, flushes the file and joins the writer thread.
    /// Idempotent; entries recorded after close are counted as dropped.
    pub fn close(&self) {
        let handle = {
            let mut guard = self.handle.lock().unwrap_or_else(PoisonError::into_inner);
            guard.take()
        };
        if let Some(handle) = handle {
            // A blocking send is fine here: the writer is draining, so
            // the channel empties; everything queued before the sentinel
            // reaches the disk.
            let _ = self.tx.send(Msg::Shutdown);
            let _ = handle.join();
        }
    }

    /// Point-in-time accepted/dropped counters.
    #[must_use]
    pub fn stats(&self) -> JournalStats {
        JournalStats {
            recorded: self.recorded.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            rotated: self.rotated.load(Ordering::Relaxed),
        }
    }

    /// The journal file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for JournalWriter {
    fn drop(&mut self) {
        self.close();
    }
}

struct WriterCtx {
    dir: PathBuf,
    path: PathBuf,
    rotate_bytes: u64,
    dropped: Arc<AtomicU64>,
    rotated: Arc<AtomicU64>,
}

fn journal_header() -> String {
    format!("{{\"magic\":\"{JOURNAL_MAGIC}\",\"version\":{JOURNAL_VERSION}}}\n")
}

fn writer_loop(
    rx: &Receiver<Msg>,
    file: fs::File,
    mut next_seq: u64,
    mut bytes: u64,
    ctx: &WriterCtx,
) {
    let start = Instant::now();
    let mut out = io::BufWriter::new(file);
    while let Ok(Msg::Record(entry)) = rx.recv() {
        let ts_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        let line = record_line(&entry, next_seq, ts_us, ctx.dropped.load(Ordering::Relaxed));
        next_seq += 1;
        // Line + newline in one write, then flush: a crash tears at most
        // the final line, which loaders skip.
        let _ = out.write_all(line.as_bytes());
        let _ = out.write_all(b"\n");
        let _ = out.flush();
        bytes += line.len() as u64 + 1;
        if ctx.rotate_bytes > 0 && bytes >= ctx.rotate_bytes {
            // On rotation failure, keep appending to the current file —
            // losing rotation is better than losing records.
            if let Ok(fresh_len) = rotate_live(&mut out, ctx) {
                bytes = fresh_len;
                ctx.rotated.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    let _ = out.flush();
}

/// Seals the live file (trailer + fsync), renames it to the next
/// `journal.<n>.jsonl`, fsyncs the directory and starts a fresh live
/// file, swapping it into `out`. Returns the fresh file's length.
fn rotate_live(out: &mut io::BufWriter<fs::File>, ctx: &WriterCtx) -> io::Result<u64> {
    out.flush()?;
    out.get_ref().sync_all()?;
    let content = fs::read_to_string(&ctx.path)?;
    let trailer = seal_line(&content);
    out.write_all(trailer.as_bytes())?;
    out.write_all(b"\n")?;
    out.flush()?;
    // The seal must be durable before the rename publishes the segment
    // under its rotated name.
    out.get_ref().sync_all()?;
    fs::rename(
        &ctx.path,
        rotated_path(&ctx.dir, next_rotated_index(&ctx.dir)),
    )?;
    sync_dir(&ctx.dir)?;
    let header = journal_header();
    fs::write(&ctx.path, header.as_bytes())?;
    *out = io::BufWriter::new(OpenOptions::new().append(true).open(&ctx.path)?);
    Ok(header.len() as u64)
}

fn seal_line(content: &str) -> String {
    let records = content.lines().count().saturating_sub(1);
    format!(
        "{{\"sealed\":true,\"records\":{records},\"check\":\"{:016x}\"}}",
        fnv64(content.as_bytes())
    )
}

/// Whether `line` is a valid seal trailer for the `prefix` bytes before
/// it, covering exactly the `loaded` records scanned so far.
fn seal_matches(line: &str, prefix: &str, loaded: usize) -> bool {
    let Ok(v) = json::parse(line) else {
        return false;
    };
    if v.get("sealed") != Some(&JsonValue::Bool(true)) {
        return false;
    }
    #[allow(clippy::cast_precision_loss)]
    let records_ok = v.get("records").and_then(JsonValue::as_f64) == Some(loaded as f64);
    let check_ok = v
        .get("check")
        .and_then(JsonValue::as_str)
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        == Some(fnv64(prefix.as_bytes()));
    records_ok && check_ok
}

/// Path of rotated journal segment `n` (`journal.<n>.jsonl`).
#[must_use]
pub fn rotated_path(dir: &Path, n: u64) -> PathBuf {
    dir.join(format!("journal.{n}.jsonl"))
}

fn rotated_indices(dir: &Path) -> Vec<u64> {
    let mut out = Vec::new();
    if let Ok(rd) = fs::read_dir(dir) {
        for e in rd.flatten() {
            let name = e.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(mid) = name
                .strip_prefix("journal.")
                .and_then(|s| s.strip_suffix(".jsonl"))
            {
                if let Ok(n) = mid.parse::<u64>() {
                    out.push(n);
                }
            }
        }
    }
    out.sort_unstable();
    out
}

fn next_rotated_index(dir: &Path) -> u64 {
    rotated_indices(dir).last().map_or(1, |n| n + 1)
}

/// The sequence number a fresh live file should start at, continuing
/// after the newest readable rotated segment (0 when there is none).
fn next_seq_after_rotated(dir: &Path) -> u64 {
    for n in rotated_indices(dir).into_iter().rev() {
        if let Ok((records, _)) = load_journal(&rotated_path(dir, n)) {
            if let Some(r) = records.last() {
                return r.seq + 1;
            }
        }
    }
    0
}

fn record_line(entry: &JournalEntry, seq: u64, ts_us: u64, dropped: u64) -> String {
    #[allow(clippy::cast_precision_loss)]
    let num = |n: u64| JsonValue::Number(n as f64);
    let mut map = std::collections::BTreeMap::new();
    map.insert("seq".to_string(), num(seq));
    map.insert("ts_us".to_string(), num(ts_us));
    map.insert(
        "action".to_string(),
        JsonValue::String(entry.action.to_owned()),
    );
    map.insert(
        "spec".to_string(),
        match entry.key {
            Some(k) => JsonValue::String(k.spec.to_string()),
            None => JsonValue::Null,
        },
    );
    map.insert(
        "config".to_string(),
        match entry.key {
            // Hex string: a u64 fingerprint does not survive f64.
            Some(k) => JsonValue::String(format!("{:016x}", k.config)),
            None => JsonValue::Null,
        },
    );
    map.insert(
        "disposition".to_string(),
        match entry.disposition {
            Some(d) => JsonValue::String(d.as_str().to_owned()),
            None => JsonValue::Null,
        },
    );
    map.insert(
        "outcome".to_string(),
        JsonValue::String(entry.outcome.to_owned()),
    );
    map.insert("code".to_string(), num(u64::from(entry.code)));
    map.insert("queue_us".to_string(), num(entry.queue_us));
    map.insert("exec_us".to_string(), num(entry.exec_us));
    map.insert("total_us".to_string(), num(entry.total_us));
    map.insert("dropped".to_string(), num(dropped));
    map.insert(
        "request".to_string(),
        JsonValue::String(entry.request.clone()),
    );
    json::to_string(&JsonValue::Object(map))
}

fn to_u64(v: Option<&JsonValue>) -> Result<u64, String> {
    let n = v
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| "missing numeric field".to_string())?;
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    if n >= 0.0 && n.fract() == 0.0 {
        Ok(n as u64)
    } else {
        Err(format!("non-integer numeric field {n}"))
    }
}

fn opt_str(v: Option<&JsonValue>) -> Result<Option<String>, String> {
    match v {
        None | Some(JsonValue::Null) => Ok(None),
        Some(JsonValue::String(s)) => Ok(Some(s.clone())),
        Some(_) => Err("field must be a string or null".into()),
    }
}

fn parse_record(line: &str) -> Result<JournalRecord, String> {
    let v = json::parse(line)?;
    let req = |key: &str| {
        v.get(key)
            .and_then(JsonValue::as_str)
            .map(str::to_owned)
            .ok_or_else(|| format!("missing string `{key}`"))
    };
    let num = |key: &str| to_u64(v.get(key)).map_err(|e| format!("`{key}`: {e}"));
    let spec = match opt_str(v.get("spec"))? {
        Some(s) => Some(SpecHash::parse(&s)?),
        None => None,
    };
    let config = match opt_str(v.get("config"))? {
        Some(s) => Some(u64::from_str_radix(&s, 16).map_err(|e| format!("`config`: {e}"))?),
        None => None,
    };
    Ok(JournalRecord {
        seq: num("seq")?,
        ts_us: num("ts_us")?,
        action: req("action")?,
        spec,
        config,
        disposition: opt_str(v.get("disposition"))?,
        outcome: req("outcome")?,
        code: u16::try_from(num("code")?).map_err(|_| "`code` out of range".to_string())?,
        queue_us: num("queue_us")?,
        exec_us: num("exec_us")?,
        total_us: num("total_us")?,
        dropped: num("dropped")?,
        request: req("request")?,
    })
}

struct Scan {
    records: Vec<JournalRecord>,
    report: JournalLoadReport,
    /// Byte length of the valid prefix (header + every valid line,
    /// including the trailing newline) — what recovery truncates to.
    valid_len: u64,
}

/// Scans journal content. The header must be valid (a foreign file is an
/// error, not a skip); record lines are skipped when invalid, with the
/// final line classified as a torn tail.
fn scan_journal(content: &str) -> Result<Scan, String> {
    let mut offset = 0usize;
    let mut lines = Vec::new();
    // Manual split tracking byte offsets: `str::lines` hides whether the
    // final line was newline-terminated (a torn append is not).
    while offset < content.len() {
        let rest = &content[offset..];
        let (line, advance) = match rest.find('\n') {
            Some(i) => (&rest[..i], i + 1),
            None => (rest, rest.len()),
        };
        lines.push((line, offset, offset + advance));
        offset += advance;
    }
    let Some(&(header, _, header_end)) = lines.first() else {
        return Err("empty journal: missing header line".into());
    };
    let h = json::parse(header).map_err(|e| format!("bad header: {e}"))?;
    if h.get("magic").and_then(JsonValue::as_str) != Some(JOURNAL_MAGIC) {
        return Err(format!("header magic is not {JOURNAL_MAGIC:?}"));
    }
    if h.get("version").and_then(JsonValue::as_f64) != Some(JOURNAL_VERSION) {
        return Err("unsupported journal version".into());
    }
    let mut scan = Scan {
        records: Vec::new(),
        report: JournalLoadReport::default(),
        valid_len: header_end as u64,
    };
    let mut prev_seq = None;
    for (i, &(line, start, end)) in lines.iter().enumerate().skip(1) {
        let terminated = content.as_bytes().get(end - 1) == Some(&b'\n');
        let parsed = if terminated || !line.is_empty() {
            parse_record(line)
        } else {
            Err("empty line".into())
        };
        match parsed {
            Ok(rec) if terminated && prev_seq.is_none_or(|p| rec.seq > p) => {
                prev_seq = Some(rec.seq);
                scan.records.push(rec);
                scan.report.loaded += 1;
                scan.valid_len = end as u64;
            }
            // Invalid, unterminated or out-of-order: skip. Only the
            // final line counts as a torn tail — unless it is a valid
            // seal trailer, which marks a rotated segment.
            _ => {
                if terminated && seal_matches(line, &content[..start], scan.report.loaded) {
                    scan.report.sealed = true;
                    scan.valid_len = end as u64;
                    // Nothing after a seal is valid.
                    scan.report.skipped += lines.len() - i - 1;
                    break;
                }
                scan.report.skipped += 1;
                if i + 1 == lines.len() {
                    scan.report.torn_tail = true;
                }
            }
        }
    }
    Ok(scan)
}

/// Loads every valid record of a journal file, skipping corrupt lines
/// (reported, not fatal) and flagging a torn final line.
///
/// # Errors
///
/// Propagates I/O failures; returns `InvalidData` when the file is not a
/// journal (missing or foreign header).
pub fn load_journal(path: &Path) -> io::Result<(Vec<JournalRecord>, JournalLoadReport)> {
    let content = fs::read_to_string(path)?;
    let scan = scan_journal(&content).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: {e}", path.display()),
        )
    })?;
    Ok((scan.records, scan.report))
}

/// Loads every record across rotated segments and the live journal of a
/// `--journal-dir`, in segment order — the full workload history.
/// `loaded`/`skipped` are summed; `torn_tail` and `sealed` reflect the
/// final file read.
///
/// # Errors
///
/// Propagates I/O and format errors from any segment.
pub fn load_journal_dir(dir: &Path) -> io::Result<(Vec<JournalRecord>, JournalLoadReport)> {
    let mut paths: Vec<PathBuf> = rotated_indices(dir)
        .into_iter()
        .map(|n| rotated_path(dir, n))
        .collect();
    let live = journal_path(dir);
    if live.exists() {
        paths.push(live);
    }
    let mut records = Vec::new();
    let mut report = JournalLoadReport::default();
    for path in paths {
        let (mut r, rep) = load_journal(&path)?;
        records.append(&mut r);
        report.loaded += rep.loaded;
        report.skipped += rep.skipped;
        report.torn_tail = rep.torn_tail;
        report.sealed = rep.sealed;
    }
    Ok((records, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tcms_journal_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn entry(action: &'static str, outcome: &'static str) -> JournalEntry {
        JournalEntry {
            action,
            key: Some(CacheKey {
                spec: SpecHash::of_text(action),
                config: 0xdead_beef_0042_0007,
            }),
            disposition: Some(Disposition::Miss),
            outcome,
            code: 0,
            queue_us: 3,
            exec_us: 250,
            total_us: 253,
            request: format!("{{\"action\":\"{action}\"}}"),
        }
    }

    #[test]
    fn write_load_round_trip_preserves_order_and_keys() {
        let dir = temp_dir("rt");
        let writer = JournalWriter::open(&dir, 64).unwrap();
        for i in 0..20 {
            let mut e = entry("schedule", "ok");
            e.request = format!("{{\"id\":{i}}}");
            writer.record(e);
        }
        writer.close();
        assert_eq!(writer.stats().recorded, 20);
        assert_eq!(writer.stats().dropped, 0);

        let (records, report) = load_journal(&journal_path(&dir)).unwrap();
        assert_eq!(report.loaded, 20);
        assert_eq!(report.skipped, 0);
        assert!(!report.torn_tail);
        assert_eq!(records.len(), 20);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.seq, i as u64, "writer-assigned seq is contiguous");
            assert_eq!(r.request, format!("{{\"id\":{i}}}"));
            assert_eq!(r.config, Some(0xdead_beef_0042_0007));
            assert_eq!(r.spec, Some(SpecHash::of_text("schedule")));
            assert_eq!(r.disposition.as_deref(), Some("miss"));
            assert_eq!(r.outcome, "ok");
        }
        assert!(
            records.windows(2).all(|w| w[0].ts_us <= w[1].ts_us),
            "timestamps are monotone"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_continues_sequence_and_truncates_torn_tail() {
        let dir = temp_dir("reopen");
        let writer = JournalWriter::open(&dir, 64).unwrap();
        writer.record(entry("schedule", "ok"));
        writer.record(entry("simulate", "ok"));
        writer.close();

        // Simulate a crash mid-append: a partial line with no newline.
        let path = journal_path(&dir);
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(b"{\"seq\":2,\"ts_us\":99,\"act").unwrap();
        drop(file);
        let (records, report) = load_journal(&path).unwrap();
        assert_eq!(report.loaded, 2);
        assert_eq!(report.skipped, 1);
        assert!(report.torn_tail, "partial append is a torn tail");
        assert_eq!(records.len(), 2);

        // Recovery: the torn tail is truncated, seq resumes at 2.
        let writer = JournalWriter::open(&dir, 64).unwrap();
        writer.record(entry("schedule", "ok"));
        writer.close();
        let (records, report) = load_journal(&path).unwrap();
        assert!(!report.torn_tail);
        assert_eq!(report.skipped, 0);
        assert_eq!(
            records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![0, 1, 2],
            "sequence continues across restarts"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn full_channel_drops_with_accounting_instead_of_blocking() {
        let dir = temp_dir("drop");
        let writer = JournalWriter::open(&dir, 2).unwrap();
        // Saturate: far more entries than the channel holds, faster than
        // a flushing writer can drain. Some must drop; none may block.
        for _ in 0..5_000 {
            writer.record(entry("schedule", "ok"));
        }
        writer.close();
        let stats = writer.stats();
        assert_eq!(stats.recorded + stats.dropped, 5_000);
        let (records, report) = load_journal(&journal_path(&dir)).unwrap();
        assert_eq!(records.len() as u64, stats.recorded);
        assert!(!report.torn_tail);
        // The cumulative drop count rides along in the records.
        if stats.dropped > 0 {
            assert!(records.last().unwrap().dropped <= stats.dropped);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_file_is_refused_not_clobbered() {
        let dir = temp_dir("foreign");
        fs::create_dir_all(&dir).unwrap();
        let path = journal_path(&dir);
        fs::write(&path, "{\"magic\":\"something-else\",\"version\":1}\n").unwrap();
        let err = JournalWriter::open(&dir, 8).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(load_journal(&path).is_err());
        // The foreign file is untouched.
        assert!(fs::read_to_string(&path)
            .unwrap()
            .contains("something-else"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn error_outcomes_round_trip_without_a_key() {
        let dir = temp_dir("err");
        let writer = JournalWriter::open(&dir, 8).unwrap();
        writer.record(JournalEntry {
            action: "schedule",
            key: None,
            disposition: None,
            outcome: "malformed",
            code: 4,
            queue_us: 1,
            exec_us: 2,
            total_us: 3,
            request: "{\"action\":\"schedule\",\"design\":\"bad\"}".into(),
        });
        writer.close();
        let (records, _) = load_journal(&journal_path(&dir)).unwrap();
        assert_eq!(records.len(), 1);
        let r = &records[0];
        assert_eq!(r.spec, None);
        assert_eq!(r.config, None);
        assert_eq!(r.disposition, None);
        assert_eq!((r.outcome.as_str(), r.code), ("malformed", 4));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_seals_segments_and_load_dir_reassembles_history() {
        let dir = temp_dir("rotate");
        // Each record line is a few hundred bytes; a 600-byte threshold
        // forces a rotation every couple of records.
        let writer = JournalWriter::open_with(&dir, 64, 600).unwrap();
        for i in 0..12 {
            let mut e = entry("schedule", "ok");
            e.request = format!("{{\"id\":{i}}}");
            writer.record(e);
        }
        writer.close();
        let stats = writer.stats();
        assert!(stats.rotated >= 2, "rotations happened: {stats:?}");

        let indices = rotated_indices(&dir);
        assert_eq!(indices.len() as u64, stats.rotated);
        for &n in &indices {
            let (_, report) = load_journal(&rotated_path(&dir, n)).unwrap();
            assert!(report.sealed, "segment {n} carries a valid seal");
            assert!(!report.torn_tail);
            assert_eq!(report.skipped, 0);
        }
        let (_, live_report) = load_journal(&journal_path(&dir)).unwrap();
        assert!(!live_report.sealed, "the live file is never sealed");

        let (records, report) = load_journal_dir(&dir).unwrap();
        assert_eq!(report.loaded, 12);
        assert_eq!(
            records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            (0..12).collect::<Vec<u64>>(),
            "sequence runs unbroken across segments"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sequence_continues_after_rotation_and_restart() {
        let dir = temp_dir("rotseq");
        let writer = JournalWriter::open_with(&dir, 64, 400).unwrap();
        for _ in 0..4 {
            writer.record(entry("schedule", "ok"));
        }
        writer.close();
        let first = writer.stats();
        assert!(first.rotated >= 1);

        let writer = JournalWriter::open_with(&dir, 64, 400).unwrap();
        writer.record(entry("simulate", "ok"));
        writer.close();
        let (records, _) = load_journal_dir(&dir).unwrap();
        assert_eq!(records.len(), 5);
        assert_eq!(
            records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            (0..5).collect::<Vec<u64>>(),
            "restart does not reuse or skip sequence numbers"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sealed_live_file_completes_rotation_on_open() {
        // Simulate a crash between sealing and renaming: the live file
        // ends in a valid trailer. Opening must finish the rotation.
        let dir = temp_dir("sealcrash");
        let writer = JournalWriter::open(&dir, 8).unwrap();
        writer.record(entry("schedule", "ok"));
        writer.close();
        let path = journal_path(&dir);
        let content = fs::read_to_string(&path).unwrap();
        fs::write(&path, format!("{content}{}\n", seal_line(&content))).unwrap();

        let writer = JournalWriter::open(&dir, 8).unwrap();
        writer.record(entry("simulate", "ok"));
        writer.close();
        assert!(rotated_path(&dir, 1).exists(), "rotation was completed");
        let (records, _) = load_journal_dir(&dir).unwrap();
        assert_eq!(
            records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![0, 1]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_or_garbage_live_journal_is_quarantined_not_fatal() {
        for (tag, bytes) in [
            ("empty", "".as_bytes()),
            ("garbage", b"\x00\xffnot json".as_slice()),
        ] {
            let dir = temp_dir(&format!("quar_{tag}"));
            fs::create_dir_all(&dir).unwrap();
            fs::write(journal_path(&dir), bytes).unwrap();
            let writer = JournalWriter::open(&dir, 8).unwrap();
            writer.record(entry("schedule", "ok"));
            writer.close();
            assert!(dir.join(JOURNAL_CORRUPT).exists(), "{tag}: bytes kept");
            let (records, report) = load_journal(&journal_path(&dir)).unwrap();
            assert_eq!(records.len(), 1, "{tag}: fresh journal works");
            assert_eq!(report.skipped, 0, "{tag}");
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn emitted_journal_passes_the_obs_validator() {
        // The writer and the `trace_check --journal` validator live in
        // different crates; this is the test that keeps them in sync.
        assert_eq!(JOURNAL_MAGIC, tcms_obs::JOURNAL_MAGIC);
        assert_eq!(JOURNAL_VERSION, tcms_obs::JOURNAL_VERSION);
        let dir = temp_dir("obsval");
        let writer = JournalWriter::open(&dir, 8).unwrap();
        writer.record(entry("schedule", "ok"));
        writer.record(JournalEntry {
            disposition: Some(Disposition::Hit),
            ..entry("schedule", "ok")
        });
        writer.close();
        let content = fs::read_to_string(journal_path(&dir)).unwrap();
        let check = tcms_obs::validate_journal(&content).unwrap();
        assert_eq!(check.records, 2);
        assert!(!check.torn_tail);
        assert!(!check.sealed);
        // A sealed rotated segment also passes, flagged as sealed.
        let sealed = format!("{content}{}\n", seal_line(&content));
        let check = tcms_obs::validate_journal(&sealed).unwrap();
        assert_eq!(check.records, 2);
        assert!(check.sealed);
        let _ = fs::remove_dir_all(&dir);
    }
}
