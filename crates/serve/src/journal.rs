//! The persistent workload journal (`--journal-dir`): an append-only
//! JSONL capture of every work request the daemon executed.
//!
//! # Why a journal
//!
//! The force-directed search and the sharded cache are only tunable
//! against *real* traffic. The journal records, per request: the raw
//! request line (so replay needs no reconstruction), the canonical
//! [`CacheKey`] (spec hash + config fingerprint), the cache
//! [`Disposition`], the outcome class and wire code, and queue/exec
//! timings — enough to re-drive the exact workload through a fresh
//! daemon (`repro_replay`) or feed an offline tuner.
//!
//! # Off the hot path
//!
//! Workers never touch the file. They hand a [`JournalEntry`] to a
//! bounded [`std::sync::mpsc::sync_channel`] with a **non-blocking**
//! `try_send`; a dedicated writer thread drains the channel, assigns the
//! **monotone sequence number** (single-writer ⇒ strictly increasing
//! on-disk order, no cross-thread reordering) and appends one line per
//! record. When the channel is full the entry is *dropped, not queued*:
//! an [`AtomicU64`] counts the drops and every subsequent record carries
//! the cumulative count, so a replay knows exactly how many requests are
//! missing and a worker is never stalled by a slow disk.
//!
//! # Crash tolerance
//!
//! The file starts with a magic header line (like
//! [`persist`](crate::persist) snapshots). A crash mid-append leaves a
//! torn final line; [`load_journal`] skips it (and any corrupt line)
//! with a count rather than an error, and [`JournalWriter::open`]
//! truncates a torn tail before appending so recovery never glues new
//! records onto half-written ones. Sequence numbers continue from the
//! last valid record. The `trace_check --journal` validator in
//! `tcms-obs` enforces the same schema strictly (torn tails allowed at
//! the tail only); a test keeps the two in sync.

use std::fs::{self, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

use tcms_ir::SpecHash;
use tcms_obs::json::{self, JsonValue};

use crate::cache::{CacheKey, Disposition};

/// Magic header value of a journal file. Must match
/// [`tcms_obs::JOURNAL_MAGIC`] — the obs validator lints what this
/// writer emits.
pub const JOURNAL_MAGIC: &str = "tcms-serve-journal";
/// Schema version written to the header.
pub const JOURNAL_VERSION: f64 = 1.0;
/// File name inside the `--journal-dir` directory.
pub const JOURNAL_FILE: &str = "journal.jsonl";
/// Default bounded-channel capacity between workers and the writer.
pub const DEFAULT_JOURNAL_BUFFER: usize = 1024;

/// What a worker hands to the writer thread: everything about one
/// executed (or shed) request except the fields the writer itself
/// assigns (`seq`, `ts_us`, cumulative `dropped`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// The work action: `"schedule"` or `"simulate"`.
    pub action: &'static str,
    /// Content-address of the result, when the pipeline computed one.
    pub key: Option<CacheKey>,
    /// Cache disposition, `None` when the request failed before lookup.
    pub disposition: Option<Disposition>,
    /// `"ok"` or the [`ServeError`](crate::ServeError) class.
    pub outcome: &'static str,
    /// 0 on success, the stable wire code otherwise.
    pub code: u16,
    /// Time spent queued, in microseconds.
    pub queue_us: u64,
    /// Time spent executing the pipeline, in microseconds.
    pub exec_us: u64,
    /// Total time from arrival to response, in microseconds.
    pub total_us: u64,
    /// The raw request line, verbatim — what a replay re-sends.
    pub request: String,
}

/// One record loaded back from a journal file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// Writer-assigned sequence number, strictly increasing in file
    /// order.
    pub seq: u64,
    /// Microseconds since the writer (re)opened the journal.
    pub ts_us: u64,
    /// The work action name.
    pub action: String,
    /// Canonical spec hash, when captured.
    pub spec: Option<SpecHash>,
    /// Config fingerprint, when captured.
    pub config: Option<u64>,
    /// Cache disposition string (`hit`/`miss`/`coalesced`).
    pub disposition: Option<String>,
    /// `"ok"` or the error class.
    pub outcome: String,
    /// Wire code (0 on success).
    pub code: u16,
    /// Queue wait in microseconds.
    pub queue_us: u64,
    /// Execution time in microseconds.
    pub exec_us: u64,
    /// Arrival-to-response time in microseconds.
    pub total_us: u64,
    /// Cumulative dropped-entry count at write time.
    pub dropped: u64,
    /// The raw request line.
    pub request: String,
}

/// Counters of a live [`JournalWriter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JournalStats {
    /// Entries accepted onto the channel (≥ records on disk until the
    /// writer catches up).
    pub recorded: u64,
    /// Entries dropped because the channel was full.
    pub dropped: u64,
}

/// Outcome of loading a journal file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JournalLoadReport {
    /// Valid records loaded.
    pub loaded: usize,
    /// Invalid lines skipped (each one a warning, not an error).
    pub skipped: usize,
    /// Whether the final line was torn (partial append before a crash).
    pub torn_tail: bool,
}

enum Msg {
    Record(JournalEntry),
    Shutdown,
}

/// The off-hot-path journal writer: bounded channel in, JSONL out.
pub struct JournalWriter {
    tx: SyncSender<Msg>,
    recorded: Arc<AtomicU64>,
    dropped: Arc<AtomicU64>,
    handle: Mutex<Option<JoinHandle<()>>>,
    path: PathBuf,
}

impl std::fmt::Debug for JournalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JournalWriter")
            .field("path", &self.path)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Path of the journal file inside a journal directory.
#[must_use]
pub fn journal_path(dir: &Path) -> PathBuf {
    dir.join(JOURNAL_FILE)
}

impl JournalWriter {
    /// Opens (or creates) the journal in `dir` and spawns the writer
    /// thread. An existing journal is continued: sequence numbers resume
    /// after the last valid record and a torn tail is truncated away
    /// first. `buffer` bounds the worker→writer channel (clamped to at
    /// least 1).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures, and refuses (with `InvalidData`) to
    /// append to a file whose header is not a journal header — the
    /// daemon must not grow records onto a foreign file.
    pub fn open(dir: &Path, buffer: usize) -> io::Result<JournalWriter> {
        fs::create_dir_all(dir)?;
        let path = journal_path(dir);
        let mut next_seq = 0;
        let mut valid_len = 0u64;
        let fresh = !path.exists();
        if fresh {
            let header =
                format!("{{\"magic\":\"{JOURNAL_MAGIC}\",\"version\":{JOURNAL_VERSION}}}\n");
            fs::write(&path, header.as_bytes())?;
        } else {
            let content = fs::read_to_string(&path)?;
            let scan = scan_journal(&content).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}: {e}", path.display()),
                )
            })?;
            next_seq = scan.records.last().map_or(0, |r| r.seq + 1);
            valid_len = scan.valid_len;
        }
        let file = OpenOptions::new().append(true).open(&path)?;
        if !fresh {
            // Drop a torn tail (and any trailing garbage) so recovery
            // never appends onto a half-written line.
            file.set_len(valid_len)?;
        }

        let (tx, rx) = sync_channel(buffer.max(1));
        let recorded = Arc::new(AtomicU64::new(0));
        let dropped = Arc::new(AtomicU64::new(0));
        let handle = {
            let dropped = Arc::clone(&dropped);
            std::thread::Builder::new()
                .name("tcms-serve-journal".into())
                .spawn(move || writer_loop(&rx, file, next_seq, &dropped))
                .map_err(|e| io::Error::other(format!("spawn journal writer: {e}")))?
        };
        Ok(JournalWriter {
            tx,
            recorded,
            dropped,
            handle: Mutex::new(Some(handle)),
            path,
        })
    }

    /// Hands one entry to the writer thread **without blocking**: when
    /// the channel is full (or the writer is gone) the entry is dropped
    /// and counted, never queued — a slow disk costs records, not
    /// request latency.
    pub fn record(&self, entry: JournalEntry) {
        match self.tx.try_send(Msg::Record(entry)) {
            Ok(()) => {
                self.recorded.fetch_add(1, Ordering::Relaxed);
            }
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Drains the channel, flushes the file and joins the writer thread.
    /// Idempotent; entries recorded after close are counted as dropped.
    pub fn close(&self) {
        let handle = {
            let mut guard = self.handle.lock().unwrap_or_else(PoisonError::into_inner);
            guard.take()
        };
        if let Some(handle) = handle {
            // A blocking send is fine here: the writer is draining, so
            // the channel empties; everything queued before the sentinel
            // reaches the disk.
            let _ = self.tx.send(Msg::Shutdown);
            let _ = handle.join();
        }
    }

    /// Point-in-time accepted/dropped counters.
    #[must_use]
    pub fn stats(&self) -> JournalStats {
        JournalStats {
            recorded: self.recorded.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }

    /// The journal file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for JournalWriter {
    fn drop(&mut self) {
        self.close();
    }
}

fn writer_loop(rx: &Receiver<Msg>, file: fs::File, mut next_seq: u64, dropped: &AtomicU64) {
    let start = Instant::now();
    let mut out = io::BufWriter::new(file);
    while let Ok(Msg::Record(entry)) = rx.recv() {
        let ts_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        let line = record_line(&entry, next_seq, ts_us, dropped.load(Ordering::Relaxed));
        next_seq += 1;
        // Line + newline in one write, then flush: a crash tears at most
        // the final line, which loaders skip.
        let _ = out.write_all(line.as_bytes());
        let _ = out.write_all(b"\n");
        let _ = out.flush();
    }
    let _ = out.flush();
}

fn record_line(entry: &JournalEntry, seq: u64, ts_us: u64, dropped: u64) -> String {
    #[allow(clippy::cast_precision_loss)]
    let num = |n: u64| JsonValue::Number(n as f64);
    let mut map = std::collections::BTreeMap::new();
    map.insert("seq".to_string(), num(seq));
    map.insert("ts_us".to_string(), num(ts_us));
    map.insert(
        "action".to_string(),
        JsonValue::String(entry.action.to_owned()),
    );
    map.insert(
        "spec".to_string(),
        match entry.key {
            Some(k) => JsonValue::String(k.spec.to_string()),
            None => JsonValue::Null,
        },
    );
    map.insert(
        "config".to_string(),
        match entry.key {
            // Hex string: a u64 fingerprint does not survive f64.
            Some(k) => JsonValue::String(format!("{:016x}", k.config)),
            None => JsonValue::Null,
        },
    );
    map.insert(
        "disposition".to_string(),
        match entry.disposition {
            Some(d) => JsonValue::String(d.as_str().to_owned()),
            None => JsonValue::Null,
        },
    );
    map.insert(
        "outcome".to_string(),
        JsonValue::String(entry.outcome.to_owned()),
    );
    map.insert("code".to_string(), num(u64::from(entry.code)));
    map.insert("queue_us".to_string(), num(entry.queue_us));
    map.insert("exec_us".to_string(), num(entry.exec_us));
    map.insert("total_us".to_string(), num(entry.total_us));
    map.insert("dropped".to_string(), num(dropped));
    map.insert(
        "request".to_string(),
        JsonValue::String(entry.request.clone()),
    );
    json::to_string(&JsonValue::Object(map))
}

fn to_u64(v: Option<&JsonValue>) -> Result<u64, String> {
    let n = v
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| "missing numeric field".to_string())?;
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    if n >= 0.0 && n.fract() == 0.0 {
        Ok(n as u64)
    } else {
        Err(format!("non-integer numeric field {n}"))
    }
}

fn opt_str(v: Option<&JsonValue>) -> Result<Option<String>, String> {
    match v {
        None | Some(JsonValue::Null) => Ok(None),
        Some(JsonValue::String(s)) => Ok(Some(s.clone())),
        Some(_) => Err("field must be a string or null".into()),
    }
}

fn parse_record(line: &str) -> Result<JournalRecord, String> {
    let v = json::parse(line)?;
    let req = |key: &str| {
        v.get(key)
            .and_then(JsonValue::as_str)
            .map(str::to_owned)
            .ok_or_else(|| format!("missing string `{key}`"))
    };
    let num = |key: &str| to_u64(v.get(key)).map_err(|e| format!("`{key}`: {e}"));
    let spec = match opt_str(v.get("spec"))? {
        Some(s) => Some(SpecHash::parse(&s)?),
        None => None,
    };
    let config = match opt_str(v.get("config"))? {
        Some(s) => Some(u64::from_str_radix(&s, 16).map_err(|e| format!("`config`: {e}"))?),
        None => None,
    };
    Ok(JournalRecord {
        seq: num("seq")?,
        ts_us: num("ts_us")?,
        action: req("action")?,
        spec,
        config,
        disposition: opt_str(v.get("disposition"))?,
        outcome: req("outcome")?,
        code: u16::try_from(num("code")?).map_err(|_| "`code` out of range".to_string())?,
        queue_us: num("queue_us")?,
        exec_us: num("exec_us")?,
        total_us: num("total_us")?,
        dropped: num("dropped")?,
        request: req("request")?,
    })
}

struct Scan {
    records: Vec<JournalRecord>,
    report: JournalLoadReport,
    /// Byte length of the valid prefix (header + every valid line,
    /// including the trailing newline) — what recovery truncates to.
    valid_len: u64,
}

/// Scans journal content. The header must be valid (a foreign file is an
/// error, not a skip); record lines are skipped when invalid, with the
/// final line classified as a torn tail.
fn scan_journal(content: &str) -> Result<Scan, String> {
    let mut offset = 0usize;
    let mut lines = Vec::new();
    // Manual split tracking byte offsets: `str::lines` hides whether the
    // final line was newline-terminated (a torn append is not).
    while offset < content.len() {
        let rest = &content[offset..];
        let (line, advance) = match rest.find('\n') {
            Some(i) => (&rest[..i], i + 1),
            None => (rest, rest.len()),
        };
        lines.push((line, offset, offset + advance));
        offset += advance;
    }
    let Some(&(header, _, header_end)) = lines.first() else {
        return Err("empty journal: missing header line".into());
    };
    let h = json::parse(header).map_err(|e| format!("bad header: {e}"))?;
    if h.get("magic").and_then(JsonValue::as_str) != Some(JOURNAL_MAGIC) {
        return Err(format!("header magic is not {JOURNAL_MAGIC:?}"));
    }
    if h.get("version").and_then(JsonValue::as_f64) != Some(JOURNAL_VERSION) {
        return Err("unsupported journal version".into());
    }
    let mut scan = Scan {
        records: Vec::new(),
        report: JournalLoadReport::default(),
        valid_len: header_end as u64,
    };
    let mut prev_seq = None;
    for (i, &(line, _, end)) in lines.iter().enumerate().skip(1) {
        let terminated = content.as_bytes().get(end - 1) == Some(&b'\n');
        let parsed = if terminated || !line.is_empty() {
            parse_record(line)
        } else {
            Err("empty line".into())
        };
        match parsed {
            Ok(rec) if terminated && prev_seq.is_none_or(|p| rec.seq > p) => {
                prev_seq = Some(rec.seq);
                scan.records.push(rec);
                scan.report.loaded += 1;
                scan.valid_len = end as u64;
            }
            // Invalid, unterminated or out-of-order: skip. Only the
            // final line counts as a torn tail.
            _ => {
                scan.report.skipped += 1;
                if i + 1 == lines.len() {
                    scan.report.torn_tail = true;
                }
            }
        }
    }
    Ok(scan)
}

/// Loads every valid record of a journal file, skipping corrupt lines
/// (reported, not fatal) and flagging a torn final line.
///
/// # Errors
///
/// Propagates I/O failures; returns `InvalidData` when the file is not a
/// journal (missing or foreign header).
pub fn load_journal(path: &Path) -> io::Result<(Vec<JournalRecord>, JournalLoadReport)> {
    let content = fs::read_to_string(path)?;
    let scan = scan_journal(&content).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: {e}", path.display()),
        )
    })?;
    Ok((scan.records, scan.report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tcms_journal_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn entry(action: &'static str, outcome: &'static str) -> JournalEntry {
        JournalEntry {
            action,
            key: Some(CacheKey {
                spec: SpecHash::of_text(action),
                config: 0xdead_beef_0042_0007,
            }),
            disposition: Some(Disposition::Miss),
            outcome,
            code: 0,
            queue_us: 3,
            exec_us: 250,
            total_us: 253,
            request: format!("{{\"action\":\"{action}\"}}"),
        }
    }

    #[test]
    fn write_load_round_trip_preserves_order_and_keys() {
        let dir = temp_dir("rt");
        let writer = JournalWriter::open(&dir, 64).unwrap();
        for i in 0..20 {
            let mut e = entry("schedule", "ok");
            e.request = format!("{{\"id\":{i}}}");
            writer.record(e);
        }
        writer.close();
        assert_eq!(writer.stats().recorded, 20);
        assert_eq!(writer.stats().dropped, 0);

        let (records, report) = load_journal(&journal_path(&dir)).unwrap();
        assert_eq!(report.loaded, 20);
        assert_eq!(report.skipped, 0);
        assert!(!report.torn_tail);
        assert_eq!(records.len(), 20);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.seq, i as u64, "writer-assigned seq is contiguous");
            assert_eq!(r.request, format!("{{\"id\":{i}}}"));
            assert_eq!(r.config, Some(0xdead_beef_0042_0007));
            assert_eq!(r.spec, Some(SpecHash::of_text("schedule")));
            assert_eq!(r.disposition.as_deref(), Some("miss"));
            assert_eq!(r.outcome, "ok");
        }
        assert!(
            records.windows(2).all(|w| w[0].ts_us <= w[1].ts_us),
            "timestamps are monotone"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_continues_sequence_and_truncates_torn_tail() {
        let dir = temp_dir("reopen");
        let writer = JournalWriter::open(&dir, 64).unwrap();
        writer.record(entry("schedule", "ok"));
        writer.record(entry("simulate", "ok"));
        writer.close();

        // Simulate a crash mid-append: a partial line with no newline.
        let path = journal_path(&dir);
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(b"{\"seq\":2,\"ts_us\":99,\"act").unwrap();
        drop(file);
        let (records, report) = load_journal(&path).unwrap();
        assert_eq!(report.loaded, 2);
        assert_eq!(report.skipped, 1);
        assert!(report.torn_tail, "partial append is a torn tail");
        assert_eq!(records.len(), 2);

        // Recovery: the torn tail is truncated, seq resumes at 2.
        let writer = JournalWriter::open(&dir, 64).unwrap();
        writer.record(entry("schedule", "ok"));
        writer.close();
        let (records, report) = load_journal(&path).unwrap();
        assert!(!report.torn_tail);
        assert_eq!(report.skipped, 0);
        assert_eq!(
            records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![0, 1, 2],
            "sequence continues across restarts"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn full_channel_drops_with_accounting_instead_of_blocking() {
        let dir = temp_dir("drop");
        let writer = JournalWriter::open(&dir, 2).unwrap();
        // Saturate: far more entries than the channel holds, faster than
        // a flushing writer can drain. Some must drop; none may block.
        for _ in 0..5_000 {
            writer.record(entry("schedule", "ok"));
        }
        writer.close();
        let stats = writer.stats();
        assert_eq!(stats.recorded + stats.dropped, 5_000);
        let (records, report) = load_journal(&journal_path(&dir)).unwrap();
        assert_eq!(records.len() as u64, stats.recorded);
        assert!(!report.torn_tail);
        // The cumulative drop count rides along in the records.
        if stats.dropped > 0 {
            assert!(records.last().unwrap().dropped <= stats.dropped);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_file_is_refused_not_clobbered() {
        let dir = temp_dir("foreign");
        fs::create_dir_all(&dir).unwrap();
        let path = journal_path(&dir);
        fs::write(&path, "{\"magic\":\"something-else\",\"version\":1}\n").unwrap();
        let err = JournalWriter::open(&dir, 8).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(load_journal(&path).is_err());
        // The foreign file is untouched.
        assert!(fs::read_to_string(&path)
            .unwrap()
            .contains("something-else"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn error_outcomes_round_trip_without_a_key() {
        let dir = temp_dir("err");
        let writer = JournalWriter::open(&dir, 8).unwrap();
        writer.record(JournalEntry {
            action: "schedule",
            key: None,
            disposition: None,
            outcome: "malformed",
            code: 4,
            queue_us: 1,
            exec_us: 2,
            total_us: 3,
            request: "{\"action\":\"schedule\",\"design\":\"bad\"}".into(),
        });
        writer.close();
        let (records, _) = load_journal(&journal_path(&dir)).unwrap();
        assert_eq!(records.len(), 1);
        let r = &records[0];
        assert_eq!(r.spec, None);
        assert_eq!(r.config, None);
        assert_eq!(r.disposition, None);
        assert_eq!((r.outcome.as_str(), r.code), ("malformed", 4));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn emitted_journal_passes_the_obs_validator() {
        // The writer and the `trace_check --journal` validator live in
        // different crates; this is the test that keeps them in sync.
        assert_eq!(JOURNAL_MAGIC, tcms_obs::JOURNAL_MAGIC);
        assert_eq!(JOURNAL_VERSION, tcms_obs::JOURNAL_VERSION);
        let dir = temp_dir("obsval");
        let writer = JournalWriter::open(&dir, 8).unwrap();
        writer.record(entry("schedule", "ok"));
        writer.record(JournalEntry {
            disposition: Some(Disposition::Hit),
            ..entry("schedule", "ok")
        });
        writer.close();
        let content = fs::read_to_string(journal_path(&dir)).unwrap();
        let check = tcms_obs::validate_journal(&content).unwrap();
        assert_eq!(check.records, 2);
        assert!(!check.torn_tail);
        let _ = fs::remove_dir_all(&dir);
    }
}
