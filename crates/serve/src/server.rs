//! The daemon: TCP accept loop, bounded job queue, worker pool.
//!
//! # Request lifecycle
//!
//! 1. A connection thread reads one NDJSON line and parses it.
//!    Control actions (`ping`, `stats`, `shutdown`) are answered inline;
//!    work actions (`schedule`, `simulate`) are pushed onto the bounded
//!    job queue.
//! 2. If the queue is full the request is **shed immediately** with a
//!    typed `overloaded` (429) error — backpressure is explicit, the
//!    daemon never buffers unboundedly.
//! 3. A worker pops the job. If its deadline already expired in the
//!    queue it answers `deadline` (408) without scheduling; otherwise
//!    the remaining time becomes the scheduler's [`RunBudget`]
//!    wall-clock watchdog, so a deadline also bounds the IFDS run
//!    itself.
//! 4. The worker runs the shared [`pipeline`](crate::pipeline) —
//!    through the content-addressed cache — and writes the response
//!    line back on the requesting connection. Responses arrive in
//!    completion order; the echoed `id` correlates them.
//!
//! Scheduling work itself fans out onto the vendored rayon pool, which
//! is safe to enter from several worker threads at once (a contended
//! parallel region degrades to inline sequential execution with
//! bit-identical results).

use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead as _, BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tcms_fds::RunBudget;
use tcms_obs::json::JsonValue;
use tcms_obs::{MetricsRegistry, NoopRecorder};

use crate::cache::{Disposition, SchedCache};
use crate::error::ServeError;
use crate::journal::{JournalEntry, JournalStats, JournalWriter, DEFAULT_JOURNAL_BUFFER};
use crate::persist;
use crate::pipeline::{schedule_request, simulate_request, ExecContext};
use crate::protocol::{
    error_line, output_body, parse_request, success_line, Action, Request, RequestId,
};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7733` (`:0` picks a free port).
    pub listen: String,
    /// Worker threads (0 = automatic).
    pub workers: usize,
    /// Bounded job-queue capacity; beyond it requests are shed.
    pub queue_capacity: usize,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Cache shard count (lock granularity).
    pub cache_shards: usize,
    /// Directory for the persistent cache snapshot (`--cache-dir`).
    pub cache_dir: Option<PathBuf>,
    /// Deadline applied to requests that carry none, in milliseconds.
    pub default_deadline_ms: Option<u64>,
    /// Directory for the workload journal (`--journal-dir`); `None`
    /// disables capture.
    pub journal_dir: Option<PathBuf>,
    /// Bounded worker→journal channel capacity; when full, entries are
    /// dropped (and counted), never queued.
    pub journal_buffer: usize,
    /// Live-journal rotation threshold in bytes (0 disables rotation).
    pub journal_rotate_bytes: u64,
    /// Request-line size cap in bytes: a longer line is answered with a
    /// typed `too-large` (413) error and the connection is closed, so a
    /// misbehaving client can never grow a read buffer unboundedly.
    pub max_request_bytes: usize,
    /// Honour the chaos panic marker
    /// ([`PANIC_MARKER`](crate::pipeline::PANIC_MARKER)) in design text —
    /// test/bench harness support, never enabled in production serving.
    pub fault_marker: bool,
    /// Route designs with at least this many operations through the
    /// feedback-guided partitioner (0 disables automatic routing; an
    /// explicit `partition` request field always wins). Defaults to
    /// [`crate::pipeline::DEFAULT_AUTO_PARTITION_OPS`], matching the
    /// one-shot CLI so responses stay bit-identical.
    pub auto_partition_ops: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            listen: "127.0.0.1:0".into(),
            workers: 0,
            queue_capacity: 256,
            cache_capacity: 1024,
            cache_shards: 8,
            cache_dir: None,
            default_deadline_ms: None,
            journal_dir: None,
            journal_buffer: DEFAULT_JOURNAL_BUFFER,
            journal_rotate_bytes: 0,
            max_request_bytes: 1 << 20,
            fault_marker: false,
            auto_partition_ops: crate::pipeline::DEFAULT_AUTO_PARTITION_OPS,
        }
    }
}

/// One queued work item.
struct Job {
    id: RequestId,
    action: Action,
    enqueued: Instant,
    deadline: Option<Duration>,
    conn: Arc<ConnWriter>,
    /// The raw request line, kept only when journaling is on — the
    /// journal replays verbatim bytes, not a re-serialisation.
    raw: Option<String>,
}

/// The write half of a connection; workers share it via `Arc`.
struct ConnWriter {
    stream: Mutex<TcpStream>,
}

impl ConnWriter {
    /// Writes one response line. Errors are swallowed: a vanished client
    /// must not take a worker down.
    fn send(&self, line: &str) {
        let mut stream = self.stream.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = stream.write_all(line.as_bytes());
        let _ = stream.write_all(b"\n");
        let _ = stream.flush();
    }
}

struct Shared {
    config: ServeConfig,
    cache: SchedCache,
    metrics: Mutex<MetricsRegistry>,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    journal: Option<JournalWriter>,
    inflight: AtomicU64,
}

impl Shared {
    fn lock_metrics(&self) -> std::sync::MutexGuard<'_, MetricsRegistry> {
        self.metrics.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_queue(&self) -> std::sync::MutexGuard<'_, VecDeque<Job>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Pushes a job, shedding when the bounded queue is full.
    fn enqueue(&self, job: Job) -> Result<(), ServeError> {
        if self.shutting_down() {
            return Err(ServeError::ShuttingDown);
        }
        let depth = {
            let mut queue = self.lock_queue();
            if queue.len() >= self.config.queue_capacity {
                return Err(ServeError::Overloaded {
                    capacity: self.config.queue_capacity,
                });
            }
            queue.push_back(job);
            queue.len()
        };
        self.queue_cv.notify_one();
        #[allow(clippy::cast_precision_loss)]
        self.lock_metrics()
            .gauge_set("serve.queue.depth", depth as f64);
        Ok(())
    }

    /// Pops the next job, blocking until one arrives or shutdown drains
    /// the queue empty.
    fn dequeue(&self) -> Option<Job> {
        let mut queue = self.lock_queue();
        loop {
            if let Some(job) = queue.pop_front() {
                let depth = queue.len();
                drop(queue);
                #[allow(clippy::cast_precision_loss)]
                self.lock_metrics()
                    .gauge_set("serve.queue.depth", depth as f64);
                return Some(job);
            }
            if self.shutting_down() {
                return None;
            }
            queue = self
                .queue_cv
                .wait_timeout(queue, Duration::from_millis(50))
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }

    /// Hands one finished (or shed) request to the journal writer, when
    /// journaling is on. `raw` is populated by the connection thread only
    /// in that case, so both `None`s mean "capture disabled".
    fn journal_record(&self, raw: Option<String>, entry: impl FnOnce(String) -> JournalEntry) {
        let (Some(journal), Some(request)) = (&self.journal, raw) else {
            return;
        };
        journal.record(entry(request));
    }

    /// Runs one job end to end and writes its response.
    fn execute(&self, job: Job) {
        let waited = job.enqueued.elapsed();
        let queue_us = dur_us(waited);
        let action = action_label(&job.action);
        #[allow(clippy::cast_precision_loss)]
        self.lock_metrics()
            .histogram_record("serve.queue_wait_us", queue_us as f64);
        let budget = match job.deadline {
            Some(deadline) => {
                let Some(remaining) = deadline.checked_sub(waited) else {
                    let waited_ms = u64::try_from(waited.as_millis()).unwrap_or(u64::MAX);
                    let err = ServeError::DeadlineExpired { waited_ms };
                    self.lock_metrics().counter_add("serve.errors", 1);
                    // Journal before responding: once the client sees the
                    // response it may read `journal_stats`, which must
                    // already account for this request.
                    self.journal_record(job.raw, |request| JournalEntry {
                        action,
                        key: None,
                        disposition: None,
                        outcome: err.class(),
                        code: err.code(),
                        queue_us,
                        exec_us: 0,
                        total_us: queue_us,
                        request,
                    });
                    job.conn.send(&error_line(&job.id, &err));
                    return;
                };
                RunBudget {
                    wall_deadline: Some(remaining),
                    ..RunBudget::UNLIMITED
                }
            }
            None => RunBudget::UNLIMITED,
        };
        let cache = (self.config.cache_capacity > 0).then_some(&self.cache);
        let ctx = ExecContext {
            cache,
            budget,
            rec: &NoopRecorder,
            fault_marker: self.config.fault_marker,
            auto_partition_ops: self.config.auto_partition_ops,
        };
        // Control actions never reach the queue.
        if matches!(job.action, Action::Stats | Action::Ping | Action::Shutdown) {
            return;
        }
        let inflight = self.inflight.fetch_add(1, Ordering::SeqCst) + 1;
        #[allow(clippy::cast_precision_loss)]
        self.lock_metrics()
            .gauge_set("serve.inflight", inflight as f64);
        let exec_start = Instant::now();
        // Supervision: a panicking scheduler job becomes a typed 500 for
        // the one request that caused it — the worker, the daemon and the
        // connection all survive. (The cache's own drop guard has already
        // resolved any in-flight slot during the unwind, so waiters are
        // never wedged.) This is the single place a panic is counted.
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match &job.action {
                Action::Schedule { design, opts } => schedule_request(design, opts, &ctx)
                    .map(|a| (a.text, a.disposition, a.fresh_iterations, a.cache_key)),
                Action::Simulate { design, opts } => simulate_request(design, opts, &ctx)
                    .map(|a| (a.text, a.disposition, a.fresh_iterations, a.cache_key)),
                Action::Stats | Action::Ping | Action::Shutdown => unreachable!(),
            }))
            .unwrap_or_else(|payload| {
                self.lock_metrics().counter_add("serve.worker.panics", 1);
                Err(ServeError::from_panic(payload.as_ref()))
            });
        let exec_us = dur_us(exec_start.elapsed());
        let inflight = self.inflight.fetch_sub(1, Ordering::SeqCst) - 1;
        let total_us = dur_us(job.enqueued.elapsed());
        let disposition = outcome.as_ref().ok().map(|(_, d, _, _)| *d);
        {
            let mut m = self.lock_metrics();
            #[allow(clippy::cast_precision_loss)]
            {
                m.gauge_set("serve.inflight", inflight as f64);
                m.histogram_record(exec_metric(disposition), exec_us as f64);
                m.histogram_record(total_metric(disposition), total_us as f64);
                m.histogram_record("serve.latency_ms", total_us as f64 / 1_000.0);
            }
        }
        match outcome {
            Ok((output, disposition, fresh_iterations, key)) => {
                {
                    let mut m = self.lock_metrics();
                    m.counter_add(disposition_metric(disposition), 1);
                    if disposition == Disposition::Miss {
                        m.counter_add("serve.scheduler.runs", 1);
                    }
                    m.counter_add("serve.ifds.iterations", fresh_iterations);
                }
                // Journal before responding (non-blocking `try_send`): a
                // client that has seen the response may immediately read
                // `journal_stats`, which must already count this request.
                self.journal_record(job.raw, |request| JournalEntry {
                    action,
                    key,
                    disposition: Some(disposition),
                    outcome: "ok",
                    code: 0,
                    queue_us,
                    exec_us,
                    total_us,
                    request,
                });
                // The rendered report's iteration count mirrors the run
                // that produced the cache entry; `fresh_iterations` in
                // the metrics counts only *new* IFDS work.
                job.conn.send(&success_line(
                    &job.id,
                    output_body(&output, disposition, fresh_iterations),
                ));
            }
            Err(e) => {
                self.lock_metrics().counter_add("serve.errors", 1);
                self.journal_record(job.raw, |request| JournalEntry {
                    action,
                    key: None,
                    disposition: None,
                    outcome: e.class(),
                    code: e.code(),
                    queue_us,
                    exec_us,
                    total_us,
                    request,
                });
                job.conn.send(&error_line(&job.id, &e));
            }
        }
    }

    /// The daemon-statistics response body.
    fn stats_body(&self) -> BTreeMap<String, JsonValue> {
        let cache = self.cache.stats();
        let metrics = self.lock_metrics();
        let num = |n: u64| {
            #[allow(clippy::cast_precision_loss)]
            JsonValue::Number(n as f64)
        };
        let mut body = BTreeMap::new();
        body.insert("cache_entries".into(), num(self.cache.len() as u64));
        body.insert("cache_hits".into(), num(cache.hits));
        body.insert("cache_misses".into(), num(cache.misses));
        body.insert("cache_coalesced".into(), num(cache.coalesced));
        body.insert("cache_evictions".into(), num(cache.evictions));
        body.insert("cache_hit_rate".into(), JsonValue::Number(cache.hit_rate()));
        body.insert("requests".into(), num(metrics.counter("serve.requests")));
        body.insert(
            "scheduler_runs".into(),
            num(metrics.counter("serve.scheduler.runs")),
        );
        body.insert(
            "ifds_iterations".into(),
            num(metrics.counter("serve.ifds.iterations")),
        );
        body.insert("errors".into(), num(metrics.counter("serve.errors")));
        body.insert(
            "worker_panics".into(),
            num(metrics.counter("serve.worker.panics")),
        );
        body.insert(
            "worker_restarts".into(),
            num(metrics.counter("serve.worker.restarts")),
        );
        body.insert(
            "queue_depth".into(),
            JsonValue::Number(metrics.gauge("serve.queue.depth").unwrap_or(0.0)),
        );
        body.insert(
            "inflight".into(),
            JsonValue::Number(metrics.gauge("serve.inflight").unwrap_or(0.0)),
        );
        body.insert("workers".into(), num(self.config.workers as u64));
        // Per-shard cache occupancy/evictions: lock-granularity hot
        // spots show up here long before the global hit rate moves.
        body.insert(
            "cache_shards".into(),
            JsonValue::Array(
                cache
                    .shards
                    .iter()
                    .map(|s| {
                        let mut m = BTreeMap::new();
                        m.insert("occupancy".into(), num(s.occupancy as u64));
                        m.insert("capacity".into(), num(s.capacity as u64));
                        m.insert("evictions".into(), num(s.evictions));
                        JsonValue::Object(m)
                    })
                    .collect(),
            ),
        );
        // The full registry in wire form: `tcms stats` reconstructs a
        // MetricsRegistry from this and renders the standard summary.
        body.insert("metrics".into(), metrics.to_json());
        let mut journal = BTreeMap::new();
        match &self.journal {
            Some(w) => {
                let stats = w.stats();
                journal.insert("enabled".into(), JsonValue::Bool(true));
                journal.insert("recorded".into(), num(stats.recorded));
                journal.insert("dropped".into(), num(stats.dropped));
                journal.insert("rotated".into(), num(stats.rotated));
                journal.insert(
                    "path".into(),
                    JsonValue::String(w.path().display().to_string()),
                );
            }
            None => {
                journal.insert("enabled".into(), JsonValue::Bool(false));
            }
        }
        body.insert("journal".into(), JsonValue::Object(journal));
        body
    }
}

fn dur_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

fn action_label(action: &Action) -> &'static str {
    match action {
        Action::Schedule { .. } => "schedule",
        Action::Simulate { .. } => "simulate",
        Action::Stats => "stats",
        Action::Ping => "ping",
        Action::Shutdown => "shutdown",
    }
}

fn request_metric(action: &Action) -> &'static str {
    match action {
        Action::Schedule { .. } => "serve.requests.schedule",
        Action::Simulate { .. } => "serve.requests.simulate",
        Action::Stats => "serve.requests.stats",
        Action::Ping => "serve.requests.ping",
        Action::Shutdown => "serve.requests.shutdown",
    }
}

fn disposition_metric(d: Disposition) -> &'static str {
    match d {
        Disposition::Hit => "serve.cache.hit",
        Disposition::Miss => "serve.cache.miss",
        Disposition::Coalesced => "serve.cache.coalesced",
    }
}

/// Execution-time histogram, split by cache disposition (`None` = the
/// request errored): a hit's ~µs lookup and a miss's ~ms scheduler run
/// must not share buckets.
fn exec_metric(d: Option<Disposition>) -> &'static str {
    match d {
        Some(Disposition::Hit) => "serve.exec_us.hit",
        Some(Disposition::Miss) => "serve.exec_us.miss",
        Some(Disposition::Coalesced) => "serve.exec_us.coalesced",
        None => "serve.exec_us.error",
    }
}

/// Arrival-to-response histogram, split like [`exec_metric`].
fn total_metric(d: Option<Disposition>) -> &'static str {
    match d {
        Some(Disposition::Hit) => "serve.total_us.hit",
        Some(Disposition::Miss) => "serve.total_us.miss",
        Some(Disposition::Coalesced) => "serve.total_us.coalesced",
        None => "serve.total_us.error",
    }
}

/// Serves one connection: read lines, answer control actions inline,
/// queue work actions.
fn serve_connection(shared: &Arc<Shared>, stream: TcpStream) {
    // The read timeout doubles as the shutdown poll interval. Nagle is
    // off: a one-line response must not wait out the client's delayed
    // ACK (a ~40 ms floor on every request without this).
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let writer = Arc::new(ConnWriter {
        stream: Mutex::new(match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        }),
    });
    let mut reader = BufReader::new(stream);
    // Byte-level line assembly instead of `read_line`: the accumulator
    // is capped at `max_request_bytes` (a longer line is a typed 413 and
    // the connection closes), partial reads across timeout polls are
    // never lost, and invalid UTF-8 is a typed error, not a dead
    // connection.
    let cap = shared.config.max_request_bytes.max(1);
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = match reader.fill_buf() {
            Ok([]) => return, // client closed
            Ok(buf) => buf,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.shutting_down() {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        let newline = buf.iter().position(|&b| b == b'\n');
        let chunk = &buf[..newline.unwrap_or(buf.len())];
        if line.len() + chunk.len() > cap {
            // Reject and close: after an oversized line there is no
            // trustworthy record boundary to resynchronise on, and
            // discarding until the next newline would itself be
            // unbounded work on attacker-controlled input.
            shared.lock_metrics().counter_add("serve.requests", 1);
            shared.lock_metrics().counter_add("serve.errors", 1);
            writer.send(&error_line(
                &JsonValue::Null,
                &ServeError::TooLarge { limit: cap },
            ));
            return;
        }
        line.extend_from_slice(chunk);
        let consumed = chunk.len() + usize::from(newline.is_some());
        reader.consume(consumed);
        if newline.is_none() {
            continue; // line still incomplete; keep accumulating
        }
        let taken = std::mem::take(&mut line);
        let Ok(text) = String::from_utf8(taken) else {
            shared.lock_metrics().counter_add("serve.requests", 1);
            shared.lock_metrics().counter_add("serve.errors", 1);
            writer.send(&error_line(
                &JsonValue::Null,
                &ServeError::BadRequest("request line is not valid UTF-8".into()),
            ));
            continue;
        };
        if text.trim().is_empty() {
            continue;
        }
        shared.lock_metrics().counter_add("serve.requests", 1);
        let request = match parse_request(text.trim_end()) {
            Ok(r) => r,
            Err((id, e)) => {
                shared.lock_metrics().counter_add("serve.errors", 1);
                writer.send(&error_line(&id, &e));
                continue;
            }
        };
        let Request {
            id,
            action,
            deadline_ms,
        } = request;
        shared
            .lock_metrics()
            .counter_add(request_metric(&action), 1);
        match action {
            Action::Ping => {
                let mut body = BTreeMap::new();
                body.insert("pong".into(), JsonValue::Bool(true));
                writer.send(&success_line(&id, body));
            }
            Action::Stats => {
                writer.send(&success_line(&id, shared.stats_body()));
            }
            Action::Shutdown => {
                writer.send(&success_line(&id, BTreeMap::new()));
                shared.shutdown.store(true, Ordering::SeqCst);
                shared.queue_cv.notify_all();
            }
            work @ (Action::Schedule { .. } | Action::Simulate { .. }) => {
                let deadline = deadline_ms
                    .or(shared.config.default_deadline_ms)
                    .map(Duration::from_millis);
                // Keep the raw bytes only when journaling: the journal
                // replays the request verbatim, not a re-serialisation.
                let raw = shared.journal.as_ref().map(|_| text.trim_end().to_owned());
                let action_name = action_label(&work);
                let job = Job {
                    id: id.clone(),
                    action: work,
                    enqueued: Instant::now(),
                    deadline,
                    conn: Arc::clone(&writer),
                    raw: raw.clone(),
                };
                if let Err(e) = shared.enqueue(job) {
                    shared.lock_metrics().counter_add("serve.errors", 1);
                    if matches!(e, ServeError::Overloaded { .. }) {
                        shared.lock_metrics().counter_add("serve.shed", 1);
                    }
                    // Shed requests are journaled too (and before the
                    // response goes out): a replay that omits them would
                    // understate the offered load.
                    shared.journal_record(raw, |request| JournalEntry {
                        action: action_name,
                        key: None,
                        disposition: None,
                        outcome: e.class(),
                        code: e.code(),
                        queue_us: 0,
                        exec_us: 0,
                        total_us: 0,
                        request,
                    });
                    writer.send(&error_line(&id, &e));
                }
            }
        }
    }
}

/// A running daemon. Dropping it without [`Server::wait`] leaves threads
/// running; call [`Server::shutdown`] then [`Server::wait`] (or let a
/// client's `shutdown` request trigger it) for a clean exit that also
/// persists the cache snapshot.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener, loads the cache snapshot (when a cache
    /// directory is configured) and spawns the accept loop and worker
    /// pool.
    ///
    /// # Errors
    ///
    /// Propagates bind and snapshot I/O failures.
    pub fn start(mut config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.listen)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        if config.workers == 0 {
            config.workers = std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
                .clamp(2, 8);
        }
        let cache = SchedCache::new(config.cache_capacity.max(1), config.cache_shards.max(1));
        let mut metrics = MetricsRegistry::default();
        if let Some(dir) = &config.cache_dir {
            let report = persist::load_snapshot(dir, &cache)?;
            metrics.counter_add("serve.snapshot.loaded", report.loaded as u64);
            metrics.counter_add("serve.snapshot.skipped", report.skipped as u64);
            metrics.counter_add("serve.snapshot.quarantined", u64::from(report.quarantined));
        }
        let journal = match &config.journal_dir {
            Some(dir) => Some(JournalWriter::open_with(
                dir,
                config.journal_buffer,
                config.journal_rotate_bytes,
            )?),
            None => None,
        };
        let shared = Arc::new(Shared {
            config,
            cache,
            metrics: Mutex::new(metrics),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            journal,
            inflight: AtomicU64::new(0),
        });
        let workers = (0..shared.config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tcms-serve-worker-{i}"))
                    .spawn(move || loop {
                        // Outer supervision ring: `execute` already
                        // converts job panics into typed 500s, so this
                        // only trips on a panic outside the job path
                        // (queue accounting, journaling). The loop *is*
                        // the restart — same thread, fresh iteration —
                        // so a worker slot is never permanently lost.
                        let drained =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                while let Some(job) = shared.dequeue() {
                                    shared.execute(job);
                                }
                            }));
                        match drained {
                            Ok(()) => return,
                            Err(_) => {
                                shared
                                    .lock_metrics()
                                    .counter_add("serve.worker.restarts", 1);
                            }
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("tcms-serve-accept".into())
                .spawn(move || loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let shared = Arc::clone(&shared);
                            // Connection threads are detached; they exit on
                            // client EOF or the shutdown flag (read timeout).
                            let _ = std::thread::Builder::new()
                                .name("tcms-serve-conn".into())
                                .spawn(move || serve_connection(&shared, stream));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            if shared.shutting_down() {
                                return;
                            }
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => {
                            if shared.shutting_down() {
                                return;
                            }
                            std::thread::sleep(Duration::from_millis(10));
                        }
                    }
                })
                .expect("spawn accept thread")
        };
        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals shutdown: stop accepting, drain the queue, then exit.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
    }

    /// Whether a shutdown has been requested (by [`Server::shutdown`] or
    /// a client's `shutdown` action).
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down()
    }

    /// Blocks until the daemon has shut down, then persists the cache
    /// snapshot when a cache directory is configured.
    ///
    /// # Errors
    ///
    /// Propagates snapshot write failures.
    pub fn wait(mut self) -> std::io::Result<()> {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Close the journal after the workers: every executed request
        // reaches the writer before the file is flushed and joined.
        if let Some(journal) = &self.shared.journal {
            journal.close();
        }
        if let Some(dir) = &self.shared.config.cache_dir {
            persist::save_snapshot(dir, &self.shared.cache.entries())?;
        }
        Ok(())
    }

    /// Reads one observability counter (test and stats support).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.shared.lock_metrics().counter(name)
    }

    /// Journal accepted/dropped counters, when capture is enabled.
    #[must_use]
    pub fn journal_stats(&self) -> Option<JournalStats> {
        self.shared.journal.as_ref().map(JournalWriter::stats)
    }

    /// The result cache (test and stats support).
    #[must_use]
    pub fn cache(&self) -> &SchedCache {
        &self.shared.cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::parse_response;

    const SAMPLE: &str = "resource add delay=1 area=1\nresource mul delay=2 area=4 pipelined\n\
        process A\nblock body time=8\nop m0 mul\nop a0 add\nedge m0 a0\n\
        process B\nblock body time=8\nop m0 mul\nop a0 add\nedge m0 a0\n";

    fn start() -> (Server, SocketAddr) {
        let server = Server::start(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();
        (server, addr)
    }

    fn roundtrip(addr: SocketAddr, request: &str) -> crate::protocol::Response {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        parse_response(line.trim_end()).unwrap()
    }

    fn schedule_req(id: &str) -> String {
        let design = SAMPLE.replace('\n', "\\n");
        format!(r#"{{"id":"{id}","action":"schedule","design":"{design}","all_global":4}}"#)
    }

    #[test]
    fn ping_and_stats_answer_inline() {
        let (server, addr) = start();
        let pong = roundtrip(addr, r#"{"id":1,"action":"ping"}"#);
        assert!(pong.is_ok());
        assert_eq!(pong.body.get("pong"), Some(&JsonValue::Bool(true)));
        let stats = roundtrip(addr, r#"{"id":2,"action":"stats"}"#);
        assert!(stats.is_ok());
        assert!(stats.body.get("cache_entries").is_some());
        server.shutdown();
        server.wait().unwrap();
    }

    #[test]
    fn schedule_misses_then_hits() {
        let (server, addr) = start();
        let first = roundtrip(addr, &schedule_req("m"));
        assert!(first.is_ok(), "{:?}", first.error);
        assert_eq!(first.cache(), Some("miss"));
        let second = roundtrip(addr, &schedule_req("h"));
        assert!(second.is_ok());
        assert_eq!(second.cache(), Some("hit"));
        assert_eq!(first.output(), second.output());
        assert_eq!(server.counter("serve.scheduler.runs"), 1);
        assert_eq!(server.counter("serve.cache.hit"), 1);
        server.shutdown();
        server.wait().unwrap();
    }

    #[test]
    fn malformed_design_gets_typed_error() {
        let (server, addr) = start();
        let resp = roundtrip(
            addr,
            r#"{"id":"x","action":"schedule","design":"resource add delay=zero"}"#,
        );
        let (class, code, _) = resp.error.unwrap();
        assert_eq!((class.as_str(), code), ("malformed", 4));
        server.shutdown();
        server.wait().unwrap();
    }

    #[test]
    fn zero_deadline_expires_in_queue() {
        let (server, addr) = start();
        let design = SAMPLE.replace('\n', "\\n");
        let resp = roundtrip(
            addr,
            &format!(r#"{{"id":"d","action":"schedule","design":"{design}","deadline_ms":0}}"#),
        );
        let (class, code, _) = resp.error.unwrap();
        assert_eq!((class.as_str(), code), ("deadline", 408));
        server.shutdown();
        server.wait().unwrap();
    }

    #[test]
    fn client_shutdown_request_stops_the_daemon() {
        let (server, addr) = start();
        let resp = roundtrip(addr, r#"{"id":"bye","action":"shutdown"}"#);
        assert!(resp.is_ok());
        server.wait().unwrap();
    }

    #[test]
    fn oversized_request_line_gets_typed_413_then_close() {
        let server = Server::start(ServeConfig {
            workers: 1,
            max_request_bytes: 256,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        let huge = format!(
            r#"{{"id":"big","action":"schedule","design":"{}"}}"#,
            "x".repeat(4096)
        );
        stream.write_all(huge.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let resp = parse_response(line.trim_end()).unwrap();
        let (class, code, _) = resp.error.unwrap();
        assert_eq!((class.as_str(), code), ("too-large", 413));
        // The connection is closed after the rejection: there is no
        // trustworthy record boundary to resynchronise on.
        line.clear();
        assert_eq!(reader.read_line(&mut line).unwrap(), 0);
        // The daemon itself is fine.
        let pong = roundtrip(addr, r#"{"id":"p","action":"ping"}"#);
        assert!(pong.is_ok());
        server.shutdown();
        server.wait().unwrap();
    }

    #[test]
    fn invalid_utf8_gets_typed_error_and_the_connection_survives() {
        let (server, addr) = start();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"\xff\xfe{\"id\":1}\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let resp = parse_response(line.trim_end()).unwrap();
        let (class, code, msg) = resp.error.unwrap();
        assert_eq!((class.as_str(), code), ("bad-request", 2));
        assert!(msg.contains("UTF-8"), "{msg}");
        // Same connection keeps working.
        stream
            .write_all(b"{\"id\":\"p\",\"action\":\"ping\"}\n")
            .unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(parse_response(line.trim_end()).unwrap().is_ok());
        server.shutdown();
        server.wait().unwrap();
    }

    #[test]
    fn worker_panic_becomes_typed_500_and_daemon_survives() {
        let server = Server::start(ServeConfig {
            workers: 2,
            fault_marker: true,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();
        let marked = format!("{SAMPLE}{}\n", crate::pipeline::PANIC_MARKER).replace('\n', "\\n");
        let req =
            format!(r#"{{"id":"boom","action":"schedule","design":"{marked}","all_global":4}}"#);
        let resp = roundtrip(addr, &req);
        let (class, code, _) = resp
            .error
            .clone()
            .unwrap_or_else(|| panic!("expected a typed error, got body {:?}", resp.body));
        assert_eq!((class.as_str(), code), ("internal", 500));
        assert_eq!(server.counter("serve.worker.panics"), 1);
        // The panic neither killed the daemon nor wedged the
        // single-flight slot: an unmarked request schedules fine.
        let ok = roundtrip(addr, &schedule_req("after"));
        assert!(ok.is_ok(), "{:?}", ok.error);
        // A retry of the marked design panics again (the failure was
        // not cached) and is again survivable.
        let again = roundtrip(addr, &req);
        assert_eq!(again.error.unwrap().1, 500);
        assert_eq!(server.counter("serve.worker.panics"), 2);
        let stats = roundtrip(addr, r#"{"id":"st","action":"stats"}"#);
        assert_eq!(
            stats.body.get("worker_panics").and_then(JsonValue::as_f64),
            Some(2.0)
        );
        server.shutdown();
        server.wait().unwrap();
    }

    #[test]
    fn journal_captures_work_requests_with_dispositions() {
        let dir = std::env::temp_dir().join(format!("tcms_serve_jnl_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let server = Server::start(ServeConfig {
            workers: 2,
            journal_dir: Some(dir.clone()),
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();
        assert!(roundtrip(addr, &schedule_req("a")).is_ok());
        assert!(roundtrip(addr, &schedule_req("b")).is_ok());
        let bad = roundtrip(
            addr,
            r#"{"id":"x","action":"schedule","design":"resource add delay=zero"}"#,
        );
        assert!(!bad.is_ok());
        // Control actions stay out of the journal.
        assert!(roundtrip(addr, r#"{"id":"p","action":"ping"}"#).is_ok());
        let stats = server.journal_stats().unwrap();
        assert_eq!((stats.recorded, stats.dropped), (3, 0));
        server.shutdown();
        server.wait().unwrap();

        let (records, report) =
            crate::journal::load_journal(&crate::journal::journal_path(&dir)).unwrap();
        assert_eq!(report.loaded, 3);
        assert!(!report.torn_tail);
        let outcomes: Vec<_> = records
            .iter()
            .map(|r| (r.outcome.as_str(), r.disposition.as_deref(), r.code))
            .collect();
        assert_eq!(
            outcomes,
            vec![
                ("ok", Some("miss"), 0),
                ("ok", Some("hit"), 0),
                ("malformed", None, 4),
            ]
        );
        // Successful records carry the content address; the raw request
        // line rides along verbatim for replay.
        assert!(records[0].spec.is_some() && records[0].config.is_some());
        assert_eq!(records[0].spec, records[1].spec);
        assert_eq!(records[0].request, schedule_req("a"));
        assert!(records[2].spec.is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_body_exposes_shards_metrics_and_journal() {
        let (server, addr) = start();
        assert!(roundtrip(addr, &schedule_req("s")).is_ok());
        let stats = roundtrip(addr, r#"{"id":"st","action":"stats"}"#);
        assert!(stats.is_ok());
        let shards = stats.body.get("cache_shards").unwrap().as_array().unwrap();
        assert_eq!(shards.len(), ServeConfig::default().cache_shards);
        let occupied: f64 = shards
            .iter()
            .map(|s| s.get("occupancy").unwrap().as_f64().unwrap())
            .sum();
        assert_eq!(occupied, 1.0, "one entry lives in exactly one shard");
        let metrics = stats.body.get("metrics").unwrap();
        let registry = MetricsRegistry::from_json(metrics).unwrap();
        assert_eq!(registry.counter("serve.requests.schedule"), 1);
        assert_eq!(registry.counter("serve.cache.miss"), 1);
        assert!(registry
            .histograms()
            .any(|(name, _)| name == "serve.exec_us.miss"));
        let journal = stats.body.get("journal").unwrap();
        assert_eq!(journal.get("enabled"), Some(&JsonValue::Bool(false)));
        server.shutdown();
        server.wait().unwrap();
    }

    #[test]
    fn snapshot_round_trips_through_restart() {
        let dir = std::env::temp_dir().join(format!("tcms_serve_snap_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = ServeConfig {
            workers: 2,
            cache_dir: Some(dir.clone()),
            ..ServeConfig::default()
        };
        let server = Server::start(config.clone()).unwrap();
        let addr = server.local_addr();
        assert_eq!(roundtrip(addr, &schedule_req("a")).cache(), Some("miss"));
        server.shutdown();
        server.wait().unwrap();

        let server = Server::start(config).unwrap();
        let addr = server.local_addr();
        // Warm from the snapshot: the very first request is a hit.
        assert_eq!(roundtrip(addr, &schedule_req("b")).cache(), Some("hit"));
        assert_eq!(server.counter("serve.scheduler.runs"), 0);
        server.shutdown();
        server.wait().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
