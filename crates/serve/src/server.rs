//! The daemon: TCP accept loop, bounded job queue, worker pool.
//!
//! # Request lifecycle
//!
//! 1. A connection thread reads one NDJSON line and parses it.
//!    Control actions (`ping`, `stats`, `shutdown`) are answered inline;
//!    work actions (`schedule`, `simulate`) are pushed onto the bounded
//!    job queue.
//! 2. If the queue is full the request is **shed immediately** with a
//!    typed `overloaded` (429) error — backpressure is explicit, the
//!    daemon never buffers unboundedly.
//! 3. A worker pops the job. If its deadline already expired in the
//!    queue it answers `deadline` (408) without scheduling; otherwise
//!    the remaining time becomes the scheduler's [`RunBudget`]
//!    wall-clock watchdog, so a deadline also bounds the IFDS run
//!    itself.
//! 4. The worker runs the shared [`pipeline`](crate::pipeline) —
//!    through the content-addressed cache — and writes the response
//!    line back on the requesting connection. Responses arrive in
//!    completion order; the echoed `id` correlates them.
//!
//! Scheduling work itself fans out onto the vendored rayon pool, which
//! is safe to enter from several worker threads at once (a contended
//! parallel region degrades to inline sequential execution with
//! bit-identical results).

use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead as _, BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tcms_fds::RunBudget;
use tcms_obs::json::JsonValue;
use tcms_obs::{MetricsRegistry, NoopRecorder};

use crate::cache::{Disposition, SchedCache};
use crate::error::ServeError;
use crate::persist;
use crate::pipeline::{schedule_request, simulate_request, ExecContext};
use crate::protocol::{
    error_line, output_body, parse_request, success_line, Action, Request, RequestId,
};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7733` (`:0` picks a free port).
    pub listen: String,
    /// Worker threads (0 = automatic).
    pub workers: usize,
    /// Bounded job-queue capacity; beyond it requests are shed.
    pub queue_capacity: usize,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Cache shard count (lock granularity).
    pub cache_shards: usize,
    /// Directory for the persistent cache snapshot (`--cache-dir`).
    pub cache_dir: Option<PathBuf>,
    /// Deadline applied to requests that carry none, in milliseconds.
    pub default_deadline_ms: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            listen: "127.0.0.1:0".into(),
            workers: 0,
            queue_capacity: 256,
            cache_capacity: 1024,
            cache_shards: 8,
            cache_dir: None,
            default_deadline_ms: None,
        }
    }
}

/// One queued work item.
struct Job {
    id: RequestId,
    action: Action,
    enqueued: Instant,
    deadline: Option<Duration>,
    conn: Arc<ConnWriter>,
}

/// The write half of a connection; workers share it via `Arc`.
struct ConnWriter {
    stream: Mutex<TcpStream>,
}

impl ConnWriter {
    /// Writes one response line. Errors are swallowed: a vanished client
    /// must not take a worker down.
    fn send(&self, line: &str) {
        let mut stream = self.stream.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = stream.write_all(line.as_bytes());
        let _ = stream.write_all(b"\n");
        let _ = stream.flush();
    }
}

struct Shared {
    config: ServeConfig,
    cache: SchedCache,
    metrics: Mutex<MetricsRegistry>,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    fn lock_metrics(&self) -> std::sync::MutexGuard<'_, MetricsRegistry> {
        self.metrics.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_queue(&self) -> std::sync::MutexGuard<'_, VecDeque<Job>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Pushes a job, shedding when the bounded queue is full.
    fn enqueue(&self, job: Job) -> Result<(), ServeError> {
        if self.shutting_down() {
            return Err(ServeError::ShuttingDown);
        }
        let depth = {
            let mut queue = self.lock_queue();
            if queue.len() >= self.config.queue_capacity {
                return Err(ServeError::Overloaded {
                    capacity: self.config.queue_capacity,
                });
            }
            queue.push_back(job);
            queue.len()
        };
        self.queue_cv.notify_one();
        #[allow(clippy::cast_precision_loss)]
        self.lock_metrics()
            .gauge_set("serve.queue.depth", depth as f64);
        Ok(())
    }

    /// Pops the next job, blocking until one arrives or shutdown drains
    /// the queue empty.
    fn dequeue(&self) -> Option<Job> {
        let mut queue = self.lock_queue();
        loop {
            if let Some(job) = queue.pop_front() {
                let depth = queue.len();
                drop(queue);
                #[allow(clippy::cast_precision_loss)]
                self.lock_metrics()
                    .gauge_set("serve.queue.depth", depth as f64);
                return Some(job);
            }
            if self.shutting_down() {
                return None;
            }
            queue = self
                .queue_cv
                .wait_timeout(queue, Duration::from_millis(50))
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }

    /// Runs one job end to end and writes its response.
    fn execute(&self, job: Job) {
        let waited = job.enqueued.elapsed();
        let budget = match job.deadline {
            Some(deadline) => {
                let Some(remaining) = deadline.checked_sub(waited) else {
                    let waited_ms = u64::try_from(waited.as_millis()).unwrap_or(u64::MAX);
                    job.conn.send(&error_line(
                        &job.id,
                        &ServeError::DeadlineExpired { waited_ms },
                    ));
                    return;
                };
                RunBudget {
                    wall_deadline: Some(remaining),
                    ..RunBudget::UNLIMITED
                }
            }
            None => RunBudget::UNLIMITED,
        };
        let cache = (self.config.cache_capacity > 0).then_some(&self.cache);
        let ctx = ExecContext {
            cache,
            budget,
            rec: &NoopRecorder,
        };
        let outcome = match &job.action {
            Action::Schedule { design, opts } => schedule_request(design, opts, &ctx)
                .map(|a| (a.text, a.disposition, a.fresh_iterations)),
            Action::Simulate { design, opts } => simulate_request(design, opts, &ctx),
            // Control actions never reach the queue.
            Action::Stats | Action::Ping | Action::Shutdown => return,
        };
        let line = match outcome {
            Ok((output, disposition, fresh_iterations)) => {
                {
                    let mut m = self.lock_metrics();
                    m.counter_add(disposition_metric(disposition), 1);
                    if disposition == Disposition::Miss {
                        m.counter_add("serve.scheduler.runs", 1);
                    }
                    m.counter_add("serve.ifds.iterations", fresh_iterations);
                }
                // The rendered report's iteration count mirrors the run
                // that produced the cache entry; `fresh_iterations` in
                // the metrics counts only *new* IFDS work.
                success_line(&job.id, output_body(&output, disposition, fresh_iterations))
            }
            Err(e) => {
                self.lock_metrics().counter_add("serve.errors", 1);
                error_line(&job.id, &e)
            }
        };
        #[allow(clippy::cast_precision_loss)]
        self.lock_metrics().histogram_record(
            "serve.latency_ms",
            job.enqueued.elapsed().as_millis() as f64,
        );
        job.conn.send(&line);
    }

    /// The daemon-statistics response body.
    fn stats_body(&self) -> BTreeMap<String, JsonValue> {
        let cache = self.cache.stats();
        let metrics = self.lock_metrics();
        let num = |n: u64| {
            #[allow(clippy::cast_precision_loss)]
            JsonValue::Number(n as f64)
        };
        let mut body = BTreeMap::new();
        body.insert("cache_entries".into(), num(self.cache.len() as u64));
        body.insert("cache_hits".into(), num(cache.hits));
        body.insert("cache_misses".into(), num(cache.misses));
        body.insert("cache_coalesced".into(), num(cache.coalesced));
        body.insert("cache_evictions".into(), num(cache.evictions));
        body.insert("cache_hit_rate".into(), JsonValue::Number(cache.hit_rate()));
        body.insert("requests".into(), num(metrics.counter("serve.requests")));
        body.insert(
            "scheduler_runs".into(),
            num(metrics.counter("serve.scheduler.runs")),
        );
        body.insert(
            "ifds_iterations".into(),
            num(metrics.counter("serve.ifds.iterations")),
        );
        body.insert("errors".into(), num(metrics.counter("serve.errors")));
        body.insert(
            "queue_depth".into(),
            JsonValue::Number(metrics.gauge("serve.queue.depth").unwrap_or(0.0)),
        );
        body.insert("workers".into(), num(self.config.workers as u64));
        body
    }
}

fn disposition_metric(d: Disposition) -> &'static str {
    match d {
        Disposition::Hit => "serve.cache.hit",
        Disposition::Miss => "serve.cache.miss",
        Disposition::Coalesced => "serve.cache.coalesced",
    }
}

/// Serves one connection: read lines, answer control actions inline,
/// queue work actions.
fn serve_connection(shared: &Arc<Shared>, stream: TcpStream) {
    // The read timeout doubles as the shutdown poll interval.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let writer = Arc::new(ConnWriter {
        stream: Mutex::new(match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        }),
    });
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.shutting_down() {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        if line.trim().is_empty() {
            continue;
        }
        shared.lock_metrics().counter_add("serve.requests", 1);
        let request = match parse_request(line.trim_end()) {
            Ok(r) => r,
            Err((id, e)) => {
                shared.lock_metrics().counter_add("serve.errors", 1);
                writer.send(&error_line(&id, &e));
                continue;
            }
        };
        let Request {
            id,
            action,
            deadline_ms,
        } = request;
        match action {
            Action::Ping => {
                let mut body = BTreeMap::new();
                body.insert("pong".into(), JsonValue::Bool(true));
                writer.send(&success_line(&id, body));
            }
            Action::Stats => {
                writer.send(&success_line(&id, shared.stats_body()));
            }
            Action::Shutdown => {
                writer.send(&success_line(&id, BTreeMap::new()));
                shared.shutdown.store(true, Ordering::SeqCst);
                shared.queue_cv.notify_all();
            }
            work @ (Action::Schedule { .. } | Action::Simulate { .. }) => {
                let deadline = deadline_ms
                    .or(shared.config.default_deadline_ms)
                    .map(Duration::from_millis);
                let job = Job {
                    id: id.clone(),
                    action: work,
                    enqueued: Instant::now(),
                    deadline,
                    conn: Arc::clone(&writer),
                };
                if let Err(e) = shared.enqueue(job) {
                    shared.lock_metrics().counter_add("serve.errors", 1);
                    if matches!(e, ServeError::Overloaded { .. }) {
                        shared.lock_metrics().counter_add("serve.shed", 1);
                    }
                    writer.send(&error_line(&id, &e));
                }
            }
        }
    }
}

/// A running daemon. Dropping it without [`Server::wait`] leaves threads
/// running; call [`Server::shutdown`] then [`Server::wait`] (or let a
/// client's `shutdown` request trigger it) for a clean exit that also
/// persists the cache snapshot.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener, loads the cache snapshot (when a cache
    /// directory is configured) and spawns the accept loop and worker
    /// pool.
    ///
    /// # Errors
    ///
    /// Propagates bind and snapshot I/O failures.
    pub fn start(mut config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.listen)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        if config.workers == 0 {
            config.workers = std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
                .clamp(2, 8);
        }
        let cache = SchedCache::new(config.cache_capacity.max(1), config.cache_shards.max(1));
        let mut metrics = MetricsRegistry::default();
        if let Some(dir) = &config.cache_dir {
            let report = persist::load_snapshot(dir, &cache)?;
            metrics.counter_add("serve.snapshot.loaded", report.loaded as u64);
            metrics.counter_add("serve.snapshot.skipped", report.skipped as u64);
        }
        let shared = Arc::new(Shared {
            config,
            cache,
            metrics: Mutex::new(metrics),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..shared.config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tcms-serve-worker-{i}"))
                    .spawn(move || {
                        while let Some(job) = shared.dequeue() {
                            shared.execute(job);
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("tcms-serve-accept".into())
                .spawn(move || loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let shared = Arc::clone(&shared);
                            // Connection threads are detached; they exit on
                            // client EOF or the shutdown flag (read timeout).
                            let _ = std::thread::Builder::new()
                                .name("tcms-serve-conn".into())
                                .spawn(move || serve_connection(&shared, stream));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            if shared.shutting_down() {
                                return;
                            }
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => {
                            if shared.shutting_down() {
                                return;
                            }
                            std::thread::sleep(Duration::from_millis(10));
                        }
                    }
                })
                .expect("spawn accept thread")
        };
        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals shutdown: stop accepting, drain the queue, then exit.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
    }

    /// Whether a shutdown has been requested (by [`Server::shutdown`] or
    /// a client's `shutdown` action).
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down()
    }

    /// Blocks until the daemon has shut down, then persists the cache
    /// snapshot when a cache directory is configured.
    ///
    /// # Errors
    ///
    /// Propagates snapshot write failures.
    pub fn wait(mut self) -> std::io::Result<()> {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(dir) = &self.shared.config.cache_dir {
            persist::save_snapshot(dir, &self.shared.cache.entries())?;
        }
        Ok(())
    }

    /// Reads one observability counter (test and stats support).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.shared.lock_metrics().counter(name)
    }

    /// The result cache (test and stats support).
    #[must_use]
    pub fn cache(&self) -> &SchedCache {
        &self.shared.cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::parse_response;

    const SAMPLE: &str = "resource add delay=1 area=1\nresource mul delay=2 area=4 pipelined\n\
        process A\nblock body time=8\nop m0 mul\nop a0 add\nedge m0 a0\n\
        process B\nblock body time=8\nop m0 mul\nop a0 add\nedge m0 a0\n";

    fn start() -> (Server, SocketAddr) {
        let server = Server::start(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();
        (server, addr)
    }

    fn roundtrip(addr: SocketAddr, request: &str) -> crate::protocol::Response {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        parse_response(line.trim_end()).unwrap()
    }

    fn schedule_req(id: &str) -> String {
        let design = SAMPLE.replace('\n', "\\n");
        format!(r#"{{"id":"{id}","action":"schedule","design":"{design}","all_global":4}}"#)
    }

    #[test]
    fn ping_and_stats_answer_inline() {
        let (server, addr) = start();
        let pong = roundtrip(addr, r#"{"id":1,"action":"ping"}"#);
        assert!(pong.is_ok());
        assert_eq!(pong.body.get("pong"), Some(&JsonValue::Bool(true)));
        let stats = roundtrip(addr, r#"{"id":2,"action":"stats"}"#);
        assert!(stats.is_ok());
        assert!(stats.body.get("cache_entries").is_some());
        server.shutdown();
        server.wait().unwrap();
    }

    #[test]
    fn schedule_misses_then_hits() {
        let (server, addr) = start();
        let first = roundtrip(addr, &schedule_req("m"));
        assert!(first.is_ok(), "{:?}", first.error);
        assert_eq!(first.cache(), Some("miss"));
        let second = roundtrip(addr, &schedule_req("h"));
        assert!(second.is_ok());
        assert_eq!(second.cache(), Some("hit"));
        assert_eq!(first.output(), second.output());
        assert_eq!(server.counter("serve.scheduler.runs"), 1);
        assert_eq!(server.counter("serve.cache.hit"), 1);
        server.shutdown();
        server.wait().unwrap();
    }

    #[test]
    fn malformed_design_gets_typed_error() {
        let (server, addr) = start();
        let resp = roundtrip(
            addr,
            r#"{"id":"x","action":"schedule","design":"resource add delay=zero"}"#,
        );
        let (class, code, _) = resp.error.unwrap();
        assert_eq!((class.as_str(), code), ("malformed", 4));
        server.shutdown();
        server.wait().unwrap();
    }

    #[test]
    fn zero_deadline_expires_in_queue() {
        let (server, addr) = start();
        let design = SAMPLE.replace('\n', "\\n");
        let resp = roundtrip(
            addr,
            &format!(r#"{{"id":"d","action":"schedule","design":"{design}","deadline_ms":0}}"#),
        );
        let (class, code, _) = resp.error.unwrap();
        assert_eq!((class.as_str(), code), ("deadline", 408));
        server.shutdown();
        server.wait().unwrap();
    }

    #[test]
    fn client_shutdown_request_stops_the_daemon() {
        let (server, addr) = start();
        let resp = roundtrip(addr, r#"{"id":"bye","action":"shutdown"}"#);
        assert!(resp.is_ok());
        server.wait().unwrap();
    }

    #[test]
    fn snapshot_round_trips_through_restart() {
        let dir = std::env::temp_dir().join(format!("tcms_serve_snap_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = ServeConfig {
            workers: 2,
            cache_dir: Some(dir.clone()),
            ..ServeConfig::default()
        };
        let server = Server::start(config.clone()).unwrap();
        let addr = server.local_addr();
        assert_eq!(roundtrip(addr, &schedule_req("a")).cache(), Some("miss"));
        server.shutdown();
        server.wait().unwrap();

        let server = Server::start(config).unwrap();
        let addr = server.local_addr();
        // Warm from the snapshot: the very first request is a hit.
        assert_eq!(roundtrip(addr, &schedule_req("b")).cache(), Some("hit"));
        assert_eq!(server.counter("serve.scheduler.runs"), 0);
        server.shutdown();
        server.wait().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
