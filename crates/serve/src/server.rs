//! The daemon: TCP accept loop, bounded job queue, worker pool.
//!
//! # Request lifecycle
//!
//! 1. A connection thread reads one NDJSON line and parses it.
//!    Control actions (`ping`, `stats`, `shutdown`) are answered inline;
//!    work actions (`schedule`, `simulate`) are pushed onto the bounded
//!    job queue.
//! 2. If the queue is full the request is **shed immediately** with a
//!    typed `overloaded` (429) error — backpressure is explicit, the
//!    daemon never buffers unboundedly.
//! 3. A worker pops the job. If its deadline already expired in the
//!    queue it answers `deadline` (408) without scheduling; otherwise
//!    the remaining time becomes the scheduler's [`RunBudget`]
//!    wall-clock watchdog, so a deadline also bounds the IFDS run
//!    itself.
//! 4. The worker runs the shared [`pipeline`](crate::pipeline) —
//!    through the content-addressed cache — and writes the response
//!    line back on the requesting connection. Responses arrive in
//!    completion order; the echoed `id` correlates them.
//!
//! Scheduling work itself fans out onto the vendored rayon pool, which
//! is safe to enter from several worker threads at once (a contended
//! parallel region degrades to inline sequential execution with
//! bit-identical results).
//!
//! # Fleet mode
//!
//! With a [`FleetConfig`], this daemon becomes one node of a
//! distributed fleet (see [`crate::fleet`]): work requests are routed
//! by consistent hash of their content address (non-owners proxy the
//! raw line to the owner and relay the response verbatim, so any node
//! answers byte-identically), fresh results are pushed to the key's
//! replica set, and a background anti-entropy loop keeps peer caches
//! convergent. An optional HTTP/1.1 listener (`http_listen`) serves
//! the same objects over `POST /schedule`, `GET /stats` and
//! `GET /healthz`.

use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead as _, BufReader, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs as _};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tcms_fds::RunBudget;
use tcms_obs::json::JsonValue;
use tcms_obs::{MetricsRegistry, NoopRecorder};

use crate::cache::{CacheKey, Disposition, SchedCache};
use crate::error::ServeError;
use crate::fleet::{http, sync, Fleet, FleetConfig, RouteMode};
use crate::journal::{JournalEntry, JournalStats, JournalWriter, DEFAULT_JOURNAL_BUFFER};
use crate::persist;
use crate::pipeline::{
    request_cache_key, schedule_request, simulate_request, ExecContext, ScheduleOptions,
};
use crate::protocol::{
    error_line, output_body, parse_request, parse_response, success_line, Action, Request,
    RequestId,
};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7733` (`:0` picks a free port).
    pub listen: String,
    /// Worker threads (0 = automatic).
    pub workers: usize,
    /// Bounded job-queue capacity; beyond it requests are shed.
    pub queue_capacity: usize,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Cache shard count (lock granularity).
    pub cache_shards: usize,
    /// Directory for the persistent cache snapshot (`--cache-dir`).
    pub cache_dir: Option<PathBuf>,
    /// Deadline applied to requests that carry none, in milliseconds.
    pub default_deadline_ms: Option<u64>,
    /// Directory for the workload journal (`--journal-dir`); `None`
    /// disables capture.
    pub journal_dir: Option<PathBuf>,
    /// Bounded worker→journal channel capacity; when full, entries are
    /// dropped (and counted), never queued.
    pub journal_buffer: usize,
    /// Live-journal rotation threshold in bytes (0 disables rotation).
    pub journal_rotate_bytes: u64,
    /// Request-line size cap in bytes: a longer line is answered with a
    /// typed `too-large` (413) error and the connection is closed, so a
    /// misbehaving client can never grow a read buffer unboundedly.
    pub max_request_bytes: usize,
    /// Honour the chaos panic marker
    /// ([`PANIC_MARKER`](crate::pipeline::PANIC_MARKER)) in design text —
    /// test/bench harness support, never enabled in production serving.
    pub fault_marker: bool,
    /// Route designs with at least this many operations through the
    /// feedback-guided partitioner (0 disables automatic routing; an
    /// explicit `partition` request field always wins). Defaults to
    /// [`crate::pipeline::DEFAULT_AUTO_PARTITION_OPS`], matching the
    /// one-shot CLI so responses stay bit-identical.
    pub auto_partition_ops: usize,
    /// Fleet membership (`--peers`); `None` runs a standalone daemon.
    pub fleet: Option<FleetConfig>,
    /// HTTP/1.1 listen address (`--http`); `None` disables the HTTP
    /// front-end.
    pub http_listen: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            listen: "127.0.0.1:0".into(),
            workers: 0,
            queue_capacity: 256,
            cache_capacity: 1024,
            cache_shards: 8,
            cache_dir: None,
            default_deadline_ms: None,
            journal_dir: None,
            journal_buffer: DEFAULT_JOURNAL_BUFFER,
            journal_rotate_bytes: 0,
            max_request_bytes: 1 << 20,
            fault_marker: false,
            auto_partition_ops: crate::pipeline::DEFAULT_AUTO_PARTITION_OPS,
            fleet: None,
            http_listen: None,
        }
    }
}

/// One queued work item.
struct Job {
    id: RequestId,
    action: Action,
    enqueued: Instant,
    deadline: Option<Duration>,
    conn: Responder,
    /// The raw request line, kept when journaling is on (the journal
    /// replays verbatim bytes, not a re-serialisation) or when fleet
    /// proxying may forward it verbatim to the owner.
    raw: Option<String>,
}

/// Where a finished job's response line goes: straight onto an NDJSON
/// connection, or through a channel to a caller waiting synchronously
/// (the HTTP front-end).
enum Responder {
    /// The NDJSON connection the request arrived on.
    Conn(Arc<ConnWriter>),
    /// A rendezvous channel whose receiver blocks for the line.
    Channel(mpsc::SyncSender<String>),
}

impl Responder {
    /// Delivers one response line. Errors are swallowed in both arms: a
    /// vanished client must not take a worker down.
    fn send(&self, line: &str) {
        match self {
            Responder::Conn(conn) => conn.send(line),
            Responder::Channel(tx) => {
                let _ = tx.try_send(line.to_owned());
            }
        }
    }
}

/// The write half of a connection; workers share it via `Arc`.
struct ConnWriter {
    stream: Mutex<TcpStream>,
}

impl ConnWriter {
    /// Writes one response line. Errors are swallowed: a vanished client
    /// must not take a worker down.
    fn send(&self, line: &str) {
        let mut stream = self.stream.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = stream.write_all(line.as_bytes());
        let _ = stream.write_all(b"\n");
        let _ = stream.flush();
    }
}

struct Shared {
    config: ServeConfig,
    cache: SchedCache,
    metrics: Mutex<MetricsRegistry>,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    journal: Option<JournalWriter>,
    inflight: AtomicU64,
    /// Fleet routing/sync state, when this daemon is a fleet node.
    fleet: Option<Fleet>,
    /// When the last fully successful anti-entropy exchange finished
    /// (drives the `sync.lag_ms` stats field).
    last_sync: Mutex<Option<Instant>>,
}

impl Shared {
    fn lock_metrics(&self) -> std::sync::MutexGuard<'_, MetricsRegistry> {
        self.metrics.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_queue(&self) -> std::sync::MutexGuard<'_, VecDeque<Job>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Pushes a job, shedding when the bounded queue is full.
    fn enqueue(&self, job: Job) -> Result<(), ServeError> {
        if self.shutting_down() {
            return Err(ServeError::ShuttingDown);
        }
        let depth = {
            let mut queue = self.lock_queue();
            if queue.len() >= self.config.queue_capacity {
                return Err(ServeError::Overloaded {
                    capacity: self.config.queue_capacity,
                });
            }
            queue.push_back(job);
            queue.len()
        };
        self.queue_cv.notify_one();
        #[allow(clippy::cast_precision_loss)]
        self.lock_metrics()
            .gauge_set("serve.queue.depth", depth as f64);
        Ok(())
    }

    /// Pops the next job, blocking until one arrives or shutdown drains
    /// the queue empty.
    fn dequeue(&self) -> Option<Job> {
        let mut queue = self.lock_queue();
        loop {
            if let Some(job) = queue.pop_front() {
                let depth = queue.len();
                drop(queue);
                #[allow(clippy::cast_precision_loss)]
                self.lock_metrics()
                    .gauge_set("serve.queue.depth", depth as f64);
                return Some(job);
            }
            if self.shutting_down() {
                return None;
            }
            queue = self
                .queue_cv
                .wait_timeout(queue, Duration::from_millis(50))
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }

    /// Hands one finished (or shed) request to the journal writer, when
    /// journaling is on. `raw` is populated by the connection thread only
    /// in that case, so both `None`s mean "capture disabled".
    fn journal_record(&self, raw: Option<String>, entry: impl FnOnce(String) -> JournalEntry) {
        let (Some(journal), Some(request)) = (&self.journal, raw) else {
            return;
        };
        journal.record(entry(request));
    }

    /// Runs one job end to end and writes its response.
    fn execute(&self, job: Job) {
        let waited = job.enqueued.elapsed();
        let queue_us = dur_us(waited);
        let action = action_label(&job.action);
        #[allow(clippy::cast_precision_loss)]
        self.lock_metrics()
            .histogram_record("serve.queue_wait_us", queue_us as f64);
        let budget = match job.deadline {
            Some(deadline) => {
                let Some(remaining) = deadline.checked_sub(waited) else {
                    let waited_ms = u64::try_from(waited.as_millis()).unwrap_or(u64::MAX);
                    let err = ServeError::DeadlineExpired { waited_ms };
                    self.lock_metrics().counter_add("serve.errors", 1);
                    // Journal before responding: once the client sees the
                    // response it may read `journal_stats`, which must
                    // already account for this request.
                    self.journal_record(job.raw, |request| JournalEntry {
                        action,
                        key: None,
                        disposition: None,
                        outcome: err.class(),
                        code: err.code(),
                        queue_us,
                        exec_us: 0,
                        total_us: queue_us,
                        request,
                    });
                    job.conn.send(&error_line(&job.id, &err));
                    return;
                };
                RunBudget {
                    wall_deadline: Some(remaining),
                    ..RunBudget::UNLIMITED
                }
            }
            None => RunBudget::UNLIMITED,
        };
        let cache = (self.config.cache_capacity > 0).then_some(&self.cache);
        let ctx = ExecContext {
            cache,
            budget,
            rec: &NoopRecorder,
            fault_marker: self.config.fault_marker,
            auto_partition_ops: self.config.auto_partition_ops,
        };
        // Only work actions reach the queue; everything else is inline.
        if !matches!(
            job.action,
            Action::Schedule { .. } | Action::Simulate { .. }
        ) {
            return;
        }
        // Fleet routing: a non-owner in proxy mode forwards the raw line
        // to the key's owner and relays the answer verbatim, so the whole
        // fleet shares one logical cache with byte-identical responses.
        if let Some(line) = self.route_remote(&job, action, queue_us, budget.wall_deadline) {
            job.conn.send(&line);
            return;
        }
        let inflight = self.inflight.fetch_add(1, Ordering::SeqCst) + 1;
        #[allow(clippy::cast_precision_loss)]
        self.lock_metrics()
            .gauge_set("serve.inflight", inflight as f64);
        let exec_start = Instant::now();
        // Supervision: a panicking scheduler job becomes a typed 500 for
        // the one request that caused it — the worker, the daemon and the
        // connection all survive. (The cache's own drop guard has already
        // resolved any in-flight slot during the unwind, so waiters are
        // never wedged.) This is the single place a panic is counted.
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match &job.action {
                Action::Schedule { design, opts } => schedule_request(design, opts, &ctx)
                    .map(|a| (a.text, a.disposition, a.fresh_iterations, a.cache_key)),
                Action::Simulate { design, opts } => simulate_request(design, opts, &ctx)
                    .map(|a| (a.text, a.disposition, a.fresh_iterations, a.cache_key)),
                _ => unreachable!("non-work actions never reach the queue"),
            }))
            .unwrap_or_else(|payload| {
                self.lock_metrics().counter_add("serve.worker.panics", 1);
                Err(ServeError::from_panic(payload.as_ref()))
            });
        let exec_us = dur_us(exec_start.elapsed());
        let inflight = self.inflight.fetch_sub(1, Ordering::SeqCst) - 1;
        let total_us = dur_us(job.enqueued.elapsed());
        let disposition = outcome.as_ref().ok().map(|(_, d, _, _)| *d);
        {
            let mut m = self.lock_metrics();
            #[allow(clippy::cast_precision_loss)]
            {
                m.gauge_set("serve.inflight", inflight as f64);
                m.histogram_record(exec_metric(disposition), exec_us as f64);
                m.histogram_record(total_metric(disposition), total_us as f64);
                m.histogram_record("serve.latency_ms", total_us as f64 / 1_000.0);
            }
        }
        match outcome {
            Ok((output, disposition, fresh_iterations, key)) => {
                {
                    let mut m = self.lock_metrics();
                    m.counter_add(disposition_metric(disposition), 1);
                    if disposition == Disposition::Miss {
                        m.counter_add("serve.scheduler.runs", 1);
                    }
                    m.counter_add("serve.ifds.iterations", fresh_iterations);
                }
                // Journal before responding (non-blocking `try_send`): a
                // client that has seen the response may immediately read
                // `journal_stats`, which must already count this request.
                self.journal_record(job.raw, |request| JournalEntry {
                    action,
                    key,
                    disposition: Some(disposition),
                    outcome: "ok",
                    code: 0,
                    queue_us,
                    exec_us,
                    total_us,
                    request,
                });
                // The rendered report's iteration count mirrors the run
                // that produced the cache entry; `fresh_iterations` in
                // the metrics counts only *new* IFDS work.
                job.conn.send(&success_line(
                    &job.id,
                    output_body(&output, disposition, fresh_iterations),
                ));
                // Replicate a freshly computed entry to the key's other
                // replicas — after the response, never on the hot path.
                if disposition == Disposition::Miss {
                    if let Some(key) = key {
                        self.replicate_fresh(key);
                    }
                }
            }
            Err(e) => {
                self.lock_metrics().counter_add("serve.errors", 1);
                self.journal_record(job.raw, |request| JournalEntry {
                    action,
                    key: None,
                    disposition: None,
                    outcome: e.class(),
                    code: e.code(),
                    queue_us,
                    exec_us,
                    total_us,
                    request,
                });
                job.conn.send(&error_line(&job.id, &e));
            }
        }
    }

    /// The content address a work request would execute under, when the
    /// request is routable: cache enabled, not degrade-laddered, and the
    /// design parses. Mirrors the executed key exactly (see
    /// [`request_cache_key`]), which is what makes routing safe — a
    /// mismatch would only cost a proxy hop, never a wrong answer.
    fn work_cache_key(&self, action: &Action) -> Option<CacheKey> {
        if self.config.cache_capacity == 0 {
            return None;
        }
        let (design, opts) = match action {
            Action::Schedule { design, opts } => (design, opts.clone()),
            // Simulation caches only its embedded *schedule*; the key is
            // built from the schedule-shaped slice of the options.
            Action::Simulate { design, opts } => (
                design,
                ScheduleOptions {
                    all_global: opts.all_global,
                    globals: opts.globals.clone(),
                    ..ScheduleOptions::default()
                },
            ),
            _ => return None,
        };
        request_cache_key(design, &opts, self.config.auto_partition_ops)
            .ok()
            .flatten()
    }

    /// Proxies a job to its owner when this node is not in the key's
    /// replica set. Returns the response line to relay (verbatim owner
    /// bytes, or a typed `peer-unavailable` error); `None` means
    /// "execute locally" — standalone daemon, local route mode, owned
    /// key, unroutable request, or a dead owner (health gates effort,
    /// never placement).
    fn route_remote(
        &self,
        job: &Job,
        action: &'static str,
        queue_us: u64,
        remaining: Option<Duration>,
    ) -> Option<String> {
        let fleet = self.fleet.as_ref()?;
        if fleet.config.route != RouteMode::Proxy {
            return None;
        }
        let raw = job.raw.as_deref()?;
        let key = self.work_cache_key(&job.action)?;
        if fleet.is_local(&key) {
            return None;
        }
        let owner = fleet.owner(&key).to_owned();
        if !fleet.membership.is_alive(&owner) {
            // Dead owner: compute locally rather than fail the client —
            // bit-identical by construction, just duplicated work that
            // anti-entropy will reconcile.
            self.lock_metrics()
                .counter_add("serve.fleet.local_fallback", 1);
            return None;
        }
        let read_timeout = remaining.map_or(PROXY_READ_TIMEOUT, |r| r.min(PROXY_READ_TIMEOUT));
        let start = Instant::now();
        match peer_request(&owner, raw, read_timeout) {
            Ok(line) => {
                let rtt = dur_us(start.elapsed());
                fleet.membership.record_ok(&owner, rtt);
                {
                    let mut m = self.lock_metrics();
                    m.counter_add("serve.fleet.proxied", 1);
                    #[allow(clippy::cast_precision_loss)]
                    m.histogram_record("serve.fleet.peer.rtt_us", rtt as f64);
                }
                self.journal_record(job.raw.clone(), |request| JournalEntry {
                    action,
                    key: Some(key),
                    disposition: None,
                    outcome: "proxied",
                    code: 0,
                    queue_us,
                    exec_us: rtt,
                    total_us: dur_us(job.enqueued.elapsed()),
                    request,
                });
                Some(line)
            }
            Err(_) => {
                fleet.membership.record_failure(&owner);
                let err = ServeError::PeerUnavailable { peer: owner };
                {
                    let mut m = self.lock_metrics();
                    m.counter_add("serve.errors", 1);
                    m.counter_add("serve.fleet.proxy_failures", 1);
                }
                self.journal_record(job.raw.clone(), |request| JournalEntry {
                    action,
                    key: Some(key),
                    disposition: None,
                    outcome: err.class(),
                    code: err.code(),
                    queue_us,
                    exec_us: dur_us(start.elapsed()),
                    total_us: dur_us(job.enqueued.elapsed()),
                    request,
                });
                Some(error_line(&job.id, &err))
            }
        }
    }

    /// Pushes one freshly computed entry to the key's other replicas.
    /// Best effort: a failed push is counted and left to anti-entropy.
    fn replicate_fresh(&self, key: CacheKey) {
        let Some(fleet) = &self.fleet else { return };
        let Some(value) = self.cache.peek(&key) else {
            return;
        };
        let entry = [(key, value)];
        let line = sync::push_request_line("repl", &entry);
        for peer in fleet.replica_peers(&key) {
            if !fleet.membership.is_alive(peer) {
                continue; // sync catches the peer up when it rejoins
            }
            let start = Instant::now();
            match peer_request(peer, &line, SYNC_READ_TIMEOUT) {
                Ok(_) => {
                    fleet.membership.record_ok(peer, dur_us(start.elapsed()));
                    self.lock_metrics().counter_add("serve.fleet.pushed", 1);
                }
                Err(_) => {
                    fleet.membership.record_failure(peer);
                    self.lock_metrics()
                        .counter_add("serve.fleet.push_failures", 1);
                }
            }
        }
    }

    /// One anti-entropy exchange with one peer: digest comparison, then
    /// a pull of every diverging shard over the same connection.
    fn sync_with_peer(&self, peer: &str) -> std::io::Result<sync::SyncOutcome> {
        let mut conn = PeerConn::connect(peer, PEER_CONNECT_TIMEOUT, SYNC_READ_TIMEOUT)?;
        let line = conn.request(&sync::digest_request_line("sync-digest"))?;
        let theirs = sync::parse_digests(&peer_body(&line)?)
            .ok_or_else(|| invalid_peer("malformed digest response"))?;
        sync::pull_round(&self.cache, &theirs, |shard| {
            let line = conn.request(&sync::pull_shard_request_line("sync-pull", shard))?;
            let (entries, rejected) = sync::parse_entries(&peer_body(&line)?)
                .ok_or_else(|| invalid_peer("malformed entries response"))?;
            if rejected > 0 {
                self.lock_metrics()
                    .counter_add("serve.fleet.sync.rejected", rejected as u64);
            }
            Ok(entries)
        })
    }

    /// One full anti-entropy round against every peer. Doubles as the
    /// failure detector: successful exchanges resurrect dead peers,
    /// failed ones advance their death counters.
    fn sync_all_peers(&self) {
        let Some(fleet) = &self.fleet else { return };
        let peers: Vec<String> = fleet.membership.addrs().map(str::to_owned).collect();
        let mut all_ok = !peers.is_empty();
        for peer in &peers {
            if self.shutting_down() {
                return;
            }
            let start = Instant::now();
            match self.sync_with_peer(peer) {
                Ok(outcome) => {
                    let rtt = dur_us(start.elapsed());
                    fleet.membership.record_ok(peer, rtt);
                    let mut m = self.lock_metrics();
                    m.counter_add("serve.fleet.sync.rounds", 1);
                    m.counter_add(
                        "serve.fleet.sync.shards_pulled",
                        outcome.shards_pulled as u64,
                    );
                    m.counter_add("serve.fleet.sync.entries_applied", outcome.applied as u64);
                    #[allow(clippy::cast_precision_loss)]
                    m.histogram_record("serve.fleet.peer.rtt_us", rtt as f64);
                }
                Err(_) => {
                    all_ok = false;
                    fleet.membership.record_failure(peer);
                    self.lock_metrics()
                        .counter_add("serve.fleet.sync.failures", 1);
                }
            }
        }
        if all_ok {
            *self
                .last_sync
                .lock()
                .unwrap_or_else(PoisonError::into_inner) = Some(Instant::now());
        }
    }

    /// The daemon-statistics response body.
    fn stats_body(&self) -> BTreeMap<String, JsonValue> {
        let cache = self.cache.stats();
        let metrics = self.lock_metrics();
        let num = |n: u64| {
            #[allow(clippy::cast_precision_loss)]
            JsonValue::Number(n as f64)
        };
        let mut body = BTreeMap::new();
        body.insert("cache_entries".into(), num(self.cache.len() as u64));
        body.insert("cache_hits".into(), num(cache.hits));
        body.insert("cache_misses".into(), num(cache.misses));
        body.insert("cache_coalesced".into(), num(cache.coalesced));
        body.insert("cache_evictions".into(), num(cache.evictions));
        body.insert("cache_hit_rate".into(), JsonValue::Number(cache.hit_rate()));
        body.insert("requests".into(), num(metrics.counter("serve.requests")));
        body.insert(
            "scheduler_runs".into(),
            num(metrics.counter("serve.scheduler.runs")),
        );
        body.insert(
            "ifds_iterations".into(),
            num(metrics.counter("serve.ifds.iterations")),
        );
        body.insert("errors".into(), num(metrics.counter("serve.errors")));
        body.insert(
            "worker_panics".into(),
            num(metrics.counter("serve.worker.panics")),
        );
        body.insert(
            "worker_restarts".into(),
            num(metrics.counter("serve.worker.restarts")),
        );
        body.insert(
            "queue_depth".into(),
            JsonValue::Number(metrics.gauge("serve.queue.depth").unwrap_or(0.0)),
        );
        body.insert(
            "inflight".into(),
            JsonValue::Number(metrics.gauge("serve.inflight").unwrap_or(0.0)),
        );
        body.insert("workers".into(), num(self.config.workers as u64));
        // Per-shard cache occupancy/evictions: lock-granularity hot
        // spots show up here long before the global hit rate moves.
        body.insert(
            "cache_shards".into(),
            JsonValue::Array(
                cache
                    .shards
                    .iter()
                    .map(|s| {
                        let mut m = BTreeMap::new();
                        m.insert("occupancy".into(), num(s.occupancy as u64));
                        m.insert("capacity".into(), num(s.capacity as u64));
                        m.insert("evictions".into(), num(s.evictions));
                        JsonValue::Object(m)
                    })
                    .collect(),
            ),
        );
        // The full registry in wire form: `tcms stats` reconstructs a
        // MetricsRegistry from this and renders the standard summary.
        body.insert("metrics".into(), metrics.to_json());
        let mut journal = BTreeMap::new();
        match &self.journal {
            Some(w) => {
                let stats = w.stats();
                journal.insert("enabled".into(), JsonValue::Bool(true));
                journal.insert("recorded".into(), num(stats.recorded));
                journal.insert("dropped".into(), num(stats.dropped));
                journal.insert("rotated".into(), num(stats.rotated));
                journal.insert(
                    "path".into(),
                    JsonValue::String(w.path().display().to_string()),
                );
            }
            None => {
                journal.insert("enabled".into(), JsonValue::Bool(false));
            }
        }
        body.insert("journal".into(), JsonValue::Object(journal));
        let mut fleet = BTreeMap::new();
        match &self.fleet {
            Some(f) => {
                fleet.insert("enabled".into(), JsonValue::Bool(true));
                fleet.insert("self".into(), JsonValue::String(f.config.self_addr.clone()));
                fleet.insert(
                    "route".into(),
                    JsonValue::String(f.config.route.as_str().into()),
                );
                fleet.insert("replicas".into(), num(f.ring.replicas() as u64));
                for (field, counter) in [
                    ("proxied", "serve.fleet.proxied"),
                    ("proxy_failures", "serve.fleet.proxy_failures"),
                    ("local_fallback", "serve.fleet.local_fallback"),
                    ("pushed", "serve.fleet.pushed"),
                    ("push_failures", "serve.fleet.push_failures"),
                ] {
                    fleet.insert(field.into(), num(metrics.counter(counter)));
                }
                let mut sync = BTreeMap::new();
                for (field, counter) in [
                    ("rounds", "serve.fleet.sync.rounds"),
                    ("shards_pulled", "serve.fleet.sync.shards_pulled"),
                    ("entries_applied", "serve.fleet.sync.entries_applied"),
                    ("failures", "serve.fleet.sync.failures"),
                    ("push_applied", "serve.fleet.sync.push_applied"),
                    ("push_rejected", "serve.fleet.sync.push_rejected"),
                ] {
                    sync.insert(field.into(), num(metrics.counter(counter)));
                }
                let lag = self
                    .last_sync
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .map(|at| {
                        #[allow(clippy::cast_precision_loss)]
                        let ms = at.elapsed().as_millis() as f64;
                        JsonValue::Number(ms)
                    });
                sync.insert("lag_ms".into(), lag.unwrap_or(JsonValue::Null));
                fleet.insert("sync".into(), JsonValue::Object(sync));
                fleet.insert(
                    "peers".into(),
                    JsonValue::Array(
                        f.membership
                            .snapshot()
                            .into_iter()
                            .map(|(addr, health)| {
                                let mut p = BTreeMap::new();
                                p.insert("addr".into(), JsonValue::String(addr));
                                p.insert("alive".into(), JsonValue::Bool(health.is_alive()));
                                p.insert("ok".into(), num(health.ok_count));
                                p.insert("failures".into(), num(health.failure_count));
                                p.insert(
                                    "consecutive_failures".into(),
                                    num(u64::from(health.consecutive_failures)),
                                );
                                p.insert(
                                    "last_rtt_us".into(),
                                    health.last_rtt_us.map_or(JsonValue::Null, num),
                                );
                                JsonValue::Object(p)
                            })
                            .collect(),
                    ),
                );
            }
            None => {
                fleet.insert("enabled".into(), JsonValue::Bool(false));
            }
        }
        body.insert("fleet".into(), JsonValue::Object(fleet));
        body
    }
}

fn dur_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Connect timeout for any peer dial.
const PEER_CONNECT_TIMEOUT: Duration = Duration::from_secs(1);
/// Read timeout for sync/push exchanges (bounded, off the hot path).
const SYNC_READ_TIMEOUT: Duration = Duration::from_secs(5);
/// Read-timeout ceiling for proxied work (the request's own deadline
/// tightens it further).
const PROXY_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// A short-lived NDJSON connection to a fleet peer.
struct PeerConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl PeerConn {
    fn connect(addr: &str, connect: Duration, read: Duration) -> std::io::Result<PeerConn> {
        let mut last = None;
        let mut stream = None;
        for sock in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&sock, connect) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(e) => last = Some(e),
            }
        }
        let stream = stream.ok_or_else(|| {
            last.unwrap_or_else(|| invalid_peer("peer address resolved to nothing"))
        })?;
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(Some(read))?;
        stream.set_write_timeout(Some(read))?;
        Ok(PeerConn {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// One request/response exchange. Peers answer in order on a
    /// connection, so a plain `read_line` pairs correctly.
    fn request(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut out = String::new();
        if self.reader.read_line(&mut out)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "peer closed the connection",
            ));
        }
        while out.ends_with('\n') || out.ends_with('\r') {
            out.pop();
        }
        Ok(out)
    }
}

/// One-shot request to a peer on a fresh connection.
fn peer_request(addr: &str, line: &str, read: Duration) -> std::io::Result<String> {
    PeerConn::connect(addr, PEER_CONNECT_TIMEOUT, read)?.request(line)
}

fn invalid_peer(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_owned())
}

/// Parses a peer's response line and extracts its body, converting
/// protocol-level failures into I/O errors (the sync loop treats every
/// failure mode uniformly: count it, mark the peer, move on).
fn peer_body(line: &str) -> std::io::Result<JsonValue> {
    let resp = parse_response(line).map_err(|e| invalid_peer(&e))?;
    if let Some((class, code, msg)) = resp.error {
        return Err(invalid_peer(&format!("peer error {class} ({code}): {msg}")));
    }
    Ok(resp.body)
}

fn action_label(action: &Action) -> &'static str {
    match action {
        Action::Schedule { .. } => "schedule",
        Action::Simulate { .. } => "simulate",
        Action::Stats => "stats",
        Action::Ping => "ping",
        Action::Shutdown => "shutdown",
        Action::SyncDigest => "sync_digest",
        Action::SyncPull { .. } => "sync_pull",
        Action::SyncPush { .. } => "sync_push",
    }
}

fn request_metric(action: &Action) -> &'static str {
    match action {
        Action::Schedule { .. } => "serve.requests.schedule",
        Action::Simulate { .. } => "serve.requests.simulate",
        Action::Stats => "serve.requests.stats",
        Action::Ping => "serve.requests.ping",
        Action::Shutdown => "serve.requests.shutdown",
        Action::SyncDigest => "serve.requests.sync_digest",
        Action::SyncPull { .. } => "serve.requests.sync_pull",
        Action::SyncPush { .. } => "serve.requests.sync_push",
    }
}

fn disposition_metric(d: Disposition) -> &'static str {
    match d {
        Disposition::Hit => "serve.cache.hit",
        Disposition::Miss => "serve.cache.miss",
        Disposition::Coalesced => "serve.cache.coalesced",
    }
}

/// Execution-time histogram, split by cache disposition (`None` = the
/// request errored): a hit's ~µs lookup and a miss's ~ms scheduler run
/// must not share buckets.
fn exec_metric(d: Option<Disposition>) -> &'static str {
    match d {
        Some(Disposition::Hit) => "serve.exec_us.hit",
        Some(Disposition::Miss) => "serve.exec_us.miss",
        Some(Disposition::Coalesced) => "serve.exec_us.coalesced",
        None => "serve.exec_us.error",
    }
}

/// Arrival-to-response histogram, split like [`exec_metric`].
fn total_metric(d: Option<Disposition>) -> &'static str {
    match d {
        Some(Disposition::Hit) => "serve.total_us.hit",
        Some(Disposition::Miss) => "serve.total_us.miss",
        Some(Disposition::Coalesced) => "serve.total_us.coalesced",
        None => "serve.total_us.error",
    }
}

/// Answers every non-work action inline (control and sync actions never
/// touch the job queue — a full queue must not stall health checks or
/// anti-entropy). Returns `Err(action)` to hand work actions back to the
/// caller for queueing.
fn inline_response(shared: &Shared, id: &RequestId, action: Action) -> Result<String, Action> {
    match action {
        Action::Ping => {
            let mut body = BTreeMap::new();
            body.insert("pong".into(), JsonValue::Bool(true));
            Ok(success_line(id, body))
        }
        Action::Stats => Ok(success_line(id, shared.stats_body())),
        Action::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.queue_cv.notify_all();
            Ok(success_line(id, BTreeMap::new()))
        }
        Action::SyncDigest => Ok(success_line(
            id,
            sync::digest_body(&sync::digests(&shared.cache)),
        )),
        Action::SyncPull { shard, key } => {
            let entries = match (shard, key) {
                (Some(s), _) => {
                    if s >= sync::SYNC_SHARDS {
                        let err = ServeError::BadRequest(format!(
                            "`shard` must be below {}",
                            sync::SYNC_SHARDS
                        ));
                        return Ok(error_line(id, &err));
                    }
                    sync::shard_entries(&shared.cache, s)
                }
                (None, Some(k)) => shared
                    .cache
                    .peek(&k)
                    .map(|v| vec![(k, v)])
                    .unwrap_or_default(),
                // The parser enforces exactly one selector.
                (None, None) => Vec::new(),
            };
            Ok(success_line(id, sync::entries_body(&entries)))
        }
        Action::SyncPush { entries, rejected } => {
            let applied = sync::apply_entries(&shared.cache, entries);
            {
                let mut m = shared.lock_metrics();
                m.counter_add("serve.fleet.sync.push_applied", applied as u64);
                m.counter_add("serve.fleet.sync.push_rejected", rejected as u64);
            }
            let mut body = BTreeMap::new();
            #[allow(clippy::cast_precision_loss)]
            body.insert("applied".into(), JsonValue::Number(applied as f64));
            #[allow(clippy::cast_precision_loss)]
            body.insert("rejected".into(), JsonValue::Number(rejected as f64));
            Ok(success_line(id, body))
        }
        work @ (Action::Schedule { .. } | Action::Simulate { .. }) => Err(work),
    }
}

/// Serves one connection: read lines, answer control actions inline,
/// queue work actions.
fn serve_connection(shared: &Arc<Shared>, stream: TcpStream) {
    // The read timeout doubles as the shutdown poll interval. Nagle is
    // off: a one-line response must not wait out the client's delayed
    // ACK (a ~40 ms floor on every request without this).
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let writer = Arc::new(ConnWriter {
        stream: Mutex::new(match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        }),
    });
    let mut reader = BufReader::new(stream);
    // Byte-level line assembly instead of `read_line`: the accumulator
    // is capped at `max_request_bytes` (a longer line is a typed 413 and
    // the connection closes), partial reads across timeout polls are
    // never lost, and invalid UTF-8 is a typed error, not a dead
    // connection.
    let cap = shared.config.max_request_bytes.max(1);
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = match reader.fill_buf() {
            Ok([]) => return, // client closed
            Ok(buf) => buf,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.shutting_down() {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        let newline = buf.iter().position(|&b| b == b'\n');
        let chunk = &buf[..newline.unwrap_or(buf.len())];
        if line.len() + chunk.len() > cap {
            // Reject and close: after an oversized line there is no
            // trustworthy record boundary to resynchronise on, and
            // discarding until the next newline would itself be
            // unbounded work on attacker-controlled input.
            shared.lock_metrics().counter_add("serve.requests", 1);
            shared.lock_metrics().counter_add("serve.errors", 1);
            writer.send(&error_line(
                &JsonValue::Null,
                &ServeError::TooLarge { limit: cap },
            ));
            return;
        }
        line.extend_from_slice(chunk);
        let consumed = chunk.len() + usize::from(newline.is_some());
        reader.consume(consumed);
        if newline.is_none() {
            continue; // line still incomplete; keep accumulating
        }
        let taken = std::mem::take(&mut line);
        let Ok(text) = String::from_utf8(taken) else {
            shared.lock_metrics().counter_add("serve.requests", 1);
            shared.lock_metrics().counter_add("serve.errors", 1);
            writer.send(&error_line(
                &JsonValue::Null,
                &ServeError::BadRequest("request line is not valid UTF-8".into()),
            ));
            continue;
        };
        if text.trim().is_empty() {
            continue;
        }
        shared.lock_metrics().counter_add("serve.requests", 1);
        let request = match parse_request(text.trim_end()) {
            Ok(r) => r,
            Err((id, e)) => {
                shared.lock_metrics().counter_add("serve.errors", 1);
                writer.send(&error_line(&id, &e));
                continue;
            }
        };
        let Request {
            id,
            action,
            deadline_ms,
        } = request;
        shared
            .lock_metrics()
            .counter_add(request_metric(&action), 1);
        match inline_response(shared, &id, action) {
            Ok(line) => writer.send(&line),
            Err(work) => {
                let deadline = deadline_ms
                    .or(shared.config.default_deadline_ms)
                    .map(Duration::from_millis);
                // Keep the raw bytes when journaling (the journal replays
                // the request verbatim, not a re-serialisation) or in a
                // fleet (proxying forwards the owner the same bytes).
                let raw = (shared.journal.is_some() || shared.fleet.is_some())
                    .then(|| text.trim_end().to_owned());
                let action_name = action_label(&work);
                let job = Job {
                    id: id.clone(),
                    action: work,
                    enqueued: Instant::now(),
                    deadline,
                    conn: Responder::Conn(Arc::clone(&writer)),
                    raw: raw.clone(),
                };
                if let Err(e) = shared.enqueue(job) {
                    shared.lock_metrics().counter_add("serve.errors", 1);
                    if matches!(e, ServeError::Overloaded { .. }) {
                        shared.lock_metrics().counter_add("serve.shed", 1);
                    }
                    // Shed requests are journaled too (and before the
                    // response goes out): a replay that omits them would
                    // understate the offered load.
                    shared.journal_record(raw, |request| JournalEntry {
                        action: action_name,
                        key: None,
                        disposition: None,
                        outcome: e.class(),
                        code: e.code(),
                        queue_us: 0,
                        exec_us: 0,
                        total_us: 0,
                        request,
                    });
                    writer.send(&error_line(&id, &e));
                }
            }
        }
    }
}

/// Outcome of reading one HTTP request head off a connection.
enum HeadRead {
    /// The head text, up to and including the blank line.
    Head(String),
    /// Client went away (EOF, I/O error, or shutdown) — just close.
    Closed,
    /// The head outgrew `max_request_bytes`.
    Oversized,
}

/// Reads bytes until the header-terminating blank line, leaving any
/// body bytes unconsumed in the reader.
fn read_http_head(shared: &Shared, reader: &mut BufReader<TcpStream>, cap: usize) -> HeadRead {
    let mut head: Vec<u8> = Vec::new();
    loop {
        let buf = match reader.fill_buf() {
            Ok([]) => return HeadRead::Closed,
            Ok(buf) => buf,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.shutting_down() {
                    return HeadRead::Closed;
                }
                continue;
            }
            Err(_) => return HeadRead::Closed,
        };
        // Byte-wise scan so the terminator is found even when it
        // straddles a read boundary, and body bytes are never consumed.
        let mut consumed = 0;
        let mut done = false;
        for &b in buf {
            consumed += 1;
            head.push(b);
            if head.len() > cap {
                reader.consume(consumed);
                return HeadRead::Oversized;
            }
            if head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n") {
                done = true;
                break;
            }
        }
        reader.consume(consumed);
        if done {
            match String::from_utf8(head) {
                Ok(text) => return HeadRead::Head(text),
                // Non-UTF-8 heads parse as malformed downstream.
                Err(_) => return HeadRead::Head(String::new()),
            }
        }
    }
}

/// Reads exactly `len` body bytes, tolerating timeout polls.
fn read_http_body(
    shared: &Shared,
    reader: &mut BufReader<TcpStream>,
    len: usize,
) -> Option<Vec<u8>> {
    let mut body = vec![0u8; len];
    let mut got = 0;
    while got < len {
        match reader.read(&mut body[got..]) {
            Ok(0) => return None,
            Ok(n) => got += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.shutting_down() {
                    return None;
                }
            }
            Err(_) => return None,
        }
    }
    Some(body)
}

/// The `/schedule` route implies `"action":"schedule"` when the body
/// omits it; anything else (including an unparseable body) passes
/// through untouched and produces its typed error downstream.
fn inject_default_action(line: &str) -> String {
    let Ok(JsonValue::Object(mut map)) = tcms_obs::json::parse(line) else {
        return line.to_owned();
    };
    map.entry("action".to_owned())
        .or_insert_with(|| JsonValue::String("schedule".into()));
    tcms_obs::json::to_string(&JsonValue::Object(map))
}

/// Runs one HTTP work request end to end: parse, answer inline or queue
/// behind the same bounded queue as NDJSON work, and map the NDJSON
/// response line onto an HTTP status. The body IS the NDJSON line — the
/// fleet's bit-identicality guarantee carries over to HTTP verbatim.
fn http_work(shared: &Arc<Shared>, body: &[u8]) -> (u16, String) {
    let null = JsonValue::Null;
    let Ok(text) = std::str::from_utf8(body) else {
        let err = ServeError::BadRequest("request body is not valid UTF-8".into());
        shared.lock_metrics().counter_add("serve.errors", 1);
        return (http::status_of(&err), error_line(&null, &err) + "\n");
    };
    // NDJSON wants one line; JSON newlines only ever separate tokens,
    // where a space is equivalent.
    let line = inject_default_action(text.replace(['\r', '\n'], " ").trim());
    let request = match parse_request(&line) {
        Ok(r) => r,
        Err((id, e)) => {
            shared.lock_metrics().counter_add("serve.errors", 1);
            return (http::status_of(&e), error_line(&id, &e) + "\n");
        }
    };
    let Request {
        id,
        action,
        deadline_ms,
    } = request;
    shared
        .lock_metrics()
        .counter_add(request_metric(&action), 1);
    match inline_response(shared, &id, action) {
        Ok(resp) => (http_status_of_line(&resp), resp + "\n"),
        Err(work) => {
            let deadline = deadline_ms
                .or(shared.config.default_deadline_ms)
                .map(Duration::from_millis);
            let action_name = action_label(&work);
            let raw = Some(line.clone());
            // Rendezvous channel: the worker's `send` hands the line
            // straight to this thread, which blocks like an NDJSON
            // client would. Every queued job sends exactly one line
            // (shutdown drains the queue through `execute`), so `recv`
            // cannot wedge.
            let (tx, rx) = mpsc::sync_channel(1);
            let job = Job {
                id: id.clone(),
                action: work,
                enqueued: Instant::now(),
                deadline,
                conn: Responder::Channel(tx),
                raw: raw.clone(),
            };
            if let Err(e) = shared.enqueue(job) {
                shared.lock_metrics().counter_add("serve.errors", 1);
                if matches!(e, ServeError::Overloaded { .. }) {
                    shared.lock_metrics().counter_add("serve.shed", 1);
                }
                shared.journal_record(raw, |request| JournalEntry {
                    action: action_name,
                    key: None,
                    disposition: None,
                    outcome: e.class(),
                    code: e.code(),
                    queue_us: 0,
                    exec_us: 0,
                    total_us: 0,
                    request,
                });
                return (http::status_of(&e), error_line(&id, &e) + "\n");
            }
            match rx.recv() {
                Ok(resp) => (http_status_of_line(&resp), resp + "\n"),
                Err(_) => {
                    let err = ServeError::Internal("worker dropped the response".into());
                    (http::status_of(&err), error_line(&id, &err) + "\n")
                }
            }
        }
    }
}

/// The HTTP status an NDJSON response line maps onto: 200 for `ok`,
/// otherwise the error's own HTTP-shaped code (see
/// [`http::status_of`]).
fn http_status_of_line(line: &str) -> u16 {
    match parse_response(line) {
        Ok(resp) => resp
            .error
            .map_or(200, |(_, code, _)| http::status_of_code(code)),
        Err(_) => 200,
    }
}

/// Routes one parsed HTTP request.
fn http_dispatch(shared: &Arc<Shared>, head: &http::RequestHead, body: &[u8]) -> (u16, String) {
    let null = JsonValue::Null;
    {
        let mut m = shared.lock_metrics();
        m.counter_add("serve.requests", 1);
        m.counter_add("serve.fleet.http.requests", 1);
    }
    match (head.method.as_str(), head.path.as_str()) {
        ("GET", "/healthz") => {
            if shared.shutting_down() {
                (503, error_line(&null, &ServeError::ShuttingDown) + "\n")
            } else {
                (200, success_line(&null, BTreeMap::new()) + "\n")
            }
        }
        ("GET", "/stats") => {
            shared.lock_metrics().counter_add("serve.requests.stats", 1);
            (200, success_line(&null, shared.stats_body()) + "\n")
        }
        ("POST", "/schedule") => http_work(shared, body),
        (_, "/healthz" | "/stats" | "/schedule") => {
            let err = ServeError::BadRequest(format!(
                "method {} not allowed on {}",
                head.method, head.path
            ));
            (405, error_line(&null, &err) + "\n")
        }
        (_, path) => (
            404,
            error_line(&null, &ServeError::UnknownAction(path.to_owned())) + "\n",
        ),
    }
}

/// Serves one HTTP connection: a loop of head → body → dispatch →
/// response, honouring keep-alive. Pure parsing/rendering lives in
/// [`crate::fleet::http`]; this is just the socket plumbing.
fn serve_http_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut write = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let cap = shared.config.max_request_bytes.max(1);
    loop {
        let head_text = match read_http_head(shared, &mut reader, cap) {
            HeadRead::Head(h) => h,
            HeadRead::Closed => return,
            HeadRead::Oversized => {
                let err = ServeError::TooLarge { limit: cap };
                let body = error_line(&JsonValue::Null, &err) + "\n";
                let _ = write.write_all(&http::response_bytes(413, &body, false));
                return;
            }
        };
        let head = match http::parse_request_head(&head_text) {
            Ok(h) => h,
            Err(msg) => {
                let err = ServeError::BadRequest(format!("malformed HTTP request: {msg}"));
                let body = error_line(&JsonValue::Null, &err) + "\n";
                let _ = write.write_all(&http::response_bytes(400, &body, false));
                return;
            }
        };
        if head.content_length > cap {
            let err = ServeError::TooLarge { limit: cap };
            let body = error_line(&JsonValue::Null, &err) + "\n";
            let _ = write.write_all(&http::response_bytes(413, &body, false));
            return;
        }
        let Some(body) = read_http_body(shared, &mut reader, head.content_length) else {
            return;
        };
        let (status, line) = http_dispatch(shared, &head, &body);
        let _ = write.write_all(&http::response_bytes(status, &line, head.keep_alive));
        let _ = write.flush();
        if !head.keep_alive {
            return;
        }
    }
}

/// A running daemon. Dropping it without [`Server::wait`] leaves threads
/// running; call [`Server::shutdown`] then [`Server::wait`] (or let a
/// client's `shutdown` request trigger it) for a clean exit that also
/// persists the cache snapshot.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    http_addr: Option<SocketAddr>,
    accept: Option<JoinHandle<()>>,
    http_accept: Option<JoinHandle<()>>,
    sync_loop: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Spawns a nonblocking accept loop that hands each connection to
/// `handler` on a detached thread (connection threads exit on client
/// EOF or the shutdown flag via their read timeout).
fn spawn_accept_loop(
    shared: &Arc<Shared>,
    listener: TcpListener,
    name: &str,
    handler: fn(&Arc<Shared>, TcpStream),
) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    let conn_name = format!("{name}-conn");
    std::thread::Builder::new()
        .name(format!("{name}-accept"))
        .spawn(move || loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    let shared = Arc::clone(&shared);
                    let _ = std::thread::Builder::new()
                        .name(conn_name.clone())
                        .spawn(move || handler(&shared, stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if shared.shutting_down() {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => {
                    if shared.shutting_down() {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        })
        .expect("spawn accept thread")
}

impl Server {
    /// Binds the listener, loads the cache snapshot (when a cache
    /// directory is configured) and spawns the accept loop and worker
    /// pool.
    ///
    /// # Errors
    ///
    /// Propagates bind and snapshot I/O failures.
    pub fn start(mut config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.listen)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let http_listener = match &config.http_listen {
            Some(http) => {
                let l = TcpListener::bind(http)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let http_addr = match &http_listener {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };
        if config.workers == 0 {
            config.workers = std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
                .clamp(2, 8);
        }
        let cache = SchedCache::new(config.cache_capacity.max(1), config.cache_shards.max(1));
        let mut metrics = MetricsRegistry::default();
        if let Some(dir) = &config.cache_dir {
            let report = persist::load_snapshot(dir, &cache)?;
            metrics.counter_add("serve.snapshot.loaded", report.loaded as u64);
            metrics.counter_add("serve.snapshot.skipped", report.skipped as u64);
            metrics.counter_add("serve.snapshot.quarantined", u64::from(report.quarantined));
        }
        let journal = match &config.journal_dir {
            Some(dir) => Some(JournalWriter::open_with(
                dir,
                config.journal_buffer,
                config.journal_rotate_bytes,
            )?),
            None => None,
        };
        let fleet = config.fleet.clone().map(Fleet::new);
        let shared = Arc::new(Shared {
            config,
            cache,
            metrics: Mutex::new(metrics),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            journal,
            inflight: AtomicU64::new(0),
            fleet,
            last_sync: Mutex::new(None),
        });
        let workers = (0..shared.config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tcms-serve-worker-{i}"))
                    .spawn(move || loop {
                        // Outer supervision ring: `execute` already
                        // converts job panics into typed 500s, so this
                        // only trips on a panic outside the job path
                        // (queue accounting, journaling). The loop *is*
                        // the restart — same thread, fresh iteration —
                        // so a worker slot is never permanently lost.
                        let drained =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                while let Some(job) = shared.dequeue() {
                                    shared.execute(job);
                                }
                            }));
                        match drained {
                            Ok(()) => return,
                            Err(_) => {
                                shared
                                    .lock_metrics()
                                    .counter_add("serve.worker.restarts", 1);
                            }
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        let accept = spawn_accept_loop(&shared, listener, "tcms-serve", serve_connection);
        let http_accept = http_listener
            .map(|l| spawn_accept_loop(&shared, l, "tcms-serve-http", serve_http_connection));
        // The anti-entropy loop: sleep in short shutdown-checked steps,
        // then exchange digests with every peer.
        let sync_loop = shared
            .fleet
            .as_ref()
            .and_then(|f| f.config.sync_interval)
            .map(|interval| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name("tcms-serve-sync".into())
                    .spawn(move || loop {
                        let mut slept = Duration::ZERO;
                        while slept < interval {
                            if shared.shutting_down() {
                                return;
                            }
                            let step = Duration::from_millis(50).min(interval - slept);
                            std::thread::sleep(step);
                            slept += step;
                        }
                        shared.sync_all_peers();
                    })
                    .expect("spawn sync thread")
            });
        Ok(Server {
            shared,
            addr,
            http_addr,
            accept: Some(accept),
            http_accept,
            sync_loop,
            workers,
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound HTTP address, when the HTTP front-end is enabled.
    #[must_use]
    pub fn local_http_addr(&self) -> Option<SocketAddr> {
        self.http_addr
    }

    /// Runs one synchronous anti-entropy round against every peer.
    /// Tests and the bench harness drive convergence deterministically
    /// with this instead of waiting out the background interval.
    pub fn sync_now(&self) {
        self.shared.sync_all_peers();
    }

    /// Signals shutdown: stop accepting, drain the queue, then exit.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
    }

    /// Whether a shutdown has been requested (by [`Server::shutdown`] or
    /// a client's `shutdown` action).
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down()
    }

    /// Blocks until the daemon has shut down, then persists the cache
    /// snapshot when a cache directory is configured.
    ///
    /// # Errors
    ///
    /// Propagates snapshot write failures.
    pub fn wait(mut self) -> std::io::Result<()> {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.http_accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.sync_loop.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Close the journal after the workers: every executed request
        // reaches the writer before the file is flushed and joined.
        if let Some(journal) = &self.shared.journal {
            journal.close();
        }
        if let Some(dir) = &self.shared.config.cache_dir {
            persist::save_snapshot(dir, &self.shared.cache.entries())?;
        }
        Ok(())
    }

    /// Reads one observability counter (test and stats support).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.shared.lock_metrics().counter(name)
    }

    /// Journal accepted/dropped counters, when capture is enabled.
    #[must_use]
    pub fn journal_stats(&self) -> Option<JournalStats> {
        self.shared.journal.as_ref().map(JournalWriter::stats)
    }

    /// The result cache (test and stats support).
    #[must_use]
    pub fn cache(&self) -> &SchedCache {
        &self.shared.cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::HashRing;

    const SAMPLE: &str = "resource add delay=1 area=1\nresource mul delay=2 area=4 pipelined\n\
        process A\nblock body time=8\nop m0 mul\nop a0 add\nedge m0 a0\n\
        process B\nblock body time=8\nop m0 mul\nop a0 add\nedge m0 a0\n";

    fn start() -> (Server, SocketAddr) {
        let server = Server::start(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();
        (server, addr)
    }

    fn roundtrip(addr: SocketAddr, request: &str) -> crate::protocol::Response {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        parse_response(line.trim_end()).unwrap()
    }

    fn schedule_req(id: &str) -> String {
        let design = SAMPLE.replace('\n', "\\n");
        format!(r#"{{"id":"{id}","action":"schedule","design":"{design}","all_global":4}}"#)
    }

    #[test]
    fn ping_and_stats_answer_inline() {
        let (server, addr) = start();
        let pong = roundtrip(addr, r#"{"id":1,"action":"ping"}"#);
        assert!(pong.is_ok());
        assert_eq!(pong.body.get("pong"), Some(&JsonValue::Bool(true)));
        let stats = roundtrip(addr, r#"{"id":2,"action":"stats"}"#);
        assert!(stats.is_ok());
        assert!(stats.body.get("cache_entries").is_some());
        server.shutdown();
        server.wait().unwrap();
    }

    #[test]
    fn schedule_misses_then_hits() {
        let (server, addr) = start();
        let first = roundtrip(addr, &schedule_req("m"));
        assert!(first.is_ok(), "{:?}", first.error);
        assert_eq!(first.cache(), Some("miss"));
        let second = roundtrip(addr, &schedule_req("h"));
        assert!(second.is_ok());
        assert_eq!(second.cache(), Some("hit"));
        assert_eq!(first.output(), second.output());
        assert_eq!(server.counter("serve.scheduler.runs"), 1);
        assert_eq!(server.counter("serve.cache.hit"), 1);
        server.shutdown();
        server.wait().unwrap();
    }

    #[test]
    fn malformed_design_gets_typed_error() {
        let (server, addr) = start();
        let resp = roundtrip(
            addr,
            r#"{"id":"x","action":"schedule","design":"resource add delay=zero"}"#,
        );
        let (class, code, _) = resp.error.unwrap();
        assert_eq!((class.as_str(), code), ("malformed", 4));
        server.shutdown();
        server.wait().unwrap();
    }

    #[test]
    fn zero_deadline_expires_in_queue() {
        let (server, addr) = start();
        let design = SAMPLE.replace('\n', "\\n");
        let resp = roundtrip(
            addr,
            &format!(r#"{{"id":"d","action":"schedule","design":"{design}","deadline_ms":0}}"#),
        );
        let (class, code, _) = resp.error.unwrap();
        assert_eq!((class.as_str(), code), ("deadline", 408));
        server.shutdown();
        server.wait().unwrap();
    }

    #[test]
    fn client_shutdown_request_stops_the_daemon() {
        let (server, addr) = start();
        let resp = roundtrip(addr, r#"{"id":"bye","action":"shutdown"}"#);
        assert!(resp.is_ok());
        server.wait().unwrap();
    }

    #[test]
    fn oversized_request_line_gets_typed_413_then_close() {
        let server = Server::start(ServeConfig {
            workers: 1,
            max_request_bytes: 256,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        let huge = format!(
            r#"{{"id":"big","action":"schedule","design":"{}"}}"#,
            "x".repeat(4096)
        );
        stream.write_all(huge.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let resp = parse_response(line.trim_end()).unwrap();
        let (class, code, _) = resp.error.unwrap();
        assert_eq!((class.as_str(), code), ("too-large", 413));
        // The connection is closed after the rejection: there is no
        // trustworthy record boundary to resynchronise on.
        line.clear();
        assert_eq!(reader.read_line(&mut line).unwrap(), 0);
        // The daemon itself is fine.
        let pong = roundtrip(addr, r#"{"id":"p","action":"ping"}"#);
        assert!(pong.is_ok());
        server.shutdown();
        server.wait().unwrap();
    }

    #[test]
    fn invalid_utf8_gets_typed_error_and_the_connection_survives() {
        let (server, addr) = start();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"\xff\xfe{\"id\":1}\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let resp = parse_response(line.trim_end()).unwrap();
        let (class, code, msg) = resp.error.unwrap();
        assert_eq!((class.as_str(), code), ("bad-request", 2));
        assert!(msg.contains("UTF-8"), "{msg}");
        // Same connection keeps working.
        stream
            .write_all(b"{\"id\":\"p\",\"action\":\"ping\"}\n")
            .unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(parse_response(line.trim_end()).unwrap().is_ok());
        server.shutdown();
        server.wait().unwrap();
    }

    #[test]
    fn worker_panic_becomes_typed_500_and_daemon_survives() {
        let server = Server::start(ServeConfig {
            workers: 2,
            fault_marker: true,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();
        let marked = format!("{SAMPLE}{}\n", crate::pipeline::PANIC_MARKER).replace('\n', "\\n");
        let req =
            format!(r#"{{"id":"boom","action":"schedule","design":"{marked}","all_global":4}}"#);
        let resp = roundtrip(addr, &req);
        let (class, code, _) = resp
            .error
            .clone()
            .unwrap_or_else(|| panic!("expected a typed error, got body {:?}", resp.body));
        assert_eq!((class.as_str(), code), ("internal", 500));
        assert_eq!(server.counter("serve.worker.panics"), 1);
        // The panic neither killed the daemon nor wedged the
        // single-flight slot: an unmarked request schedules fine.
        let ok = roundtrip(addr, &schedule_req("after"));
        assert!(ok.is_ok(), "{:?}", ok.error);
        // A retry of the marked design panics again (the failure was
        // not cached) and is again survivable.
        let again = roundtrip(addr, &req);
        assert_eq!(again.error.unwrap().1, 500);
        assert_eq!(server.counter("serve.worker.panics"), 2);
        let stats = roundtrip(addr, r#"{"id":"st","action":"stats"}"#);
        assert_eq!(
            stats.body.get("worker_panics").and_then(JsonValue::as_f64),
            Some(2.0)
        );
        server.shutdown();
        server.wait().unwrap();
    }

    #[test]
    fn journal_captures_work_requests_with_dispositions() {
        let dir = std::env::temp_dir().join(format!("tcms_serve_jnl_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let server = Server::start(ServeConfig {
            workers: 2,
            journal_dir: Some(dir.clone()),
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();
        assert!(roundtrip(addr, &schedule_req("a")).is_ok());
        assert!(roundtrip(addr, &schedule_req("b")).is_ok());
        let bad = roundtrip(
            addr,
            r#"{"id":"x","action":"schedule","design":"resource add delay=zero"}"#,
        );
        assert!(!bad.is_ok());
        // Control actions stay out of the journal.
        assert!(roundtrip(addr, r#"{"id":"p","action":"ping"}"#).is_ok());
        let stats = server.journal_stats().unwrap();
        assert_eq!((stats.recorded, stats.dropped), (3, 0));
        server.shutdown();
        server.wait().unwrap();

        let (records, report) =
            crate::journal::load_journal(&crate::journal::journal_path(&dir)).unwrap();
        assert_eq!(report.loaded, 3);
        assert!(!report.torn_tail);
        let outcomes: Vec<_> = records
            .iter()
            .map(|r| (r.outcome.as_str(), r.disposition.as_deref(), r.code))
            .collect();
        assert_eq!(
            outcomes,
            vec![
                ("ok", Some("miss"), 0),
                ("ok", Some("hit"), 0),
                ("malformed", None, 4),
            ]
        );
        // Successful records carry the content address; the raw request
        // line rides along verbatim for replay.
        assert!(records[0].spec.is_some() && records[0].config.is_some());
        assert_eq!(records[0].spec, records[1].spec);
        assert_eq!(records[0].request, schedule_req("a"));
        assert!(records[2].spec.is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_body_exposes_shards_metrics_and_journal() {
        let (server, addr) = start();
        assert!(roundtrip(addr, &schedule_req("s")).is_ok());
        let stats = roundtrip(addr, r#"{"id":"st","action":"stats"}"#);
        assert!(stats.is_ok());
        let shards = stats.body.get("cache_shards").unwrap().as_array().unwrap();
        assert_eq!(shards.len(), ServeConfig::default().cache_shards);
        let occupied: f64 = shards
            .iter()
            .map(|s| s.get("occupancy").unwrap().as_f64().unwrap())
            .sum();
        assert_eq!(occupied, 1.0, "one entry lives in exactly one shard");
        let metrics = stats.body.get("metrics").unwrap();
        let registry = MetricsRegistry::from_json(metrics).unwrap();
        assert_eq!(registry.counter("serve.requests.schedule"), 1);
        assert_eq!(registry.counter("serve.cache.miss"), 1);
        assert!(registry
            .histograms()
            .any(|(name, _)| name == "serve.exec_us.miss"));
        let journal = stats.body.get("journal").unwrap();
        assert_eq!(journal.get("enabled"), Some(&JsonValue::Bool(false)));
        server.shutdown();
        server.wait().unwrap();
    }

    /// Reserves `n` distinct loopback ports by bind-and-drop: fleet
    /// members must know every peer's address before any of them start.
    fn reserve_ports(n: usize) -> Vec<String> {
        (0..n)
            .map(|_| {
                let listener = TcpListener::bind("127.0.0.1:0").unwrap();
                let addr = listener.local_addr().unwrap();
                drop(listener);
                format!("127.0.0.1:{}", addr.port())
            })
            .collect()
    }

    fn start_fleet(n: usize, replicas: usize) -> (Vec<Server>, Vec<String>) {
        let peers = reserve_ports(n);
        let servers = peers
            .iter()
            .map(|addr| {
                Server::start(ServeConfig {
                    listen: addr.clone(),
                    workers: 2,
                    fleet: Some(FleetConfig {
                        replicas,
                        sync_interval: None, // tests drive sync_now()
                        ..FleetConfig::new(addr.clone(), peers.clone())
                    }),
                    ..ServeConfig::default()
                })
                .unwrap()
            })
            .collect();
        (servers, peers)
    }

    fn sample_key() -> CacheKey {
        request_cache_key(
            SAMPLE,
            &ScheduleOptions {
                all_global: Some(4),
                ..ScheduleOptions::default()
            },
            crate::pipeline::DEFAULT_AUTO_PARTITION_OPS,
        )
        .unwrap()
        .unwrap()
    }

    #[test]
    fn fleet_proxies_to_the_owner_and_every_node_answers_identically() {
        let (servers, peers) = start_fleet(3, 2);
        let key = sample_key();
        let ring = HashRing::new(&peers, 2);
        let owner_idx = peers.iter().position(|p| p == ring.owner(&key)).unwrap();
        let non_owner_idx = (0..3)
            .find(|i| !ring.is_replica(&key, &peers[*i]))
            .expect("3 nodes, R=2: exactly one non-replica");
        // A request to a NON-owner is proxied: the owner computes and
        // caches, the non-owner relays verbatim.
        let first = roundtrip(servers[non_owner_idx].local_addr(), &schedule_req("f"));
        assert!(first.is_ok(), "{:?}", first.error);
        assert_eq!(first.cache(), Some("miss"));
        assert_eq!(servers[non_owner_idx].counter("serve.fleet.proxied"), 1);
        assert_eq!(servers[non_owner_idx].counter("serve.scheduler.runs"), 0);
        assert_eq!(servers[owner_idx].counter("serve.scheduler.runs"), 1);
        assert_eq!(servers[owner_idx].cache().len(), 1);
        assert_eq!(servers[non_owner_idx].cache().len(), 0);
        // Replication runs after the response; wait for the fresh entry
        // to land on the backup replica before asserting fleet-wide hits.
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            let replicated = servers
                .iter()
                .filter(|s| s.cache().peek(&key).is_some())
                .count();
            if replicated == 2 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        // Every node now answers the same request with identical bytes,
        // and nothing schedules again anywhere.
        for server in &servers {
            let resp = roundtrip(server.local_addr(), &schedule_req("f"));
            assert_eq!(resp.cache(), Some("hit"), "{:?}", resp.error);
            assert_eq!(resp.output(), first.output());
        }
        let runs: u64 = servers
            .iter()
            .map(|s| s.counter("serve.scheduler.runs"))
            .sum();
        assert_eq!(runs, 1, "one IFDS run serves the whole fleet");
        // The fresh miss was pushed to the other replica (R=2).
        let replicated = servers
            .iter()
            .filter(|s| s.cache().peek(&key).is_some())
            .count();
        assert_eq!(replicated, 2, "owner + one backup hold the entry");
        for server in servers {
            server.shutdown();
            server.wait().unwrap();
        }
    }

    #[test]
    fn sync_now_converges_peers_without_proxying() {
        // R=1: the entry lives only on its owner until anti-entropy runs.
        let (servers, peers) = start_fleet(3, 1);
        let key = sample_key();
        let ring = HashRing::new(&peers, 1);
        let owner_idx = peers.iter().position(|p| p == ring.owner(&key)).unwrap();
        let resp = roundtrip(servers[owner_idx].local_addr(), &schedule_req("s"));
        assert_eq!(resp.cache(), Some("miss"), "{:?}", resp.error);
        let other = (owner_idx + 1) % 3;
        assert_eq!(servers[other].cache().len(), 0);
        servers[other].sync_now();
        assert_eq!(servers[other].cache().len(), 1, "digest pull shipped it");
        assert!(servers[other].counter("serve.fleet.sync.entries_applied") >= 1);
        assert_eq!(servers[other].counter("serve.fleet.sync.rounds"), 2);
        // A second round pulls nothing: digests already agree.
        servers[other].sync_now();
        assert_eq!(
            servers[other].counter("serve.fleet.sync.entries_applied"),
            1
        );
        // And the synced copy answers bit-identically.
        let hit = roundtrip(servers[other].local_addr(), &schedule_req("s2"));
        assert_eq!(hit.cache(), Some("hit"));
        assert_eq!(hit.output(), resp.output());
        for server in servers {
            server.shutdown();
            server.wait().unwrap();
        }
    }

    #[test]
    fn dead_owner_falls_back_to_local_compute_after_detection() {
        let (mut servers, peers) = start_fleet(2, 1);
        let key = sample_key();
        let ring = HashRing::new(&peers, 1);
        let owner_idx = peers.iter().position(|p| p == ring.owner(&key)).unwrap();
        let other = 1 - owner_idx;
        // Kill the owner.
        let owner = servers.remove(owner_idx);
        owner.shutdown();
        owner.wait().unwrap();
        let survivor = servers.pop().unwrap();
        assert_eq!(survivor.local_addr().to_string(), peers[other].clone());
        // Until the death threshold trips, proxy attempts fail typed.
        for _ in 0..crate::fleet::DEATH_THRESHOLD {
            let resp = roundtrip(survivor.local_addr(), &schedule_req("x"));
            let (class, code, _) = resp.error.expect("owner is down");
            assert_eq!((class.as_str(), code), ("peer-unavailable", 503));
        }
        // Now the owner is considered dead: compute locally instead.
        let resp = roundtrip(survivor.local_addr(), &schedule_req("y"));
        assert!(resp.is_ok(), "{:?}", resp.error);
        assert_eq!(resp.cache(), Some("miss"));
        assert_eq!(survivor.counter("serve.fleet.local_fallback"), 1);
        assert_eq!(
            survivor.counter("serve.fleet.proxy_failures"),
            u64::from(crate::fleet::DEATH_THRESHOLD)
        );
        survivor.shutdown();
        survivor.wait().unwrap();
    }

    /// Minimal HTTP/1.1 client: one request, returns (status, body).
    fn http_roundtrip(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        let req = format!(
            "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(req.as_bytes()).unwrap();
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).unwrap();
        let text = String::from_utf8(raw).unwrap();
        let (head, payload) = text.split_once("\r\n\r\n").unwrap();
        let status: u16 = head.split_whitespace().nth(1).unwrap().parse().unwrap();
        (status, payload.to_owned())
    }

    #[test]
    fn http_front_end_serves_schedule_stats_and_healthz() {
        let server = Server::start(ServeConfig {
            workers: 2,
            http_listen: Some("127.0.0.1:0".into()),
            ..ServeConfig::default()
        })
        .unwrap();
        let http = server.local_http_addr().unwrap();
        let (status, body) = http_roundtrip(http, "GET", "/healthz", "");
        assert_eq!(status, 200);
        assert!(parse_response(body.trim_end()).unwrap().is_ok());
        // POST /schedule implies the action; the body is the NDJSON line.
        let design = SAMPLE.replace('\n', "\\n");
        let req = format!(r#"{{"id":"h","design":"{design}","all_global":4}}"#);
        let (status, body) = http_roundtrip(http, "POST", "/schedule", &req);
        assert_eq!(status, 200, "{body}");
        let resp = parse_response(body.trim_end()).unwrap();
        assert_eq!(resp.cache(), Some("miss"));
        // The same request over NDJSON is a cache hit with identical
        // output: one protocol, two framings.
        let tcp = roundtrip(server.local_addr(), &schedule_req("h"));
        assert_eq!(tcp.cache(), Some("hit"));
        assert_eq!(tcp.output(), resp.output());
        // Typed errors map onto HTTP statuses.
        let (status, body) = http_roundtrip(
            http,
            "POST",
            "/schedule",
            r#"{"id":"b","design":"resource add delay=zero"}"#,
        );
        assert_eq!(status, 400, "{body}");
        let (status, _) = http_roundtrip(http, "GET", "/nope", "");
        assert_eq!(status, 404);
        let (status, _) = http_roundtrip(http, "DELETE", "/stats", "");
        assert_eq!(status, 405);
        let (status, body) = http_roundtrip(http, "GET", "/stats", "");
        assert_eq!(status, 200);
        let stats = parse_response(body.trim_end()).unwrap();
        assert!(stats.body.get("fleet").is_some());
        assert_eq!(
            stats.body.get("fleet").unwrap().get("enabled"),
            Some(&JsonValue::Bool(false))
        );
        server.shutdown();
        server.wait().unwrap();
    }

    #[test]
    fn stats_expose_the_fleet_block() {
        let (servers, _) = start_fleet(2, 2);
        let stats = roundtrip(servers[0].local_addr(), r#"{"id":"st","action":"stats"}"#);
        let fleet = stats.body.get("fleet").unwrap();
        assert_eq!(fleet.get("enabled"), Some(&JsonValue::Bool(true)));
        assert_eq!(fleet.get("route"), Some(&JsonValue::String("proxy".into())));
        assert_eq!(fleet.get("replicas").and_then(JsonValue::as_f64), Some(2.0));
        let peers_arr = fleet.get("peers").unwrap().as_array().unwrap();
        assert_eq!(peers_arr.len(), 1, "membership excludes self");
        assert_eq!(peers_arr[0].get("alive"), Some(&JsonValue::Bool(true)));
        let sync = fleet.get("sync").unwrap();
        assert_eq!(sync.get("lag_ms"), Some(&JsonValue::Null), "never synced");
        // The wire document must satisfy the CI validator
        // (`trace_check --stats`) — this pins the two schemas together.
        let rendered = tcms_obs::json::to_string(&stats.body);
        tcms_obs::sink::validate_stats(&rendered).expect("fleet stats schema");
        for server in servers {
            server.shutdown();
            server.wait().unwrap();
        }
    }

    #[test]
    fn snapshot_round_trips_through_restart() {
        let dir = std::env::temp_dir().join(format!("tcms_serve_snap_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = ServeConfig {
            workers: 2,
            cache_dir: Some(dir.clone()),
            ..ServeConfig::default()
        };
        let server = Server::start(config.clone()).unwrap();
        let addr = server.local_addr();
        assert_eq!(roundtrip(addr, &schedule_req("a")).cache(), Some("miss"));
        server.shutdown();
        server.wait().unwrap();

        let server = Server::start(config).unwrap();
        let addr = server.local_addr();
        // Warm from the snapshot: the very first request is a hit.
        assert_eq!(roundtrip(addr, &schedule_req("b")).cache(), Some("hit"));
        assert_eq!(server.counter("serve.scheduler.runs"), 0);
        server.shutdown();
        server.wait().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
