//! Typed failures of the serving pipeline and their wire classification.
//!
//! Every error a request can produce maps to a stable `(class, code)`
//! pair on the wire; the scheduling classes reuse the CLI's documented
//! exit codes so a script driving the daemon and a script driving the
//! one-shot binary branch on the same numbers. The service-only classes
//! use HTTP-flavoured codes (`429` overloaded, `408` deadline) that can
//! never collide with the CLI range.

use std::fmt;

use tcms_core::ScheduleError;

/// A typed failure of the serving pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The request itself was malformed (bad JSON, missing or ill-typed
    /// fields).
    BadRequest(String),
    /// The request named an action this daemon does not implement — a
    /// distinct class (and pinned code) so version-skewed clients can
    /// tell "you sent garbage" from "this daemon is too old".
    UnknownAction(String),
    /// The design text failed to parse or compile.
    Malformed(String),
    /// The sharing specification is invalid for the design.
    Spec(String),
    /// The scheduler failed with a typed [`ScheduleError`].
    Schedule(ScheduleError),
    /// A produced or replayed schedule failed verification.
    Verify(String),
    /// The job queue is full — the request was shed without scheduling
    /// (the 429-style backpressure response).
    Overloaded {
        /// Bounded queue capacity at rejection time.
        capacity: usize,
    },
    /// The per-job deadline expired before a worker picked the job up.
    DeadlineExpired {
        /// How long the job waited in the queue, in milliseconds.
        waited_ms: u64,
    },
    /// The request line exceeded the daemon's size cap and was rejected
    /// before parsing (the read loop must not buffer unboundedly).
    TooLarge {
        /// The configured request-line cap, in bytes.
        limit: usize,
    },
    /// The scheduler panicked while executing this job. The worker
    /// caught the unwind, so the daemon survives; this 500-class error
    /// is what the one bad request gets back.
    Internal(String),
    /// The daemon is shutting down and no longer accepts work.
    ShuttingDown,
    /// The fleet peer owning this request's content address did not
    /// answer (dead, partitioned away, or mid-restart). Retryable: a
    /// later attempt — or another node — may reach the owner or serve
    /// the entry after anti-entropy replicates it.
    PeerUnavailable {
        /// The advertised address of the unreachable owner.
        peer: String,
    },
}

impl ServeError {
    /// The stable wire class of this failure.
    #[must_use]
    pub fn class(&self) -> &'static str {
        match self {
            ServeError::BadRequest(_) => "bad-request",
            ServeError::UnknownAction(_) => "unknown-action",
            ServeError::Malformed(_) => "malformed",
            ServeError::Spec(_) => "spec",
            ServeError::Schedule(e) => match e {
                ScheduleError::Spec(_) => "spec",
                ScheduleError::Infeasible { .. } => "infeasible",
                ScheduleError::BudgetExhausted(_) => "budget",
                ScheduleError::PeriodGridOverflow { .. } => "period-grid",
                ScheduleError::VerificationFailed { .. } => "verify",
            },
            ServeError::Verify(_) => "verify",
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::DeadlineExpired { .. } => "deadline",
            ServeError::TooLarge { .. } => "too-large",
            ServeError::Internal(_) => "internal",
            ServeError::ShuttingDown => "shutting-down",
            ServeError::PeerUnavailable { .. } => "peer-unavailable",
        }
    }

    /// The stable wire code: CLI exit codes for the scheduling classes,
    /// HTTP-flavoured codes for the service-only ones.
    #[must_use]
    pub fn code(&self) -> u16 {
        match self {
            ServeError::BadRequest(_) => 2,
            ServeError::UnknownAction(_) => 404,
            ServeError::Malformed(_) => 4,
            ServeError::Spec(_) | ServeError::Schedule(ScheduleError::Spec(_)) => 5,
            ServeError::Schedule(ScheduleError::Infeasible { .. }) => 6,
            ServeError::Schedule(ScheduleError::BudgetExhausted(_)) => 7,
            ServeError::Schedule(ScheduleError::PeriodGridOverflow { .. }) => 8,
            ServeError::Verify(_)
            | ServeError::Schedule(ScheduleError::VerificationFailed { .. }) => 9,
            ServeError::Overloaded { .. } => 429,
            ServeError::DeadlineExpired { .. } => 408,
            ServeError::TooLarge { .. } => 413,
            ServeError::Internal(_) => 500,
            // Both 503s are "not now, try again" — the *class* string
            // distinguishes a draining daemon from an unreachable fleet
            // owner, and clients base retry decisions on the class.
            ServeError::ShuttingDown | ServeError::PeerUnavailable { .. } => 503,
        }
    }

    /// Extracts a panic payload's message and wraps it as
    /// [`ServeError::Internal`] — the one conversion every
    /// `catch_unwind` site in the daemon shares.
    #[must_use]
    pub fn from_panic(payload: &(dyn std::any::Any + Send)) -> ServeError {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_owned())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_owned());
        ServeError::Internal(msg)
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::UnknownAction(name) => write!(
                f,
                "unknown action `{name}`; this daemon serves schedule, \
                 simulate, stats, ping, shutdown, sync_digest, sync_pull, \
                 sync_push"
            ),
            ServeError::Malformed(msg) => write!(f, "malformed input: {msg}"),
            ServeError::Spec(msg) => write!(f, "invalid sharing spec: {msg}"),
            ServeError::Schedule(e) => write!(f, "scheduling failed: {e}"),
            ServeError::Verify(msg) => write!(f, "schedule verification failed: {msg}"),
            ServeError::Overloaded { capacity } => {
                write!(f, "job queue full ({capacity} jobs); retry later")
            }
            ServeError::DeadlineExpired { waited_ms } => {
                write!(f, "deadline expired after {waited_ms} ms in queue")
            }
            ServeError::TooLarge { limit } => {
                write!(f, "request line exceeds the {limit}-byte cap")
            }
            ServeError::Internal(msg) => {
                write!(f, "internal error (worker panic): {msg}")
            }
            ServeError::ShuttingDown => write!(f, "daemon is shutting down"),
            ServeError::PeerUnavailable { peer } => {
                write!(f, "fleet peer `{peer}` is unavailable; retry another node")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Schedule(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ScheduleError> for ServeError {
    fn from(e: ScheduleError) -> Self {
        ServeError::Schedule(e)
    }
}

impl From<tcms_core::CoreError> for ServeError {
    fn from(e: tcms_core::CoreError) -> Self {
        ServeError::Schedule(ScheduleError::from(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_and_codes_are_stable() {
        let cases: Vec<(ServeError, &str, u16)> = vec![
            (ServeError::BadRequest("x".into()), "bad-request", 2),
            (
                ServeError::UnknownAction("frobnicate".into()),
                "unknown-action",
                404,
            ),
            (ServeError::Malformed("x".into()), "malformed", 4),
            (ServeError::Spec("x".into()), "spec", 5),
            (
                ServeError::Schedule(ScheduleError::Infeasible {
                    block: "P::b".into(),
                    slack: -1,
                    binding_resource: "mul".into(),
                }),
                "infeasible",
                6,
            ),
            (
                ServeError::Schedule(ScheduleError::PeriodGridOverflow {
                    process: "P".into(),
                }),
                "period-grid",
                8,
            ),
            (ServeError::Verify("x".into()), "verify", 9),
            (ServeError::Overloaded { capacity: 4 }, "overloaded", 429),
            (
                ServeError::DeadlineExpired { waited_ms: 9 },
                "deadline",
                408,
            ),
            (ServeError::TooLarge { limit: 4096 }, "too-large", 413),
            (ServeError::Internal("boom".into()), "internal", 500),
            (ServeError::ShuttingDown, "shutting-down", 503),
            (
                ServeError::PeerUnavailable {
                    peer: "127.0.0.1:9999".into(),
                },
                "peer-unavailable",
                503,
            ),
        ];
        for (e, class, code) in cases {
            assert_eq!(e.class(), class, "{e}");
            assert_eq!(e.code(), code, "{e}");
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn from_panic_extracts_str_and_string_payloads() {
        let p = std::panic::catch_unwind(|| panic!("literal message")).unwrap_err();
        assert_eq!(
            ServeError::from_panic(p.as_ref()),
            ServeError::Internal("literal message".into())
        );
        let p = std::panic::catch_unwind(|| panic!("formatted {}", 7)).unwrap_err();
        assert_eq!(
            ServeError::from_panic(p.as_ref()),
            ServeError::Internal("formatted 7".into())
        );
        let p = std::panic::catch_unwind(|| std::panic::panic_any(42u32)).unwrap_err();
        assert_eq!(
            ServeError::from_panic(p.as_ref()),
            ServeError::Internal("non-string panic payload".into())
        );
    }
}
