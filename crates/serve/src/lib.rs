#![warn(missing_docs)]
//! `tcms-serve` — a concurrent scheduling service for the TCMS stack.
//!
//! A long-running daemon (`tcms serve`) that speaks newline-delimited
//! JSON over TCP and dispatches scheduling jobs from a bounded queue
//! onto a worker pool. Its centerpiece is a **content-addressed result
//! cache**: requests are keyed by the canonical hash of their design
//! ([`tcms_ir::canon`]) plus a fingerprint of the scheduling
//! configuration ([`tcms_core::fingerprint`]), so isomorphic designs —
//! any reordering of resource, process, block, op or edge declarations —
//! share one cache entry. Identical in-flight requests are coalesced
//! into a single scheduler run (single-flight dedup), and the cache can
//! persist across restarts as an integrity-checked JSONL snapshot.
//!
//! Module map:
//!
//! * [`protocol`] — the NDJSON wire format: requests, responses, typed
//!   error rendering,
//! * [`pipeline`] — the shared load → spec → schedule → render path
//!   (also used by the one-shot CLI, which is what makes daemon
//!   responses bit-identical to `tcms schedule` output),
//! * [`cache`] — sharded LRU + single-flight dedup,
//! * [`persist`] — the on-disk snapshot (`--cache-dir`),
//! * [`journal`] — the append-only workload journal (`--journal-dir`):
//!   per-request capture off the hot path, crash-tolerant load, the
//!   substrate for deterministic replay,
//! * [`server`] — accept loop, bounded queue, worker pool, deadlines
//!   and backpressure,
//! * [`client`] — a blocking, pipelining client (`tcms client`, the
//!   load generator and the e2e tests) plus [`ServeClient`], the
//!   retrying wrapper with deterministic jittered backoff,
//! * [`chaos`] — a seeded in-process TCP fault proxy (resets, latency
//!   spikes, truncation, mid-write kills) for exercising the failure
//!   model end to end,
//! * [`fleet`] — the distributed fleet: consistent-hash routing over a
//!   static peer list, digest-based snapshot anti-entropy, and the
//!   hand-rolled HTTP/1.1 front-end,
//! * [`stats`] — the human-readable rendering of a `stats` response
//!   (`tcms stats`),
//! * [`error`] — [`ServeError`] with stable wire classes and codes.
//!
//! The crate uses only the standard library plus the workspace's own
//! crates — no external dependencies, per the workspace's offline
//! build constraint.

pub mod cache;
pub mod chaos;
pub mod client;
pub mod error;
pub mod fleet;
pub mod journal;
pub mod persist;
pub mod pipeline;
pub mod protocol;
pub mod server;
pub mod stats;

pub use cache::{CacheKey, CacheStatsSnapshot, Disposition, SchedCache, ShardStats};
pub use chaos::{ChaosProxy, ChaosStats};
pub use client::{
    retryable_code, retryable_error, Client, RetryPolicy, ServeClient, DEFAULT_CONNECT_TIMEOUT,
};
pub use error::ServeError;
pub use fleet::{Fleet, FleetConfig, HashRing, Membership, RouteMode, SYNC_SHARDS};
pub use journal::{
    load_journal, load_journal_dir, JournalEntry, JournalLoadReport, JournalRecord, JournalStats,
    JournalWriter,
};
pub use pipeline::{
    request_cache_key, schedule_request, simulate_request, ExecContext, ScheduleArtifacts,
    ScheduleOptions, SimulateArtifacts, SimulateOptions, DEFAULT_AUTO_PARTITION_OPS, PANIC_MARKER,
};
pub use protocol::{Action, Request, Response};
pub use server::{ServeConfig, Server};
pub use stats::render_stats;
