//! A blocking NDJSON client for the daemon.
//!
//! Supports pipelining: send any number of requests, then collect
//! responses and match them by id (the daemon answers in completion
//! order).
//!
//! Two layers:
//!
//! - [`Client`] is the bare transport: one connection, no retries.
//!   `connect` applies a 5-second connect timeout by default so a
//!   black-holed address can never block a caller indefinitely.
//! - [`ServeClient`] wraps it with a [`RetryPolicy`]: bounded,
//!   seed-deterministic jittered-backoff retries of queue-full (429)
//!   responses, `peer-unavailable` (503) fleet errors and transient
//!   transport failures, reconnecting as needed. Retrying is **safe**
//!   because work requests are idempotent: a schedule request is
//!   content-addressed by its `SpecHash` + config fingerprint, so
//!   re-sending it can only re-read (or re-create) the same cache
//!   entry — never double-apply anything. Typed request errors (bad
//!   request, malformed design, infeasible, …) are real answers and are
//!   never retried; neither is a `shutting-down` 503, since that daemon
//!   is going away. The two 503s share a code and are told apart by
//!   their wire *class*.
//!
//! [`ServeClient`] accepts several addresses ([`ServeClient::with_addrs`])
//! and rotates to the next one on a connect failure, transport error or
//! `peer-unavailable` answer — against a fleet, any healthy node can
//! serve any request (bit-identically), so failover is free. Queue-full
//! backpressure stays on the same node: every fleet member shares one
//! logical cache, so a full queue is load, not damage.

use std::collections::BTreeMap;
use std::io::{BufRead as _, BufReader, Write as _};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use tcms_obs::json::{self, JsonValue};

use crate::pipeline::{ScheduleOptions, SimulateOptions};
use crate::protocol::{parse_response, Response};
use tcms_core::PartitionCount;

/// A connected client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// Renders a schedule request line.
#[must_use]
pub fn schedule_request_line(
    id: &str,
    design: &str,
    opts: &ScheduleOptions,
    deadline_ms: Option<u64>,
) -> String {
    let mut map = common_fields(id, design, opts.all_global, &opts.globals, deadline_ms);
    map.insert("action".into(), JsonValue::String("schedule".into()));
    map.insert("gantt".into(), JsonValue::Bool(opts.gantt));
    map.insert("degrade".into(), JsonValue::Bool(opts.degrade));
    #[allow(clippy::cast_precision_loss)]
    map.insert("verify".into(), JsonValue::Number(opts.verify as f64));
    match opts.partition {
        None => {}
        Some(PartitionCount::Auto) => {
            map.insert("partition".into(), JsonValue::String("auto".into()));
        }
        #[allow(clippy::cast_precision_loss)]
        Some(PartitionCount::Fixed(k)) => {
            map.insert("partition".into(), JsonValue::Number(k as f64));
        }
    }
    json::to_string(&JsonValue::Object(map))
}

/// Renders a simulate request line.
#[must_use]
pub fn simulate_request_line(
    id: &str,
    design: &str,
    opts: &SimulateOptions,
    deadline_ms: Option<u64>,
) -> String {
    let mut map = common_fields(id, design, opts.all_global, &opts.globals, deadline_ms);
    map.insert("action".into(), JsonValue::String("simulate".into()));
    #[allow(clippy::cast_precision_loss)]
    {
        map.insert("horizon".into(), JsonValue::Number(opts.horizon as f64));
        map.insert("seed".into(), JsonValue::Number(opts.seed as f64));
        map.insert("mean_gap".into(), JsonValue::Number(opts.mean_gap as f64));
    }
    json::to_string(&JsonValue::Object(map))
}

/// Renders a bare control-action request line (`ping`, `stats`,
/// `shutdown`).
#[must_use]
pub fn control_request_line(id: &str, action: &str) -> String {
    let mut map = BTreeMap::new();
    map.insert("id".into(), JsonValue::String(id.to_owned()));
    map.insert("action".into(), JsonValue::String(action.to_owned()));
    json::to_string(&JsonValue::Object(map))
}

fn common_fields(
    id: &str,
    design: &str,
    all_global: Option<u32>,
    globals: &[(String, u32)],
    deadline_ms: Option<u64>,
) -> BTreeMap<String, JsonValue> {
    let mut map = BTreeMap::new();
    map.insert("id".into(), JsonValue::String(id.to_owned()));
    map.insert("design".into(), JsonValue::String(design.to_owned()));
    if let Some(period) = all_global {
        map.insert("all_global".into(), JsonValue::Number(f64::from(period)));
    }
    if !globals.is_empty() {
        let pairs = globals
            .iter()
            .map(|(name, period)| {
                JsonValue::Array(vec![
                    JsonValue::String(name.clone()),
                    JsonValue::Number(f64::from(*period)),
                ])
            })
            .collect();
        map.insert("globals".into(), JsonValue::Array(pairs));
    }
    if let Some(ms) = deadline_ms {
        #[allow(clippy::cast_precision_loss)]
        map.insert("deadline_ms".into(), JsonValue::Number(ms as f64));
    }
    map
}

/// Default connect timeout of [`Client::connect`]: long enough for any
/// sane network, short enough that a black-holed address fails instead
/// of hanging the CLI forever.
pub const DEFAULT_CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

impl Client {
    /// Connects to a daemon with the default connect timeout
    /// ([`DEFAULT_CONNECT_TIMEOUT`]) and no read timeout.
    ///
    /// # Errors
    ///
    /// Propagates connection failures, including the timeout.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        Self::connect_with(addr, Some(DEFAULT_CONNECT_TIMEOUT), None)
    }

    /// Connects with explicit connect/read timeouts (`None` = block
    /// forever). Each resolved address is tried in turn under the
    /// connect timeout.
    ///
    /// # Errors
    ///
    /// Propagates connection failures; when every resolved address
    /// fails, the last failure is returned.
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        connect_timeout: Option<Duration>,
        read_timeout: Option<Duration>,
    ) -> std::io::Result<Client> {
        let writer = match connect_timeout {
            Some(t) => {
                let mut last: Option<std::io::Error> = None;
                let mut stream = None;
                for sa in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&sa, t) {
                        Ok(s) => {
                            stream = Some(s);
                            break;
                        }
                        Err(e) => last = Some(e),
                    }
                }
                match stream {
                    Some(s) => s,
                    None => {
                        return Err(last.unwrap_or_else(|| {
                            std::io::Error::new(
                                std::io::ErrorKind::InvalidInput,
                                "address resolved to no socket addresses",
                            )
                        }))
                    }
                }
            }
            None => TcpStream::connect(addr)?,
        };
        writer.set_nodelay(true).ok();
        writer.set_read_timeout(read_timeout)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    /// Sets a receive timeout (None = block forever).
    ///
    /// # Errors
    ///
    /// Propagates socket-option failures.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.writer.set_read_timeout(timeout)
    }

    /// Sends one raw request line (pipelined; pair with [`Client::recv`]).
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Receives the next response line.
    ///
    /// # Errors
    ///
    /// Fails on a closed connection or an unparseable response.
    pub fn recv(&mut self) -> std::io::Result<Response> {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "daemon closed the connection",
                ));
            }
            if line.trim().is_empty() {
                continue;
            }
            return parse_response(line.trim_end())
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e));
        }
    }

    /// Sends one request and waits for its response.
    ///
    /// # Errors
    ///
    /// Propagates transport failures; protocol-level errors come back in
    /// [`Response::error`].
    pub fn request(&mut self, line: &str) -> std::io::Result<Response> {
        self.send_line(line)?;
        self.recv()
    }
}

/// When and how [`ServeClient`] retries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Per-attempt connect timeout (`None` = OS default, may block).
    pub connect_timeout: Option<Duration>,
    /// Receive timeout (`None` = wait as long as the schedule takes).
    pub read_timeout: Option<Duration>,
    /// Retries after the first attempt (0 = never retry).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Jitter seed: the same seed yields the same backoff sequence, so
    /// chaos runs are reproducible.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            connect_timeout: Some(DEFAULT_CONNECT_TIMEOUT),
            read_timeout: None,
            max_retries: 4,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `attempt` (0-based): exponential
    /// from `base_backoff`, capped at `max_backoff`, scaled into
    /// `[0.5, 1.0)` by `jitter` so synchronized clients desynchronize.
    #[must_use]
    pub fn backoff(&self, attempt: u32, jitter: f64) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .min(self.max_backoff);
        exp.mul_f64(0.5 + jitter.clamp(0.0, 1.0) / 2.0)
    }
}

/// Whether a typed wire code is worth retrying *on the same node*: only
/// queue-full (429) backpressure — the daemon explicitly asked for a
/// later attempt. Real answers (typed request errors) are final. 503 is
/// ambiguous by code alone (see [`retryable_error`]), so it is not
/// retryable from just the number.
#[must_use]
pub fn retryable_code(code: u16) -> bool {
    code == 429
}

/// Whether a typed wire error is worth retrying, by class and code:
///
/// * `429` queue-full — retry the same node after backoff;
/// * `peer-unavailable` (503) — a fleet node failed to reach the key's
///   owner; retrying (ideally on the next address) can succeed because
///   any node answers any request;
/// * `shutting-down` (503) — final: that daemon is going away.
///
/// Both 503s share a code, so the *class* string is what distinguishes
/// a retryable fleet hiccup from a final shutdown notice.
#[must_use]
pub fn retryable_error(class: &str, code: u16) -> bool {
    retryable_code(code) || class == "peer-unavailable"
}

/// Whether a typed wire error should also rotate [`ServeClient`] to its
/// next address: fleet-reachability errors are per-node, backpressure
/// is fleet-wide load (every node shares one logical cache and queue
/// pressure follows the workload, not the node).
fn rotates(class: &str) -> bool {
    class == "peer-unavailable"
}

/// A retrying daemon client: a [`Client`] plus a [`RetryPolicy`] over
/// one or more addresses.
///
/// Transport failures (connect errors, resets, truncation, timeouts),
/// 429 backpressure and `peer-unavailable` fleet errors are retried
/// with deterministic jittered backoff, reconnecting — and rotating to
/// the next address — as needed; every other response is returned
/// as-is. See the module docs for why retrying is safe.
pub struct ServeClient {
    addrs: Vec<String>,
    current: usize,
    policy: RetryPolicy,
    conn: Option<Client>,
    retries: u64,
    failovers: u64,
    rng: u64,
}

impl ServeClient {
    /// Creates a retrying client for one `addr` (connections are opened
    /// lazily, so this cannot fail).
    #[must_use]
    pub fn new(addr: impl Into<String>, policy: RetryPolicy) -> ServeClient {
        Self::with_addrs(vec![addr.into()], policy)
    }

    /// Creates a retrying client over an address list — typically a
    /// fleet's `--peers`. The first address is tried first; transport
    /// failures and `peer-unavailable` answers rotate to the next.
    ///
    /// # Panics
    ///
    /// Panics on an empty list: a client with nowhere to connect is a
    /// caller bug, not a runtime condition.
    #[must_use]
    pub fn with_addrs(addrs: Vec<String>, policy: RetryPolicy) -> ServeClient {
        assert!(!addrs.is_empty(), "ServeClient needs at least one address");
        let seed = policy.seed ^ 0x9E37_79B9_7F4A_7C15;
        ServeClient {
            addrs,
            current: 0,
            policy,
            conn: None,
            retries: 0,
            failovers: 0,
            rng: seed.max(1), // xorshift must not start at zero
        }
    }

    /// Retries performed so far (across all requests).
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Address rotations performed so far (across all requests).
    #[must_use]
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// The address the next request will be sent to.
    #[must_use]
    pub fn current_addr(&self) -> &str {
        &self.addrs[self.current]
    }

    /// Drops the current connection and advances to the next address
    /// (a no-op rotation with a single address, but the reconnect still
    /// buys a fresh socket).
    fn rotate(&mut self) {
        self.conn = None;
        self.current = (self.current + 1) % self.addrs.len();
        self.failovers += 1;
    }

    /// Deterministic xorshift64 jitter in `[0, 1)`.
    fn next_jitter(&mut self) -> f64 {
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        #[allow(clippy::cast_precision_loss)]
        let unit = (self.rng >> 11) as f64 / (1u64 << 53) as f64;
        unit
    }

    fn connected(&mut self) -> std::io::Result<&mut Client> {
        if self.conn.is_none() {
            self.conn = Some(Client::connect_with(
                self.addrs[self.current].as_str(),
                self.policy.connect_timeout,
                self.policy.read_timeout,
            )?);
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    /// Sends `line` and waits for its response, retrying per the
    /// policy — rotating to the next address on transport failures and
    /// `peer-unavailable` answers. When retries run out, the last
    /// outcome is returned — a final 429 response comes back as a
    /// normal typed response, not a transport error.
    ///
    /// # Errors
    ///
    /// The last transport failure once retries are exhausted.
    pub fn request(&mut self, line: &str) -> std::io::Result<Response> {
        let mut attempt = 0u32;
        loop {
            let outcome = match self.connected() {
                Ok(conn) => conn.request(line),
                Err(e) => Err(e),
            };
            let (retry_this, rotate_this) = match &outcome {
                Ok(resp) => match &resp.error {
                    Some((class, code, _)) => {
                        (retryable_error(class, *code), rotates(class.as_str()))
                    }
                    None => (false, false),
                },
                // Any transport failure is worth one more try — on the
                // next address; the current node may be half-dead.
                Err(_) => (true, true),
            };
            if !retry_this || attempt >= self.policy.max_retries {
                return outcome;
            }
            if rotate_this {
                self.rotate();
            }
            let jitter = self.next_jitter();
            std::thread::sleep(self.policy.backoff(attempt, jitter));
            attempt += 1;
            self.retries += 1;
        }
    }

    /// Convenience `ping` round trip.
    ///
    /// # Errors
    ///
    /// Same as [`ServeClient::request`].
    pub fn ping(&mut self) -> std::io::Result<Response> {
        self.request(&control_request_line("ping", "ping"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{parse_request, Action};

    #[test]
    fn request_lines_parse_back() {
        let opts = ScheduleOptions {
            all_global: Some(4),
            globals: vec![("mul".into(), 2)],
            gantt: true,
            verify: 3,
            degrade: false,
            partition: Some(tcms_core::PartitionCount::Fixed(2)),
        };
        let line = schedule_request_line("req-1", "design text", &opts, Some(500));
        let req = parse_request(&line).unwrap();
        assert_eq!(req.deadline_ms, Some(500));
        match req.action {
            Action::Schedule {
                design,
                opts: parsed,
            } => {
                assert_eq!(design, "design text");
                assert_eq!(parsed, opts);
            }
            other => panic!("unexpected action {other:?}"),
        }

        let sim = SimulateOptions {
            all_global: Some(3),
            horizon: 800,
            ..SimulateOptions::default()
        };
        let line = simulate_request_line("req-2", "d", &sim, None);
        match parse_request(&line).unwrap().action {
            Action::Simulate { opts: parsed, .. } => assert_eq!(parsed, sim),
            other => panic!("unexpected action {other:?}"),
        }

        for action in ["ping", "stats", "shutdown"] {
            let line = control_request_line("c", action);
            assert!(parse_request(&line).is_ok(), "{line}");
        }
    }

    #[test]
    fn connect_fails_fast_instead_of_blocking() {
        // A port nothing listens on: with a connect timeout the call
        // returns an error promptly instead of hanging.
        let start = std::time::Instant::now();
        let result = Client::connect_with("127.0.0.1:1", Some(Duration::from_millis(500)), None);
        assert!(result.is_err());
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "bounded by the timeout, not the OS default"
        );
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_capped() {
        let policy = RetryPolicy {
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
            ..RetryPolicy::default()
        };
        // Monotone growth up to the cap, at fixed jitter.
        let b = |a| policy.backoff(a, 1.0);
        assert_eq!(b(0), Duration::from_millis(10));
        assert_eq!(b(1), Duration::from_millis(20));
        assert_eq!(b(4), Duration::from_millis(100), "capped");
        assert_eq!(b(63), Duration::from_millis(100), "shift overflow capped");
        // Jitter scales into [0.5, 1.0).
        assert_eq!(policy.backoff(0, 0.0), Duration::from_millis(5));
        // The jitter stream is a pure function of the seed.
        let mut a = ServeClient::new(
            "unused:0",
            RetryPolicy {
                seed: 7,
                ..RetryPolicy::default()
            },
        );
        let mut b = ServeClient::new(
            "unused:0",
            RetryPolicy {
                seed: 7,
                ..RetryPolicy::default()
            },
        );
        let sa: Vec<f64> = (0..8).map(|_| a.next_jitter()).collect();
        let sb: Vec<f64> = (0..8).map(|_| b.next_jitter()).collect();
        assert_eq!(sa, sb);
        assert!(sa.iter().all(|j| (0.0..1.0).contains(j)));
    }

    #[test]
    fn only_backpressure_codes_are_retryable() {
        assert!(retryable_code(429));
        for code in [2, 4, 5, 6, 7, 8, 9, 404, 408, 413, 500, 503] {
            assert!(!retryable_code(code), "{code} alone is a final answer");
        }
    }

    #[test]
    fn retryability_distinguishes_the_two_503_classes() {
        // Same code, opposite fates: the class decides.
        assert!(retryable_error("peer-unavailable", 503), "fleet hiccup");
        assert!(!retryable_error("shutting-down", 503), "daemon is leaving");
        assert!(retryable_error("overloaded", 429));
        for (class, code) in [
            ("bad-request", 2),
            ("malformed", 4),
            ("infeasible", 6),
            ("deadline", 408),
            ("internal", 500),
        ] {
            assert!(!retryable_error(class, code), "{class} is a real answer");
        }
        // Only reachability errors rotate; backpressure stays put.
        assert!(rotates("peer-unavailable"));
        assert!(!rotates("overloaded"));
        assert!(!rotates("shutting-down"));
    }

    #[test]
    fn failover_rotates_from_a_dead_address_to_a_live_one() {
        let server = crate::Server::start(crate::ServeConfig {
            workers: 1,
            ..crate::ServeConfig::default()
        })
        .unwrap();
        // First address is dead (reserved then dropped), second is live.
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = l.local_addr().unwrap();
            drop(l);
            addr.to_string()
        };
        let mut client = ServeClient::with_addrs(
            vec![dead.clone(), server.local_addr().to_string()],
            RetryPolicy {
                connect_timeout: Some(Duration::from_millis(500)),
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(2),
                ..RetryPolicy::default()
            },
        );
        assert_eq!(client.current_addr(), dead);
        let pong = client.ping().unwrap();
        assert!(pong.is_ok());
        assert_eq!(client.failovers(), 1, "one rotation to the live node");
        assert_eq!(client.current_addr(), server.local_addr().to_string());
        // Later requests stay on the healthy node.
        assert!(client.ping().unwrap().is_ok());
        assert_eq!(client.failovers(), 1);
        server.shutdown();
        server.wait().unwrap();
    }

    #[test]
    fn serve_client_round_trips_without_retries_on_a_healthy_daemon() {
        let server = crate::Server::start(crate::ServeConfig {
            workers: 1,
            ..crate::ServeConfig::default()
        })
        .unwrap();
        let mut client = ServeClient::new(server.local_addr().to_string(), RetryPolicy::default());
        let pong = client.ping().unwrap();
        assert!(pong.is_ok());
        assert_eq!(client.retries(), 0, "no faults, no retries");
        server.shutdown();
        server.wait().unwrap();
    }
}
