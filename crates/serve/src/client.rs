//! A blocking NDJSON client for the daemon.
//!
//! Supports pipelining: send any number of requests, then collect
//! responses and match them by id (the daemon answers in completion
//! order).

use std::collections::BTreeMap;
use std::io::{BufRead as _, BufReader, Write as _};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use tcms_obs::json::{self, JsonValue};

use crate::pipeline::{ScheduleOptions, SimulateOptions};
use crate::protocol::{parse_response, Response};

/// A connected client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// Renders a schedule request line.
#[must_use]
pub fn schedule_request_line(
    id: &str,
    design: &str,
    opts: &ScheduleOptions,
    deadline_ms: Option<u64>,
) -> String {
    let mut map = common_fields(id, design, opts.all_global, &opts.globals, deadline_ms);
    map.insert("action".into(), JsonValue::String("schedule".into()));
    map.insert("gantt".into(), JsonValue::Bool(opts.gantt));
    map.insert("degrade".into(), JsonValue::Bool(opts.degrade));
    #[allow(clippy::cast_precision_loss)]
    map.insert("verify".into(), JsonValue::Number(opts.verify as f64));
    json::to_string(&JsonValue::Object(map))
}

/// Renders a simulate request line.
#[must_use]
pub fn simulate_request_line(
    id: &str,
    design: &str,
    opts: &SimulateOptions,
    deadline_ms: Option<u64>,
) -> String {
    let mut map = common_fields(id, design, opts.all_global, &opts.globals, deadline_ms);
    map.insert("action".into(), JsonValue::String("simulate".into()));
    #[allow(clippy::cast_precision_loss)]
    {
        map.insert("horizon".into(), JsonValue::Number(opts.horizon as f64));
        map.insert("seed".into(), JsonValue::Number(opts.seed as f64));
        map.insert("mean_gap".into(), JsonValue::Number(opts.mean_gap as f64));
    }
    json::to_string(&JsonValue::Object(map))
}

/// Renders a bare control-action request line (`ping`, `stats`,
/// `shutdown`).
#[must_use]
pub fn control_request_line(id: &str, action: &str) -> String {
    let mut map = BTreeMap::new();
    map.insert("id".into(), JsonValue::String(id.to_owned()));
    map.insert("action".into(), JsonValue::String(action.to_owned()));
    json::to_string(&JsonValue::Object(map))
}

fn common_fields(
    id: &str,
    design: &str,
    all_global: Option<u32>,
    globals: &[(String, u32)],
    deadline_ms: Option<u64>,
) -> BTreeMap<String, JsonValue> {
    let mut map = BTreeMap::new();
    map.insert("id".into(), JsonValue::String(id.to_owned()));
    map.insert("design".into(), JsonValue::String(design.to_owned()));
    if let Some(period) = all_global {
        map.insert("all_global".into(), JsonValue::Number(f64::from(period)));
    }
    if !globals.is_empty() {
        let pairs = globals
            .iter()
            .map(|(name, period)| {
                JsonValue::Array(vec![
                    JsonValue::String(name.clone()),
                    JsonValue::Number(f64::from(*period)),
                ])
            })
            .collect();
        map.insert("globals".into(), JsonValue::Array(pairs));
    }
    if let Some(ms) = deadline_ms {
        #[allow(clippy::cast_precision_loss)]
        map.insert("deadline_ms".into(), JsonValue::Number(ms as f64));
    }
    map
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true).ok();
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    /// Sets a receive timeout (None = block forever).
    ///
    /// # Errors
    ///
    /// Propagates socket-option failures.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.writer.set_read_timeout(timeout)
    }

    /// Sends one raw request line (pipelined; pair with [`Client::recv`]).
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Receives the next response line.
    ///
    /// # Errors
    ///
    /// Fails on a closed connection or an unparseable response.
    pub fn recv(&mut self) -> std::io::Result<Response> {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "daemon closed the connection",
                ));
            }
            if line.trim().is_empty() {
                continue;
            }
            return parse_response(line.trim_end())
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e));
        }
    }

    /// Sends one request and waits for its response.
    ///
    /// # Errors
    ///
    /// Propagates transport failures; protocol-level errors come back in
    /// [`Response::error`].
    pub fn request(&mut self, line: &str) -> std::io::Result<Response> {
        self.send_line(line)?;
        self.recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{parse_request, Action};

    #[test]
    fn request_lines_parse_back() {
        let opts = ScheduleOptions {
            all_global: Some(4),
            globals: vec![("mul".into(), 2)],
            gantt: true,
            verify: 3,
            degrade: false,
        };
        let line = schedule_request_line("req-1", "design text", &opts, Some(500));
        let req = parse_request(&line).unwrap();
        assert_eq!(req.deadline_ms, Some(500));
        match req.action {
            Action::Schedule {
                design,
                opts: parsed,
            } => {
                assert_eq!(design, "design text");
                assert_eq!(parsed, opts);
            }
            other => panic!("unexpected action {other:?}"),
        }

        let sim = SimulateOptions {
            all_global: Some(3),
            horizon: 800,
            ..SimulateOptions::default()
        };
        let line = simulate_request_line("req-2", "d", &sim, None);
        match parse_request(&line).unwrap().action {
            Action::Simulate { opts: parsed, .. } => assert_eq!(parsed, sim),
            other => panic!("unexpected action {other:?}"),
        }

        for action in ["ping", "stats", "shutdown"] {
            let line = control_request_line("c", action);
            assert!(parse_request(&line).is_ok(), "{line}");
        }
    }
}
