//! The improved force-directed scheduling engine (Verhaegh et al.).
//!
//! The engine implements *gradual time-frame reduction*: per iteration it
//! evaluates, for every not-yet-fixed operation in scope, the force of the
//! two extreme placements (ASAP and ALAP end of the time frame), selects
//! the operation with the maximal force difference and shortens its frame
//! by one step on the side with the higher force. Implied frame reductions
//! of predecessors/successors are propagated and priced into the force.
//!
//! The force model itself is pluggable (see
//! [`ForceEvaluator`]); this hook is exactly what
//! the paper's modulo extension plugs into.
//!
//! # Incremental evaluation
//!
//! One reduction iteration touches the frames of a single block, yet the
//! classical loop re-evaluates the candidate forces of *every* unfixed
//! operation. [`IfdsEngine::run`] therefore keeps a per-operation cache of
//! the extreme-placement force pair `(f_lo, f_hi)`, keyed by
//!
//! * the frame generation of the operation's block (advanced by
//!   [`tcms_ir::FrameTable`] change tracking), and
//! * the evaluator's [`ForceEvaluator::context_stamp`] for that block.
//!
//! When both stamps are unchanged since the pair was computed, the force
//! would evaluate to bit-identical values, so the cached pair is reused.
//! [`IfdsEngine::run_naive`] runs the identical selection loop without the
//! cache and serves as the oracle: its outcome must match `run` exactly.
//!
//! # Parallel evaluation
//!
//! The candidate sweep of one iteration splits into three passes: a
//! sequential cache consultation, a (possibly parallel) evaluation of the
//! missing force pairs, and a sequential selection fold in scope order.
//! [`ForceEvaluator::force`] takes `&self`, so pass 2 may compute pairs in
//! any order on any thread and still produce bit-identical values; the
//! epsilon tie-break of the selection (`diff > best + 1e-12`) is
//! *non-associative*, which is why pass 3 stays a sequential index-ordered
//! fold. The schedule is therefore bit-identical at every thread count —
//! the determinism suite and the `run_naive` oracle pin this down.

use std::time::{Duration, Instant};

use tcms_ir::frames::constrained_frames;
use tcms_ir::{BlockId, FrameTable, OpId, System, TimeFrame};
use tcms_obs::{span, NoopRecorder, Recorder, TimelinePoint};

use crate::config::RunBudget;
use crate::error::{BudgetAxis, EngineError};
use crate::evaluator::ForceEvaluator;
use crate::schedule::Schedule;

/// Instrumentation counters of one engine run (or several merged ones).
///
/// Wall-clock fields are measured with [`Instant`] and are inherently
/// non-deterministic; they are excluded from [`IfdsOutcome`] equality.
#[derive(Debug, Clone, Copy, Default)]
pub struct IfdsStats {
    /// Frame-reduction iterations performed.
    pub iterations: u64,
    /// Candidate force pairs `(f_lo, f_hi)` computed by the evaluator.
    pub ops_evaluated: u64,
    /// Candidate force pairs served from the incremental cache.
    pub cache_hits: u64,
    /// Candidate force pairs that had to be recomputed although the cache
    /// was enabled (stamp moved). `ops_evaluated - cache_misses` pairs were
    /// computed with caching unavailable or disabled.
    pub cache_misses: u64,
    /// Candidate force pairs evaluated inside a parallel fan-out (a subset
    /// of `ops_evaluated`; the rest ran inline on the calling thread).
    pub parallel_evals: u64,
    /// Candidate force pairs evaluated through the evaluator's batched
    /// entry point ([`ForceEvaluator::force_batch`]) instead of one
    /// `force` call per placement. A subset of `ops_evaluated`.
    pub batched_evals: u64,
    /// Wall time spent in the candidate-evaluation phase.
    pub eval_time: Duration,
    /// Wall time spent committing changes (evaluator update + frames).
    pub commit_time: Duration,
    /// Total wall time of the run.
    pub total_time: Duration,
}

impl IfdsStats {
    /// Accumulates `other` into `self` (used when merging per-block runs).
    pub fn absorb(&mut self, other: &IfdsStats) {
        self.iterations += other.iterations;
        self.ops_evaluated += other.ops_evaluated;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.parallel_evals += other.parallel_evals;
        self.batched_evals += other.batched_evals;
        self.eval_time += other.eval_time;
        self.commit_time += other.commit_time;
        self.total_time += other.total_time;
    }

    /// Fraction of candidate pairs served from the cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Folds these counters into a recorder's metrics registry, so legacy
    /// stats blocks and the new observability layer report one consistent
    /// set of numbers. Wall-clock phases land in `*_us` counters.
    pub fn publish(&self, rec: &dyn Recorder) {
        if !rec.enabled() {
            return;
        }
        rec.counter_add("ifds.iterations", self.iterations);
        rec.counter_add("ifds.ops_evaluated", self.ops_evaluated);
        rec.counter_add("ifds.cache_hits", self.cache_hits);
        rec.counter_add("ifds.cache_misses", self.cache_misses);
        rec.counter_add("ifds.parallel_evals", self.parallel_evals);
        rec.counter_add("ifds.batched_evals", self.batched_evals);
        rec.counter_add("ifds.eval_us", self.eval_time.as_micros() as u64);
        rec.counter_add("ifds.commit_us", self.commit_time.as_micros() as u64);
        rec.counter_add("ifds.total_us", self.total_time.as_micros() as u64);
        rec.gauge_set("ifds.hit_rate", self.hit_rate());
    }
}

/// Result of an engine run.
///
/// Equality compares the deterministic outcome only (schedule and
/// iteration count); the wall-clock instrumentation in
/// [`IfdsOutcome::stats`] is ignored.
#[derive(Debug, Clone)]
pub struct IfdsOutcome {
    /// The final schedule (covering the ops of the engine's scope).
    pub schedule: Schedule,
    /// Number of frame-reduction iterations performed.
    pub iterations: u64,
    /// Instrumentation of the run that produced the schedule.
    pub stats: IfdsStats,
}

impl PartialEq for IfdsOutcome {
    fn eq(&self, other: &Self) -> bool {
        self.schedule == other.schedule && self.iterations == other.iterations
    }
}

impl Eq for IfdsOutcome {}

/// Where one candidate's force pair comes from in the current iteration:
/// the incremental cache, or slot `j` of the freshly evaluated batch.
#[derive(Clone, Copy)]
enum CandSource {
    Cached(f64, f64),
    Pending(usize),
}

/// One force pair awaiting evaluation: the op, its time frame, and the
/// cache write-back key `(block generation, context stamp)` when the
/// incremental cache is on.
type PendingEval = (OpId, TimeFrame, Option<(u64, u64)>);

/// Improved-FDS scheduling engine over a set of blocks.
pub struct IfdsEngine<'a> {
    system: &'a System,
    scope_ops: Vec<OpId>,
    frames: FrameTable,
    budget: RunBudget,
}

impl<'a> IfdsEngine<'a> {
    /// Creates an engine scheduling the blocks in `scope` simultaneously.
    ///
    /// # Panics
    ///
    /// Panics if `scope` is empty.
    pub fn new(system: &'a System, scope: Vec<BlockId>) -> Self {
        assert!(!scope.is_empty(), "empty scheduling scope");
        let scope_ops = scope
            .iter()
            .flat_map(|&b| system.block(b).ops().iter().copied())
            .collect();
        IfdsEngine {
            system,
            scope_ops,
            frames: FrameTable::initial(system),
            budget: RunBudget::UNLIMITED,
        }
    }

    /// Replaces the engine's run budget (unlimited by default). The budget
    /// is enforced by the watchdog inside the reduction loop; tripping it
    /// aborts the run with [`EngineError::BudgetExhausted`].
    pub fn with_budget(mut self, budget: RunBudget) -> Self {
        self.budget = budget;
        self
    }

    /// The current frame table (initial ASAP/ALAP before [`IfdsEngine::run`]).
    pub fn frames(&self) -> &FrameTable {
        &self.frames
    }

    /// Frame changes implied by constraining `op` to `frame`, including
    /// `op` itself. Only actually-changing frames are listed.
    ///
    /// # Panics
    ///
    /// Panics if `frame` is not a sub-range of `op`'s current frame (such a
    /// pin could be infeasible).
    pub fn implied_changes(&self, op: OpId, frame: TimeFrame) -> Vec<(OpId, TimeFrame)> {
        let current = self.frames.get(op);
        assert!(
            current.intersect(frame) == Some(frame),
            "pinned frame must be within the current frame"
        );
        let block = self.system.op(op).block();
        let solved = constrained_frames(self.system, block, |q| {
            if q == op {
                frame
            } else {
                self.frames.get(q)
            }
        })
        .expect("pinning inside a consistent frame stays feasible");
        solved
            .into_iter()
            .filter(|&(q, f)| f != self.frames.get(q))
            .collect()
    }

    /// Applies committed frame changes to the engine's table. Drivers that
    /// reuse the engine's propagation (like the original-FDS baseline) call
    /// this after [`ForceEvaluator::commit`].
    pub fn apply(&mut self, changes: &[(OpId, TimeFrame)]) {
        for &(q, f) in changes {
            self.frames.set(q, f);
        }
    }

    /// Force of tentatively placing `op` at start time `t`.
    pub fn placement_force<E: ForceEvaluator>(&self, eval: &E, op: OpId, t: u32) -> f64 {
        let changes = self.implied_changes(op, TimeFrame::new(t, t));
        eval.force(&self.frames, &changes)
    }

    /// Forces of the two extreme placements of `op` in frame `fr`,
    /// evaluated as one batch so the evaluator can share state-dependent
    /// intermediates between them. Bit-identical to two
    /// [`IfdsEngine::placement_force`] calls.
    pub fn placement_force_pair<E: ForceEvaluator>(
        &self,
        eval: &E,
        op: OpId,
        fr: TimeFrame,
    ) -> (f64, f64) {
        let lo = self.implied_changes(op, TimeFrame::new(fr.asap, fr.asap));
        let hi = self.implied_changes(op, TimeFrame::new(fr.alap, fr.alap));
        let f = eval.force_batch(&self.frames, &[&lo, &hi]);
        (f[0], f[1])
    }

    /// Runs gradual time-frame reduction to completion and extracts the
    /// schedule, reusing cached candidate forces for operations whose block
    /// frames and evaluator context are untouched since the last iteration.
    ///
    /// Produces a schedule identical to [`IfdsEngine::run_naive`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::BudgetExhausted`] if a budget installed with
    /// [`IfdsEngine::with_budget`] trips before every frame is fixed. With
    /// the default unlimited budget the run always succeeds.
    pub fn run<E: ForceEvaluator + Sync>(self, eval: &mut E) -> Result<IfdsOutcome, EngineError> {
        self.run_impl(eval, true, true, &NoopRecorder)
    }

    /// [`IfdsEngine::run`] with observability: spans, per-iteration
    /// convergence samples and final counters flow into `rec`. Recording
    /// is read-only observation — the outcome is bit-identical to
    /// [`IfdsEngine::run`] (the integration suite asserts this).
    ///
    /// # Errors
    ///
    /// Same as [`IfdsEngine::run`]. On a budget trip an
    /// `ifds.budget_exhausted` event carrying the partial-progress counters
    /// is emitted through `rec` before the error is returned.
    pub fn run_recorded<E: ForceEvaluator + Sync>(
        self,
        eval: &mut E,
        rec: &dyn Recorder,
    ) -> Result<IfdsOutcome, EngineError> {
        self.run_impl(eval, true, true, rec)
    }

    /// Reference run without the candidate-force cache and without batched
    /// evaluation: every candidate placement is re-evaluated with its own
    /// [`ForceEvaluator::force`] call each iteration, exactly like the
    /// pre-incremental engine. Kept as the equivalence oracle for tests
    /// and benches — matching it pins both the cache and the batched path.
    ///
    /// # Errors
    ///
    /// Same as [`IfdsEngine::run`].
    #[cfg(any(test, feature = "naive-oracle"))]
    pub fn run_naive<E: ForceEvaluator + Sync>(
        self,
        eval: &mut E,
    ) -> Result<IfdsOutcome, EngineError> {
        self.run_impl(eval, false, false, &NoopRecorder)
    }

    /// Returns the budget axis that is exhausted given the loop counters,
    /// if any. Iteration/eval limits are checked before the wall clock so
    /// deterministic axes win ties against the non-deterministic one.
    fn tripped_axis(&self, iterations: u64, evals: u64, started: Instant) -> Option<BudgetAxis> {
        let b = &self.budget;
        if b.max_iterations.is_some_and(|cap| iterations >= cap) {
            Some(BudgetAxis::Iterations)
        } else if b.max_evals.is_some_and(|cap| evals >= cap) {
            Some(BudgetAxis::Evaluations)
        } else if b.wall_deadline.is_some_and(|cap| started.elapsed() >= cap) {
            Some(BudgetAxis::WallClock)
        } else {
            None
        }
    }

    fn run_impl<E: ForceEvaluator + Sync>(
        mut self,
        eval: &mut E,
        use_cache: bool,
        use_batch: bool,
        rec: &dyn Recorder,
    ) -> Result<IfdsOutcome, EngineError> {
        let run_started = Instant::now();
        let _reduce_span = span!(rec, "ifds.reduce", ops = self.scope_ops.len());
        let mut stats = IfdsStats::default();
        // Thread count is resolved once per run; 1 keeps the whole sweep
        // inline. Fanning out fewer pairs than this is slower than just
        // computing them (a broadcast costs a few microseconds).
        let threads = rayon::current_num_threads();
        const PAR_MIN_PAIRS: usize = 4;
        if rec.enabled() {
            rec.gauge_set("ifds.threads", threads as f64);
        }
        // cache[op] = (block frame generation, evaluator context stamp,
        // f_lo, f_hi) at computation time. The sentinel generation
        // `u64::MAX` is unreachable (generations count frame mutations), so
        // fresh entries never match.
        let mut cache: Vec<(u64, u64, f64, f64)> = if use_cache {
            vec![(u64::MAX, u64::MAX, 0.0, 0.0); self.system.num_ops()]
        } else {
            Vec::new()
        };
        // Frame generation of the youngest change per block, mirrored off
        // the table's per-op stamps as commits are applied.
        let mut block_gen: Vec<u64> = vec![0; self.system.num_blocks()];
        // Per-iteration scratch: every unfixed candidate in scope order
        // (`cands`) and the subset whose force pair must be computed this
        // iteration (`to_eval`, with the cache write-back key when the
        // cache is on).
        let mut cands: Vec<(OpId, CandSource)> = Vec::new();
        let mut to_eval: Vec<PendingEval> = Vec::new();
        let mut iterations = 0;
        let watchdog_armed = !self.budget.is_unlimited();
        loop {
            if watchdog_armed {
                if let Some(axis) = self.tripped_axis(iterations, stats.ops_evaluated, run_started)
                {
                    let unfixed_ops = self
                        .scope_ops
                        .iter()
                        .filter(|&&q| !self.frames.get(q).is_fixed())
                        .count();
                    if unfixed_ops == 0 {
                        // All frames are already fixed: the run is complete,
                        // not aborted — fall through to schedule extraction.
                        break;
                    }
                    let elapsed = run_started.elapsed();
                    stats.iterations = iterations;
                    stats.total_time = elapsed;
                    // Partial-progress report: the counters so far plus the
                    // trip event, so a tripped run is still observable.
                    if rec.enabled() {
                        rec.event(
                            "ifds.budget_exhausted",
                            &[
                                ("axis", format!("{axis}").into()),
                                ("iterations", iterations.into()),
                                ("evals", stats.ops_evaluated.into()),
                                ("unfixed_ops", unfixed_ops.into()),
                            ],
                        );
                    }
                    stats.publish(rec);
                    return Err(EngineError::BudgetExhausted {
                        axis,
                        iterations,
                        evals: stats.ops_evaluated,
                        unfixed_ops,
                        elapsed,
                    });
                }
            }
            let eval_started = Instant::now();
            // Pass 1 (sequential, scope order): consult the cache and
            // collect the force pairs that actually need computing.
            cands.clear();
            to_eval.clear();
            for &o in &self.scope_ops {
                let fr = self.frames.get(o);
                if fr.is_fixed() {
                    continue;
                }
                let src = if use_cache {
                    let block = self.system.op(o).block();
                    match eval.context_stamp(block) {
                        Some(ctx) => {
                            let gen = block_gen[block.index()];
                            let entry = cache[o.index()];
                            if entry.0 == gen && entry.1 == ctx {
                                stats.cache_hits += 1;
                                CandSource::Cached(entry.2, entry.3)
                            } else {
                                stats.cache_misses += 1;
                                stats.ops_evaluated += 1;
                                to_eval.push((o, fr, Some((gen, ctx))));
                                CandSource::Pending(to_eval.len() - 1)
                            }
                        }
                        None => {
                            stats.ops_evaluated += 1;
                            to_eval.push((o, fr, None));
                            CandSource::Pending(to_eval.len() - 1)
                        }
                    }
                } else {
                    stats.ops_evaluated += 1;
                    to_eval.push((o, fr, None));
                    CandSource::Pending(to_eval.len() - 1)
                };
                cands.push((o, src));
            }
            // Pass 2: compute the missing pairs — on the worker pool when
            // there is one and the batch is worth the fan-out. `force` is
            // a pure `&self` read of the evaluator, so computing pairs out
            // of order yields bit-identical values; only the *fold* order
            // below matters for the tie-break.
            let forces: Vec<(f64, f64)> = if threads > 1 && to_eval.len() >= PAR_MIN_PAIRS {
                stats.parallel_evals += to_eval.len() as u64;
                if use_batch {
                    stats.batched_evals += to_eval.len() as u64;
                }
                let eval_ref: &E = eval;
                let batch = &to_eval;
                let this = &self;
                rayon::par_map_indexed(batch.len(), |j| {
                    let (o, fr, _) = batch[j];
                    if use_batch {
                        // Workers batch per pair: the two extreme
                        // placements share the evaluator's candidate-
                        // independent intermediates.
                        this.placement_force_pair(eval_ref, o, fr)
                    } else {
                        (
                            this.placement_force(eval_ref, o, fr.asap),
                            this.placement_force(eval_ref, o, fr.alap),
                        )
                    }
                })
            } else if use_batch && !to_eval.is_empty() {
                // Sequential batched sweep: score every extreme placement
                // of the iteration in one `force_batch` call, so the
                // evaluator shares candidate-independent intermediates
                // (delta scratch, sibling profiles) across the whole sweep.
                stats.batched_evals += to_eval.len() as u64;
                let changesets: Vec<Vec<(OpId, TimeFrame)>> = to_eval
                    .iter()
                    .flat_map(|&(o, fr, _)| {
                        [
                            self.implied_changes(o, TimeFrame::new(fr.asap, fr.asap)),
                            self.implied_changes(o, TimeFrame::new(fr.alap, fr.alap)),
                        ]
                    })
                    .collect();
                let views: Vec<&[(OpId, TimeFrame)]> =
                    changesets.iter().map(|c| c.as_slice()).collect();
                let flat = eval.force_batch(&self.frames, &views);
                flat.chunks_exact(2).map(|c| (c[0], c[1])).collect()
            } else {
                to_eval
                    .iter()
                    .map(|&(o, fr, _)| {
                        (
                            self.placement_force(eval, o, fr.asap),
                            self.placement_force(eval, o, fr.alap),
                        )
                    })
                    .collect()
            };
            // Pass 3 (sequential, scope order): cache write-back and the
            // selection fold. The epsilon tie-break is non-associative, so
            // this fold must run in scope order on one thread — that is
            // what keeps the parallel run bit-identical to the sequential
            // loop.
            let mut best: Option<(f64, OpId, bool)> = None;
            for &(o, src) in &cands {
                let (f_lo, f_hi) = match src {
                    CandSource::Cached(f_lo, f_hi) => (f_lo, f_hi),
                    CandSource::Pending(j) => {
                        let (f_lo, f_hi) = forces[j];
                        if let Some((gen, ctx)) = to_eval[j].2 {
                            cache[o.index()] = (gen, ctx, f_lo, f_hi);
                        }
                        (f_lo, f_hi)
                    }
                };
                let diff = (f_lo - f_hi).abs();
                // Shorten at the side with the higher force; on a tie keep
                // the ASAP end (deterministic stand-in for the paper's
                // "arbitrarily selects").
                let cut_low = f_lo > f_hi;
                if best.as_ref().is_none_or(|b| diff > b.0 + 1e-12) {
                    best = Some((diff, o, cut_low));
                }
            }
            let eval_elapsed = eval_started.elapsed();
            stats.eval_time += eval_elapsed;
            let Some((best_diff, o, cut_low)) = best else {
                break;
            };
            let commit_started = Instant::now();
            let fr = self.frames.get(o);
            let nf = if cut_low {
                TimeFrame::new(fr.asap + 1, fr.alap)
            } else {
                TimeFrame::new(fr.asap, fr.alap - 1)
            };
            let changes = self.implied_changes(o, nf);
            eval.commit(&self.frames, &changes);
            for &(q, f) in &changes {
                self.frames.set(q, f);
            }
            if use_cache {
                for &(q, _) in &changes {
                    block_gen[self.system.op(q).block().index()] = self.frames.generation();
                }
            }
            let commit_elapsed = commit_started.elapsed();
            stats.commit_time += commit_elapsed;
            iterations += 1;
            // Observation only: everything below reads state, never writes
            // it, so the reduction sequence is identical with recording on.
            if rec.enabled() {
                let unfixed = self
                    .scope_ops
                    .iter()
                    .filter(|&&q| !self.frames.get(q).is_fixed())
                    .count();
                rec.histogram_record("ifds.iter_eval_us", eval_elapsed.as_micros() as f64);
                rec.histogram_record("ifds.iter_commit_us", commit_elapsed.as_micros() as f64);
                rec.event(
                    "ifds.cut",
                    &[
                        ("op", o.index().into()),
                        ("low_side", cut_low.into()),
                        ("force_diff", best_diff.into()),
                    ],
                );
                rec.timeline(TimelinePoint {
                    phase: "ifds",
                    iteration: iterations,
                    values: vec![
                        ("force_diff".into(), best_diff),
                        ("unfixed_ops".into(), unfixed as f64),
                    ],
                });
                eval.record_iteration(rec, iterations);
            }
        }
        let mut schedule = Schedule::new(self.system.num_ops());
        for &o in &self.scope_ops {
            schedule.set(o, self.frames.fixed_start(o));
        }
        stats.iterations = iterations;
        stats.total_time = run_started.elapsed();
        stats.publish(rec);
        Ok(IfdsOutcome {
            schedule,
            iterations,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FdsConfig, SpringWeights};
    use crate::evaluator::ClassicEvaluator;
    use tcms_ir::generators::{add_ewf_process, paper_library};
    use tcms_ir::{ResourceLibrary, ResourceType, SystemBuilder};

    fn two_adder_block() -> (System, BlockId, Vec<OpId>) {
        let mut lib = ResourceLibrary::new();
        let add = lib.add(ResourceType::new("add", 1)).unwrap();
        let mut b = SystemBuilder::new(lib);
        let p = b.add_process("p");
        let blk = b.add_block(p, "b", 2).unwrap();
        let x = b.add_op(blk, "x", add).unwrap();
        let y = b.add_op(blk, "y", add).unwrap();
        (b.build().unwrap(), blk, vec![x, y])
    }

    #[test]
    fn engine_balances_two_independent_adders() {
        let (sys, blk, ops) = two_adder_block();
        let cfg = FdsConfig {
            lookahead: 1.0 / 3.0,
            spring_weights: SpringWeights::Uniform,
            ..FdsConfig::default()
        };
        let mut eval = ClassicEvaluator::new(&sys, &[blk], cfg);
        let out = IfdsEngine::new(&sys, vec![blk]).run(&mut eval).unwrap();
        out.schedule.verify(&sys).unwrap();
        let s0 = out.schedule.expect_start(ops[0]);
        let s1 = out.schedule.expect_start(ops[1]);
        assert_ne!(s0, s1, "FDS must spread the two adders over both steps");
        let add = sys.library().by_name("add").unwrap();
        assert_eq!(out.schedule.peak_usage(&sys, blk, add), 1);
        assert!(out.iterations >= 1);
    }

    #[test]
    fn chain_is_scheduled_respecting_precedence() {
        let mut lib = ResourceLibrary::new();
        let add = lib.add(ResourceType::new("add", 1)).unwrap();
        let mul = lib.add(ResourceType::new("mul", 2).pipelined()).unwrap();
        let mut b = SystemBuilder::new(lib);
        let p = b.add_process("p");
        let blk = b.add_block(p, "b", 8).unwrap();
        let a = b.add_op(blk, "a", add).unwrap();
        let m = b.add_op(blk, "m", mul).unwrap();
        let c = b.add_op(blk, "c", add).unwrap();
        b.add_dep(a, m).unwrap();
        b.add_dep(m, c).unwrap();
        let sys = b.build().unwrap();
        let mut eval = ClassicEvaluator::new(&sys, &[blk], FdsConfig::default());
        let out = IfdsEngine::new(&sys, vec![blk]).run(&mut eval).unwrap();
        out.schedule.verify(&sys).unwrap();
    }

    #[test]
    fn implied_changes_propagate() {
        let mut lib = ResourceLibrary::new();
        let add = lib.add(ResourceType::new("add", 1)).unwrap();
        let mut b = SystemBuilder::new(lib);
        let p = b.add_process("p");
        let blk = b.add_block(p, "b", 3).unwrap();
        let x = b.add_op(blk, "x", add).unwrap();
        let y = b.add_op(blk, "y", add).unwrap();
        b.add_dep(x, y).unwrap();
        let sys = b.build().unwrap();
        let eng = IfdsEngine::new(&sys, vec![blk]);
        // Pin x to 2 -> y is forced from [1,2] to [3,...]? No: range is 3,
        // y in [1,2]; x at [0,1]. Pin x to 1 -> y forced to 2.
        let ch = eng.implied_changes(x, TimeFrame::new(1, 1));
        assert!(ch.contains(&(x, TimeFrame::new(1, 1))));
        assert!(ch.contains(&(y, TimeFrame::new(2, 2))));
    }

    #[test]
    #[should_panic(expected = "within the current frame")]
    fn pin_outside_frame_panics() {
        let (sys, blk, ops) = two_adder_block();
        let eng = IfdsEngine::new(&sys, vec![blk]);
        let _ = eng.implied_changes(ops[0], TimeFrame::new(5, 5));
    }

    #[test]
    fn deterministic_across_runs() {
        let (sys, blk, _) = two_adder_block();
        let run = || {
            let mut eval = ClassicEvaluator::new(&sys, &[blk], FdsConfig::default());
            IfdsEngine::new(&sys, vec![blk]).run(&mut eval).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn cached_run_matches_naive_run_exactly() {
        // Two processes scheduled in one scope: a commit touches a single
        // block, so candidates of the *other* block stay cached. In a
        // single-block scope every commit invalidates everything and the
        // cache (correctly) never hits.
        let (lib, types) = paper_library();
        let mut b = SystemBuilder::new(lib);
        let (_, b1) = add_ewf_process(&mut b, "P1", 20, types).unwrap();
        let (_, b2) = add_ewf_process(&mut b, "P2", 22, types).unwrap();
        let sys = b.build().unwrap();
        let scope = vec![b1, b2];
        let cached = {
            let mut eval = ClassicEvaluator::new(&sys, &scope, FdsConfig::default());
            IfdsEngine::new(&sys, scope.clone()).run(&mut eval).unwrap()
        };
        let naive = {
            let mut eval = ClassicEvaluator::new(&sys, &scope, FdsConfig::default());
            IfdsEngine::new(&sys, scope.clone())
                .run_naive(&mut eval)
                .unwrap()
        };
        assert_eq!(cached, naive);
        assert_eq!(
            cached.schedule.starts(),
            naive.schedule.starts(),
            "start times must be bit-identical"
        );
        assert!(cached.stats.cache_hits > 0, "two-block run must hit");
        assert_eq!(naive.stats.cache_hits, 0);
        assert_eq!(naive.stats.cache_misses, 0);
        assert_eq!(
            naive.stats.batched_evals, 0,
            "the oracle run must stay on the scalar force path"
        );
        assert!(cached.stats.ops_evaluated < naive.stats.ops_evaluated);
    }

    #[test]
    fn recorded_run_is_bit_identical_and_captures_iterations() {
        use tcms_obs::TraceRecorder;
        let (sys, blk, _) = two_adder_block();
        let plain = {
            let mut eval = ClassicEvaluator::new(&sys, &[blk], FdsConfig::default());
            IfdsEngine::new(&sys, vec![blk]).run(&mut eval).unwrap()
        };
        let rec = TraceRecorder::new();
        let recorded = {
            let mut eval = ClassicEvaluator::new(&sys, &[blk], FdsConfig::default());
            IfdsEngine::new(&sys, vec![blk])
                .run_recorded(&mut eval, &rec)
                .unwrap()
        };
        assert_eq!(plain, recorded);
        assert_eq!(plain.schedule.starts(), recorded.schedule.starts());
        let data = rec.finish();
        assert_eq!(data.metrics.counter("ifds.iterations"), recorded.iterations);
        tcms_obs::sink::check_span_nesting(&data.events).unwrap();
        let points = data
            .events
            .iter()
            .filter(|e| matches!(e.kind, tcms_obs::TraceEventKind::Point(_)))
            .count();
        assert_eq!(points as u64, recorded.iterations);
    }

    #[test]
    fn stats_are_consistent() {
        let (sys, blk, _) = two_adder_block();
        let mut eval = ClassicEvaluator::new(&sys, &[blk], FdsConfig::default());
        let out = IfdsEngine::new(&sys, vec![blk]).run(&mut eval).unwrap();
        assert_eq!(out.stats.iterations, out.iterations);
        assert_eq!(
            out.stats.ops_evaluated, out.stats.cache_misses,
            "with caching on, every fresh evaluation is a miss"
        );
        assert_eq!(
            out.stats.ops_evaluated, out.stats.batched_evals,
            "run() scores every fresh pair through the batched entry point"
        );
        assert!(out.stats.total_time >= out.stats.eval_time);
        let mut merged = IfdsStats::default();
        merged.absorb(&out.stats);
        merged.absorb(&out.stats);
        assert_eq!(merged.iterations, 2 * out.stats.iterations);
        assert!(merged.hit_rate() >= 0.0 && merged.hit_rate() <= 1.0);
    }

    #[test]
    fn iteration_budget_trips_with_partial_progress() {
        use crate::config::RunBudget;
        let (lib, types) = paper_library();
        let mut b = SystemBuilder::new(lib);
        let (_, blk) = add_ewf_process(&mut b, "P1", 20, types).unwrap();
        let sys = b.build().unwrap();
        let budget = RunBudget {
            max_iterations: Some(1),
            ..RunBudget::default()
        };
        let mut eval = ClassicEvaluator::new(&sys, &[blk], FdsConfig::default());
        let err = IfdsEngine::new(&sys, vec![blk])
            .with_budget(budget)
            .run(&mut eval)
            .unwrap_err();
        match err {
            EngineError::BudgetExhausted {
                axis,
                iterations,
                evals,
                unfixed_ops,
                ..
            } => {
                assert_eq!(axis, BudgetAxis::Iterations);
                assert_eq!(iterations, 1);
                assert!(evals > 0, "one iteration must have evaluated");
                assert!(unfixed_ops > 0, "EWF cannot finish in one iteration");
            }
        }
    }

    #[test]
    fn eval_budget_trip_is_deterministic() {
        use crate::config::RunBudget;
        let (lib, types) = paper_library();
        let mut b = SystemBuilder::new(lib);
        let (_, blk) = add_ewf_process(&mut b, "P1", 20, types).unwrap();
        let sys = b.build().unwrap();
        let trip = || {
            let budget = RunBudget {
                max_evals: Some(50),
                ..RunBudget::default()
            };
            let mut eval = ClassicEvaluator::new(&sys, &[blk], FdsConfig::default());
            IfdsEngine::new(&sys, vec![blk])
                .with_budget(budget)
                .run(&mut eval)
                .unwrap_err()
        };
        let (a, b) = (trip(), trip());
        assert_eq!(a, b, "deterministic axes must trip identically");
        let EngineError::BudgetExhausted { axis, .. } = a;
        assert_eq!(axis, BudgetAxis::Evaluations);
    }

    #[test]
    fn generous_budget_matches_unbudgeted_run() {
        let (sys, blk, _) = two_adder_block();
        use crate::config::RunBudget;
        let plain = {
            let mut eval = ClassicEvaluator::new(&sys, &[blk], FdsConfig::default());
            IfdsEngine::new(&sys, vec![blk]).run(&mut eval).unwrap()
        };
        let budgeted = {
            let mut eval = ClassicEvaluator::new(&sys, &[blk], FdsConfig::default());
            IfdsEngine::new(&sys, vec![blk])
                .with_budget(RunBudget {
                    max_iterations: Some(1_000_000),
                    max_evals: Some(1_000_000),
                    ..RunBudget::default()
                })
                .run(&mut eval)
                .unwrap()
        };
        assert_eq!(plain, budgeted);
        assert_eq!(plain.schedule.starts(), budgeted.schedule.starts());
    }

    #[test]
    fn budget_trip_emits_recorder_event() {
        use crate::config::RunBudget;
        use tcms_obs::TraceRecorder;
        let (lib, types) = paper_library();
        let mut b = SystemBuilder::new(lib);
        let (_, blk) = add_ewf_process(&mut b, "P1", 20, types).unwrap();
        let sys = b.build().unwrap();
        let rec = TraceRecorder::new();
        let mut eval = ClassicEvaluator::new(&sys, &[blk], FdsConfig::default());
        let err = IfdsEngine::new(&sys, vec![blk])
            .with_budget(RunBudget {
                max_iterations: Some(2),
                ..RunBudget::default()
            })
            .run_recorded(&mut eval, &rec)
            .unwrap_err();
        assert!(matches!(err, EngineError::BudgetExhausted { .. }));
        let data = rec.finish();
        assert!(
            data.events.iter().any(|e| matches!(
                &e.kind,
                tcms_obs::TraceEventKind::Instant { name, .. } if *name == "ifds.budget_exhausted"
            )),
            "trip must be observable as an event"
        );
        assert_eq!(
            data.metrics.counter("ifds.iterations"),
            2,
            "partial-progress counters must still be published"
        );
    }
}
