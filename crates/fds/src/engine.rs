//! The improved force-directed scheduling engine (Verhaegh et al.).
//!
//! The engine implements *gradual time-frame reduction*: per iteration it
//! evaluates, for every not-yet-fixed operation in scope, the force of the
//! two extreme placements (ASAP and ALAP end of the time frame), selects
//! the operation with the maximal force difference and shortens its frame
//! by one step on the side with the higher force. Implied frame reductions
//! of predecessors/successors are propagated and priced into the force.
//!
//! The force model itself is pluggable (see
//! [`ForceEvaluator`]); this hook is exactly what
//! the paper's modulo extension plugs into.

use tcms_ir::frames::constrained_frames;
use tcms_ir::{BlockId, FrameTable, OpId, System, TimeFrame};

use crate::evaluator::ForceEvaluator;
use crate::schedule::Schedule;

/// Result of an engine run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IfdsOutcome {
    /// The final schedule (covering the ops of the engine's scope).
    pub schedule: Schedule,
    /// Number of frame-reduction iterations performed.
    pub iterations: u64,
}

/// Improved-FDS scheduling engine over a set of blocks.
pub struct IfdsEngine<'a> {
    system: &'a System,
    scope_ops: Vec<OpId>,
    frames: FrameTable,
}

impl<'a> IfdsEngine<'a> {
    /// Creates an engine scheduling the blocks in `scope` simultaneously.
    ///
    /// # Panics
    ///
    /// Panics if `scope` is empty.
    pub fn new(system: &'a System, scope: Vec<BlockId>) -> Self {
        assert!(!scope.is_empty(), "empty scheduling scope");
        let scope_ops = scope
            .iter()
            .flat_map(|&b| system.block(b).ops().iter().copied())
            .collect();
        IfdsEngine {
            system,
            scope_ops,
            frames: FrameTable::initial(system),
        }
    }

    /// The current frame table (initial ASAP/ALAP before [`IfdsEngine::run`]).
    pub fn frames(&self) -> &FrameTable {
        &self.frames
    }

    /// Frame changes implied by constraining `op` to `frame`, including
    /// `op` itself. Only actually-changing frames are listed.
    ///
    /// # Panics
    ///
    /// Panics if `frame` is not a sub-range of `op`'s current frame (such a
    /// pin could be infeasible).
    pub fn implied_changes(&self, op: OpId, frame: TimeFrame) -> Vec<(OpId, TimeFrame)> {
        let current = self.frames.get(op);
        assert!(
            current.intersect(frame) == Some(frame),
            "pinned frame must be within the current frame"
        );
        let block = self.system.op(op).block();
        let solved = constrained_frames(self.system, block, |q| {
            if q == op {
                frame
            } else {
                self.frames.get(q)
            }
        })
        .expect("pinning inside a consistent frame stays feasible");
        solved
            .into_iter()
            .filter(|&(q, f)| f != self.frames.get(q))
            .collect()
    }

    /// Applies committed frame changes to the engine's table. Drivers that
    /// reuse the engine's propagation (like the original-FDS baseline) call
    /// this after [`ForceEvaluator::commit`].
    pub fn apply(&mut self, changes: &[(OpId, TimeFrame)]) {
        for &(q, f) in changes {
            self.frames.set(q, f);
        }
    }

    /// Force of tentatively placing `op` at start time `t`.
    pub fn placement_force<E: ForceEvaluator>(&self, eval: &E, op: OpId, t: u32) -> f64 {
        let changes = self.implied_changes(op, TimeFrame::new(t, t));
        eval.force(&self.frames, &changes)
    }

    /// Runs gradual time-frame reduction to completion and extracts the
    /// schedule.
    pub fn run<E: ForceEvaluator>(mut self, eval: &mut E) -> IfdsOutcome {
        let mut iterations = 0;
        loop {
            let mut best: Option<(f64, OpId, bool)> = None;
            for &o in &self.scope_ops {
                let fr = self.frames.get(o);
                if fr.is_fixed() {
                    continue;
                }
                let f_lo = self.placement_force(eval, o, fr.asap);
                let f_hi = self.placement_force(eval, o, fr.alap);
                let diff = (f_lo - f_hi).abs();
                // Shorten at the side with the higher force; on a tie keep
                // the ASAP end (deterministic stand-in for the paper's
                // "arbitrarily selects").
                let cut_low = f_lo > f_hi;
                if best.as_ref().is_none_or(|b| diff > b.0 + 1e-12) {
                    best = Some((diff, o, cut_low));
                }
            }
            let Some((_, o, cut_low)) = best else { break };
            let fr = self.frames.get(o);
            let nf = if cut_low {
                TimeFrame::new(fr.asap + 1, fr.alap)
            } else {
                TimeFrame::new(fr.asap, fr.alap - 1)
            };
            let changes = self.implied_changes(o, nf);
            eval.commit(&self.frames, &changes);
            for &(q, f) in &changes {
                self.frames.set(q, f);
            }
            iterations += 1;
        }
        let mut schedule = Schedule::new(self.system.num_ops());
        for &o in &self.scope_ops {
            schedule.set(o, self.frames.fixed_start(o));
        }
        IfdsOutcome {
            schedule,
            iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FdsConfig, SpringWeights};
    use crate::evaluator::ClassicEvaluator;
    use tcms_ir::{ResourceLibrary, ResourceType, SystemBuilder};

    fn two_adder_block() -> (System, BlockId, Vec<OpId>) {
        let mut lib = ResourceLibrary::new();
        let add = lib.add(ResourceType::new("add", 1)).unwrap();
        let mut b = SystemBuilder::new(lib);
        let p = b.add_process("p");
        let blk = b.add_block(p, "b", 2).unwrap();
        let x = b.add_op(blk, "x", add).unwrap();
        let y = b.add_op(blk, "y", add).unwrap();
        (b.build().unwrap(), blk, vec![x, y])
    }

    #[test]
    fn engine_balances_two_independent_adders() {
        let (sys, blk, ops) = two_adder_block();
        let cfg = FdsConfig {
            lookahead: 1.0 / 3.0,
            spring_weights: SpringWeights::Uniform,
        };
        let mut eval = ClassicEvaluator::new(&sys, &[blk], cfg);
        let out = IfdsEngine::new(&sys, vec![blk]).run(&mut eval);
        out.schedule.verify(&sys).unwrap();
        let s0 = out.schedule.expect_start(ops[0]);
        let s1 = out.schedule.expect_start(ops[1]);
        assert_ne!(s0, s1, "FDS must spread the two adders over both steps");
        let add = sys.library().by_name("add").unwrap();
        assert_eq!(out.schedule.peak_usage(&sys, blk, add), 1);
        assert!(out.iterations >= 1);
    }

    #[test]
    fn chain_is_scheduled_respecting_precedence() {
        let mut lib = ResourceLibrary::new();
        let add = lib.add(ResourceType::new("add", 1)).unwrap();
        let mul = lib.add(ResourceType::new("mul", 2).pipelined()).unwrap();
        let mut b = SystemBuilder::new(lib);
        let p = b.add_process("p");
        let blk = b.add_block(p, "b", 8).unwrap();
        let a = b.add_op(blk, "a", add).unwrap();
        let m = b.add_op(blk, "m", mul).unwrap();
        let c = b.add_op(blk, "c", add).unwrap();
        b.add_dep(a, m).unwrap();
        b.add_dep(m, c).unwrap();
        let sys = b.build().unwrap();
        let mut eval = ClassicEvaluator::new(&sys, &[blk], FdsConfig::default());
        let out = IfdsEngine::new(&sys, vec![blk]).run(&mut eval);
        out.schedule.verify(&sys).unwrap();
    }

    #[test]
    fn implied_changes_propagate() {
        let mut lib = ResourceLibrary::new();
        let add = lib.add(ResourceType::new("add", 1)).unwrap();
        let mut b = SystemBuilder::new(lib);
        let p = b.add_process("p");
        let blk = b.add_block(p, "b", 3).unwrap();
        let x = b.add_op(blk, "x", add).unwrap();
        let y = b.add_op(blk, "y", add).unwrap();
        b.add_dep(x, y).unwrap();
        let sys = b.build().unwrap();
        let eng = IfdsEngine::new(&sys, vec![blk]);
        // Pin x to 2 -> y is forced from [1,2] to [3,...]? No: range is 3,
        // y in [1,2]; x at [0,1]. Pin x to 1 -> y forced to 2.
        let ch = eng.implied_changes(x, TimeFrame::new(1, 1));
        assert!(ch.contains(&(x, TimeFrame::new(1, 1))));
        assert!(ch.contains(&(y, TimeFrame::new(2, 2))));
    }

    #[test]
    #[should_panic(expected = "within the current frame")]
    fn pin_outside_frame_panics() {
        let (sys, blk, ops) = two_adder_block();
        let eng = IfdsEngine::new(&sys, vec![blk]);
        let _ = eng.implied_changes(ops[0], TimeFrame::new(5, 5));
    }

    #[test]
    fn deterministic_across_runs() {
        let (sys, blk, _) = two_adder_block();
        let run = || {
            let mut eval = ClassicEvaluator::new(&sys, &[blk], FdsConfig::default());
            IfdsEngine::new(&sys, vec![blk]).run(&mut eval)
        };
        assert_eq!(run(), run());
    }
}
