//! Occupancy probabilities of operations with time frames.
//!
//! With a uniform start-time distribution over the frame `[asap, alap]`, an
//! operation occupying its resource for `occ` cycles is busy at time `t`
//! with probability `overlap / width`, where `overlap` counts the start
//! times `s ∈ [asap, alap]` with `s ≤ t < s + occ`.

use tcms_ir::TimeFrame;

/// Probability that an operation with frame `frame` and occupancy `occ`
/// cycles keeps its resource busy at time step `t`.
///
/// # Panics
///
/// Panics if `occ == 0`.
#[inline]
pub fn occupancy_prob(frame: TimeFrame, occ: u32, t: u32) -> f64 {
    debug_assert!(occ > 0, "occupancy must be positive");
    let lo = frame.asap.max(t.saturating_sub(occ - 1));
    let hi = frame.alap.min(t);
    if lo > hi {
        0.0
    } else {
        f64::from(hi - lo + 1) / f64::from(frame.width())
    }
}

/// Adds the occupancy probabilities of one operation to `dist`, scaled by
/// `sign` (`+1.0` to add, `-1.0` to remove).
///
/// `dist` is indexed by time step; probabilities past the end of `dist`
/// are ignored (they cannot occur for feasible frames).
///
/// Returns the half-open range of indices that were written (empty
/// ranges come back as `(0, 0)`), so callers reusing delta buffers can
/// zero exactly the dirty span instead of the whole buffer.
///
/// Bit-identical to one [`occupancy_prob`] call per step — the overlap
/// count changes by at most one between neighbouring steps (ramp up,
/// plateau, ramp down), and identical operands give identical
/// quotients, so the division is only re-done when the count moves.
#[inline]
pub fn accumulate(dist: &mut [f64], frame: TimeFrame, occ: u32, sign: f64) -> (usize, usize) {
    debug_assert!(occ > 0, "occupancy must be positive");
    let Some(top) = dist.len().checked_sub(1) else {
        return (0, 0);
    };
    let last = (frame.alap + occ - 1).min(top as u32);
    if frame.asap > last {
        return (0, 0);
    }
    let width = f64::from(frame.width());
    let mut count_cached = 0u32;
    let mut term = 0.0f64;
    for t in frame.asap..=last {
        let lo = frame.asap.max(t.saturating_sub(occ - 1));
        let hi = frame.alap.min(t);
        let count = hi - lo + 1;
        if count != count_cached {
            count_cached = count;
            term = sign * (f64::from(count) / width);
        }
        dist[t as usize] += term;
    }
    (frame.asap as usize, last as usize + 1)
}

/// The seed's per-step accumulation loop, kept verbatim (one
/// [`occupancy_prob`] division per time step) as the oracle
/// [`accumulate`] is pinned against and as part of the jagged-era
/// baseline the `repro_force_kernel` bench measures.
#[cfg(any(test, feature = "naive-oracle"))]
pub fn accumulate_reference(dist: &mut [f64], frame: TimeFrame, occ: u32, sign: f64) {
    let last = (frame.alap + occ - 1).min(dist.len().saturating_sub(1) as u32);
    for t in frame.asap..=last {
        dist[t as usize] += sign * occupancy_prob(frame, occ, t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_occupancy_uniform() {
        let f = TimeFrame::new(2, 5);
        for t in 2..=5 {
            assert!((occupancy_prob(f, 1, t) - 0.25).abs() < 1e-12);
        }
        assert_eq!(occupancy_prob(f, 1, 1), 0.0);
        assert_eq!(occupancy_prob(f, 1, 6), 0.0);
    }

    #[test]
    fn fixed_op_is_certain() {
        let f = TimeFrame::new(3, 3);
        assert_eq!(occupancy_prob(f, 2, 3), 1.0);
        assert_eq!(occupancy_prob(f, 2, 4), 1.0);
        assert_eq!(occupancy_prob(f, 2, 5), 0.0);
        assert_eq!(occupancy_prob(f, 2, 2), 0.0);
    }

    #[test]
    fn multicycle_triangle() {
        // Frame [0,1], occupancy 2: busy at 0 with p=1/2, at 1 with p=1,
        // at 2 with p=1/2.
        let f = TimeFrame::new(0, 1);
        assert!((occupancy_prob(f, 2, 0) - 0.5).abs() < 1e-12);
        assert!((occupancy_prob(f, 2, 1) - 1.0).abs() < 1e-12);
        assert!((occupancy_prob(f, 2, 2) - 0.5).abs() < 1e-12);
    }

    /// The run-cached accumulation is bitwise the seed's per-step loop,
    /// and the reported span covers every index it wrote — exhaustively
    /// over small lengths, frames, occupancies and both signs.
    #[test]
    fn accumulate_matches_reference_bitwise() {
        for len in 1..12usize {
            for width in 1..6u32 {
                for asap in 0..6u32 {
                    for occ in 1..4u32 {
                        let f = TimeFrame::new(asap, asap + width - 1);
                        for sign in [1.0, -1.0] {
                            let mut a = vec![0.0625; len];
                            let mut b = a.clone();
                            let (lo, hi) = accumulate(&mut a, f, occ, sign);
                            accumulate_reference(&mut b, f, occ, sign);
                            assert!(lo <= hi && hi <= len, "span must be a valid range");
                            for (t, (x, y)) in a.iter().zip(&b).enumerate() {
                                assert_eq!(
                                    x.to_bits(),
                                    y.to_bits(),
                                    "len {len} frame {f:?} occ {occ} sign {sign} t={t}"
                                );
                                if x.to_bits() != 0.0625f64.to_bits() {
                                    assert!(lo <= t && t < hi, "write at {t} outside span");
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn probabilities_sum_to_occupancy() {
        // Total expected busy time equals the occupancy, independent of the
        // frame width.
        for width in 1..6u32 {
            for occ in 1..4u32 {
                let f = TimeFrame::new(3, 3 + width - 1);
                let total: f64 = (0..20).map(|t| occupancy_prob(f, occ, t)).sum();
                assert!(
                    (total - f64::from(occ)).abs() < 1e-9,
                    "width {width} occ {occ}: {total}"
                );
            }
        }
    }

    #[test]
    fn accumulate_add_then_remove_is_identity() {
        let mut dist = vec![0.0; 10];
        let f = TimeFrame::new(1, 4);
        accumulate(&mut dist, f, 2, 1.0);
        assert!(dist[1] > 0.0 && dist[5] > 0.0);
        accumulate(&mut dist, f, 2, -1.0);
        assert!(dist.iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn accumulate_clamps_to_dist_len() {
        let mut dist = vec![0.0; 3];
        accumulate(&mut dist, TimeFrame::new(1, 2), 4, 1.0);
        // Would extend to t=5; must not panic and fills what fits.
        assert!(dist[1] > 0.0 && dist[2] > 0.0);
    }
}
