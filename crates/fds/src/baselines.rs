//! Trivial baseline schedulers: ASAP and ALAP.

use tcms_ir::{FrameTable, System};

use crate::schedule::Schedule;

/// Schedules every operation as soon as possible.
pub fn asap_schedule(system: &System) -> Schedule {
    let frames = FrameTable::initial(system);
    let mut s = Schedule::new(system.num_ops());
    for o in system.op_ids() {
        s.set(o, frames.get(o).asap);
    }
    s
}

/// Schedules every operation as late as possible.
pub fn alap_schedule(system: &System) -> Schedule {
    let frames = FrameTable::initial(system);
    let mut s = Schedule::new(system.num_ops());
    for o in system.op_ids() {
        s.set(o, frames.get(o).alap);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcms_ir::generators::{add_ewf_process, paper_library};
    use tcms_ir::SystemBuilder;

    fn ewf() -> (System, tcms_ir::BlockId, tcms_ir::generators::PaperTypes) {
        let (lib, types) = paper_library();
        let mut b = SystemBuilder::new(lib);
        let (_, blk) = add_ewf_process(&mut b, "P", 25, types).unwrap();
        (b.build().unwrap(), blk, types)
    }

    #[test]
    fn asap_is_valid() {
        let (sys, _, _) = ewf();
        asap_schedule(&sys).verify(&sys).unwrap();
    }

    #[test]
    fn alap_is_valid() {
        let (sys, _, _) = ewf();
        alap_schedule(&sys).verify(&sys).unwrap();
    }

    #[test]
    fn asap_starts_earlier_than_alap() {
        let (sys, blk, _) = ewf();
        let asap = asap_schedule(&sys);
        let alap = alap_schedule(&sys);
        for &o in sys.block(blk).ops() {
            assert!(asap.expect_start(o) <= alap.expect_start(o));
        }
        assert!(asap.block_makespan(&sys, blk) <= alap.block_makespan(&sys, blk));
    }

    #[test]
    fn asap_peak_is_an_upper_resource_bound() {
        // The spread-out FDS schedule should never need more units than the
        // greedy ASAP packing of the same block (sanity for later tests).
        let (sys, blk, types) = ewf();
        let asap = asap_schedule(&sys);
        assert!(asap.peak_usage(&sys, blk, types.mul) >= 1);
        assert!(asap.peak_usage(&sys, blk, types.add) >= 1);
    }
}
