//! ASCII Gantt rendering of block schedules.
//!
//! One row per operation, one column per control step; `#` marks resource
//! occupancy, `-` the remaining latency of pipelined units. A totals row
//! per resource type shows the instantaneous usage the instance counts
//! come from.

use std::fmt::Write as _;

use tcms_ir::{BlockId, System};

use crate::schedule::Schedule;

/// Renders the schedule of `block` as an ASCII Gantt chart.
///
/// # Panics
///
/// Panics if an operation of the block is unscheduled.
///
/// # Example
///
/// ```
/// use tcms_ir::generators::{add_diffeq_process, paper_library};
/// use tcms_ir::SystemBuilder;
/// use tcms_fds::{gantt, schedule_block_ifds, FdsConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let (lib, types) = paper_library();
/// let mut b = SystemBuilder::new(lib);
/// let (_, blk) = add_diffeq_process(&mut b, "P", 10, types)?;
/// let sys = b.build()?;
/// let out = schedule_block_ifds(&sys, blk, &FdsConfig::default()).unwrap();
/// let chart = gantt::render_block(&sys, blk, &out.schedule);
/// assert!(chart.contains("m1"));
/// # Ok(())
/// # }
/// ```
pub fn render_block(system: &System, block: BlockId, schedule: &Schedule) -> String {
    let blk = system.block(block);
    let width = blk.time_range() as usize;
    let name_w = blk
        .ops()
        .iter()
        .map(|&o| system.op(o).name().len())
        .max()
        .unwrap_or(2)
        .max(4);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} :: {} (T = {})",
        system.process(blk.process()).name(),
        blk.name(),
        blk.time_range()
    );
    // Header with step digits.
    let _ = write!(out, "{:>name_w$} |", "step");
    for t in 0..width {
        let _ = write!(out, "{}", t % 10);
    }
    out.push('\n');
    let _ = writeln!(out, "{}-+{}", "-".repeat(name_w), "-".repeat(width));

    let mut ops: Vec<_> = blk.ops().to_vec();
    ops.sort_by_key(|&o| (schedule.expect_start(o), o));
    for o in ops {
        let start = schedule.expect_start(o) as usize;
        let occ = system.occupancy(o) as usize;
        let delay = system.delay(o) as usize;
        let _ = write!(out, "{:>name_w$} |", system.op(o).name());
        for t in 0..width {
            let ch = if t >= start && t < start + occ {
                '#'
            } else if t >= start + occ && t < start + delay {
                '-'
            } else {
                '.'
            };
            out.push(ch);
        }
        out.push('\n');
    }
    // Usage totals per type.
    let _ = writeln!(out, "{}-+{}", "-".repeat(name_w), "-".repeat(width));
    for (k, rt) in system.library().iter() {
        let usage = schedule.usage(system, block, k);
        if usage.iter().all(|&u| u == 0) {
            continue;
        }
        let _ = write!(out, "{:>name_w$} |", rt.name());
        for &u in &usage {
            if u == 0 {
                out.push('.');
            } else if u < 10 {
                let _ = write!(out, "{u}");
            } else {
                out.push('+');
            }
        }
        out.push('\n');
    }
    out
}

/// Renders every block of the system, separated by blank lines.
pub fn render_system(system: &System, schedule: &Schedule) -> String {
    system
        .block_ids()
        .map(|b| render_block(system, b, schedule))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{schedule_block_ifds, schedule_system_local, FdsConfig};
    use tcms_ir::generators::{add_diffeq_process, paper_library};
    use tcms_ir::SystemBuilder;

    fn diffeq() -> (System, BlockId, Schedule) {
        let (lib, types) = paper_library();
        let mut b = SystemBuilder::new(lib);
        let (_, blk) = add_diffeq_process(&mut b, "P", 10, types).unwrap();
        let sys = b.build().unwrap();
        let out = schedule_block_ifds(&sys, blk, &FdsConfig::default()).unwrap();
        (sys, blk, out.schedule)
    }

    #[test]
    fn chart_rows_match_ops_plus_usage() {
        let (sys, blk, schedule) = diffeq();
        let chart = render_block(&sys, blk, &schedule);
        let rows = chart.lines().count();
        // title + header + 2 separators + 11 ops + used-type rows (3).
        assert_eq!(rows, 2 + 2 + 11 + 3);
        assert!(chart.contains("P :: body (T = 10)"));
    }

    #[test]
    fn multiplier_rows_show_latency_tail() {
        let (sys, blk, schedule) = diffeq();
        let chart = render_block(&sys, blk, &schedule);
        // Pipelined 2-cycle multiplier: one '#' followed by one '-'.
        let m1_row = chart
            .lines()
            .find(|l| l.trim_start().starts_with("m1 "))
            .unwrap();
        assert!(m1_row.contains("#-"));
    }

    #[test]
    fn usage_row_matches_profile() {
        let (sys, blk, schedule) = diffeq();
        let mul = sys.library().by_name("mul").unwrap();
        let usage = schedule.usage(&sys, blk, mul);
        let chart = render_block(&sys, blk, &schedule);
        let row = chart
            .lines()
            .find(|l| l.trim_start().starts_with("mul "))
            .unwrap();
        let cells: String = row.split('|').nth(1).unwrap().to_owned();
        for (t, &u) in usage.iter().enumerate() {
            let c = cells.as_bytes()[t] as char;
            if u == 0 {
                assert_eq!(c, '.');
            } else {
                assert_eq!(c, char::from_digit(u, 10).unwrap());
            }
        }
    }

    #[test]
    fn system_render_covers_all_blocks() {
        let (lib, types) = paper_library();
        let mut b = SystemBuilder::new(lib);
        add_diffeq_process(&mut b, "A", 10, types).unwrap();
        add_diffeq_process(&mut b, "B", 12, types).unwrap();
        let sys = b.build().unwrap();
        let out = schedule_system_local(&sys, &FdsConfig::default()).unwrap();
        let text = render_system(&sys, &out.schedule);
        assert!(text.contains("A :: body"));
        assert!(text.contains("B :: body"));
    }
}
