//! The original force-directed scheduling algorithm (Paulin/Knight 1989).
//!
//! Per iteration the original algorithm evaluates *every* feasible
//! placement of *every* unscheduled operation, fixes the operation with the
//! least force at its best time step, and repeats. It is kept as a baseline
//! for the `fds_vs_ifds` ablation bench; production code should use the
//! engine in [`crate::engine`].

use tcms_ir::{BlockId, System, TimeFrame};

use crate::config::FdsConfig;
use crate::engine::{IfdsEngine, IfdsOutcome, IfdsStats};
use crate::evaluator::{ClassicEvaluator, ForceEvaluator};
use crate::schedule::Schedule;

/// Schedules one block with the original FDS algorithm.
pub fn schedule_block_fds(system: &System, block: BlockId, config: &FdsConfig) -> IfdsOutcome {
    let mut eval = ClassicEvaluator::new(system, &[block], config.clone());
    // Reuse the engine's frame bookkeeping for propagation, but drive it
    // with the original selection rule.
    let mut engine = FdsDriver {
        inner: IfdsEngine::new(system, vec![block]),
        system,
        block,
    };
    engine.run(&mut eval)
}

struct FdsDriver<'a> {
    inner: IfdsEngine<'a>,
    system: &'a System,
    block: BlockId,
}

impl FdsDriver<'_> {
    fn run<E: ForceEvaluator>(&mut self, eval: &mut E) -> IfdsOutcome {
        let run_started = std::time::Instant::now();
        let ops: Vec<_> = self.system.block(self.block).ops().to_vec();
        let mut iterations = 0;
        let mut ops_evaluated = 0;
        loop {
            let mut best: Option<(f64, tcms_ir::OpId, u32)> = None;
            for &o in &ops {
                let fr = self.inner.frames().get(o);
                if fr.is_fixed() {
                    continue;
                }
                for t in fr.asap..=fr.alap {
                    ops_evaluated += 1;
                    let f = self.inner.placement_force(eval, o, t);
                    if best.as_ref().is_none_or(|b| f < b.0 - 1e-12) {
                        best = Some((f, o, t));
                    }
                }
            }
            let Some((_, o, t)) = best else { break };
            let changes = self.inner.implied_changes(o, TimeFrame::new(t, t));
            eval.commit(self.inner.frames(), &changes);
            self.inner.apply(&changes);
            iterations += 1;
        }
        let mut schedule = Schedule::new(self.system.num_ops());
        for &o in &ops {
            schedule.set(o, self.inner.frames().fixed_start(o));
        }
        IfdsOutcome {
            schedule,
            iterations,
            stats: IfdsStats {
                iterations,
                ops_evaluated,
                total_time: run_started.elapsed(),
                ..IfdsStats::default()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SpringWeights;
    use tcms_ir::generators::{add_diffeq_process, add_ewf_process, paper_library};
    use tcms_ir::SystemBuilder;

    #[test]
    fn fds_schedules_diffeq_validly() {
        let (lib, types) = paper_library();
        let mut b = SystemBuilder::new(lib);
        let (_, blk) = add_diffeq_process(&mut b, "P", 10, types).unwrap();
        let sys = b.build().unwrap();
        let out = schedule_block_fds(&sys, blk, &FdsConfig::default());
        out.schedule.verify(&sys).unwrap();
        // One op fixed per iteration, some may collapse implicitly.
        assert!(out.iterations as usize <= sys.block(blk).len());
    }

    #[test]
    fn fds_spreads_multiplications() {
        let (lib, types) = paper_library();
        let mut b = SystemBuilder::new(lib);
        let (_, blk) = add_ewf_process(&mut b, "P", 20, types).unwrap();
        let sys = b.build().unwrap();
        let out = schedule_block_fds(&sys, blk, &FdsConfig::default());
        out.schedule.verify(&sys).unwrap();
        // 8 multiplications in 20 steps: FDS should need far fewer than the
        // 8 instances of a naive ASAP schedule; 3 is what classic FDS
        // reaches on EWF-like graphs with moderate slack.
        let peak = out.schedule.peak_usage(&sys, blk, types.mul);
        assert!(peak <= 3, "multiplier peak {peak} too high");
    }

    #[test]
    fn fds_respects_uniform_weights() {
        let (lib, types) = paper_library();
        let mut b = SystemBuilder::new(lib);
        let (_, blk) = add_diffeq_process(&mut b, "P", 12, types).unwrap();
        let sys = b.build().unwrap();
        let cfg = FdsConfig {
            lookahead: 0.0,
            spring_weights: SpringWeights::Uniform,
            ..FdsConfig::default()
        };
        let out = schedule_block_fds(&sys, blk, &cfg);
        out.schedule.verify(&sys).unwrap();
    }
}
