//! Schedules: fixed start times with structural verification and usage
//! profiles.

use std::error::Error;
use std::fmt;

use tcms_ir::{BlockId, OpId, ResourceTypeId, System};

/// Violations detected by [`Schedule::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// An operation was never assigned a start time.
    Unscheduled {
        /// The operation left without a start time.
        op: String,
    },
    /// A data dependency is violated: the successor starts before the
    /// predecessor's result is ready.
    Precedence {
        /// Producing operation.
        from: String,
        /// Consuming operation scheduled too early.
        to: String,
    },
    /// An operation finishes after its block's time range.
    Deadline {
        /// The late operation.
        op: String,
        /// Completion time of the operation.
        finish: u32,
        /// The block's time range.
        time_range: u32,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Unscheduled { op } => write!(f, "operation `{op}` is unscheduled"),
            ScheduleError::Precedence { from, to } => {
                write!(f, "`{to}` starts before `{from}` finishes")
            }
            ScheduleError::Deadline {
                op,
                finish,
                time_range,
            } => write!(
                f,
                "operation `{op}` finishes at {finish}, past the time range {time_range}"
            ),
        }
    }
}

impl Error for ScheduleError {}

/// Start times for the operations of a system.
///
/// Partially filled schedules are allowed while a scheduler is running;
/// [`Schedule::verify`] demands completeness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    starts: Vec<Option<u32>>,
}

impl Schedule {
    /// Creates an empty schedule for `num_ops` operations.
    pub fn new(num_ops: usize) -> Self {
        Schedule {
            starts: vec![None; num_ops],
        }
    }

    /// All start times, indexed by operation id (`None` = unscheduled).
    pub fn starts(&self) -> &[Option<u32>] {
        &self.starts
    }

    /// Sets the start time of `op`.
    pub fn set(&mut self, op: OpId, start: u32) {
        self.starts[op.index()] = Some(start);
    }

    /// Start time of `op`, if assigned.
    pub fn start(&self, op: OpId) -> Option<u32> {
        self.starts[op.index()]
    }

    /// Start time of `op`.
    ///
    /// # Panics
    ///
    /// Panics if `op` is unscheduled.
    pub fn expect_start(&self, op: OpId) -> u32 {
        self.starts[op.index()].unwrap_or_else(|| panic!("operation {op} is unscheduled"))
    }

    /// Number of operations with an assigned start time.
    pub fn assigned(&self) -> usize {
        self.starts.iter().filter(|s| s.is_some()).count()
    }

    /// Checks completeness, precedence and deadlines against `system`.
    ///
    /// # Errors
    ///
    /// Returns the first violation found as a [`ScheduleError`].
    pub fn verify(&self, system: &System) -> Result<(), ScheduleError> {
        for (o, op) in system.ops() {
            let Some(start) = self.start(o) else {
                return Err(ScheduleError::Unscheduled {
                    op: op.name().to_owned(),
                });
            };
            let finish = start + system.delay(o);
            let time_range = system.block(op.block()).time_range();
            if finish > time_range {
                return Err(ScheduleError::Deadline {
                    op: op.name().to_owned(),
                    finish,
                    time_range,
                });
            }
            for &s in system.succs(o) {
                let succ_start = self.start(s).ok_or_else(|| ScheduleError::Unscheduled {
                    op: system.op(s).name().to_owned(),
                })?;
                if succ_start < finish {
                    return Err(ScheduleError::Precedence {
                        from: op.name().to_owned(),
                        to: system.op(s).name().to_owned(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Occupancy counts of resource type `rtype` in `block`, indexed by
    /// block-local time step `0..time_range`.
    ///
    /// # Panics
    ///
    /// Panics if an operation of the block is unscheduled.
    pub fn usage(&self, system: &System, block: BlockId, rtype: ResourceTypeId) -> Vec<u32> {
        let mut usage = vec![0u32; system.block(block).time_range() as usize];
        for &o in system.block(block).ops() {
            if system.op(o).resource_type() != rtype {
                continue;
            }
            let start = self.expect_start(o);
            for t in start..start + system.occupancy(o) {
                usage[t as usize] += 1;
            }
        }
        usage
    }

    /// Peak concurrent usage of `rtype` in `block` — the instance count a
    /// dedicated (local) allocation needs for this block.
    pub fn peak_usage(&self, system: &System, block: BlockId, rtype: ResourceTypeId) -> u32 {
        self.usage(system, block, rtype)
            .into_iter()
            .max()
            .unwrap_or(0)
    }

    /// Completion time of `block`: the latest finish over its operations.
    pub fn block_makespan(&self, system: &System, block: BlockId) -> u32 {
        system
            .block(block)
            .ops()
            .iter()
            .map(|&o| self.expect_start(o) + system.delay(o))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcms_ir::{ResourceLibrary, ResourceType, SystemBuilder};

    fn sample() -> (System, BlockId, Vec<OpId>) {
        let mut lib = ResourceLibrary::new();
        let add = lib.add(ResourceType::new("add", 1)).unwrap();
        let mul = lib.add(ResourceType::new("mul", 2).pipelined()).unwrap();
        let mut b = SystemBuilder::new(lib);
        let p = b.add_process("p");
        let blk = b.add_block(p, "b", 6).unwrap();
        let a = b.add_op(blk, "a", add).unwrap();
        let m = b.add_op(blk, "m", mul).unwrap();
        let c = b.add_op(blk, "c", add).unwrap();
        b.add_dep(a, m).unwrap();
        b.add_dep(m, c).unwrap();
        (b.build().unwrap(), blk, vec![a, m, c])
    }

    #[test]
    fn verify_accepts_valid_schedule() {
        let (sys, _, ops) = sample();
        let mut s = Schedule::new(sys.num_ops());
        s.set(ops[0], 0);
        s.set(ops[1], 1);
        s.set(ops[2], 3);
        assert!(s.verify(&sys).is_ok());
        assert_eq!(s.assigned(), 3);
    }

    #[test]
    fn verify_rejects_unscheduled() {
        let (sys, _, ops) = sample();
        let mut s = Schedule::new(sys.num_ops());
        s.set(ops[0], 0);
        assert!(matches!(
            s.verify(&sys),
            Err(ScheduleError::Unscheduled { .. })
        ));
    }

    #[test]
    fn verify_rejects_precedence_violation() {
        let (sys, _, ops) = sample();
        let mut s = Schedule::new(sys.num_ops());
        s.set(ops[0], 0);
        s.set(ops[1], 0); // starts with its producer
        s.set(ops[2], 3);
        assert!(matches!(
            s.verify(&sys),
            Err(ScheduleError::Precedence { .. })
        ));
    }

    #[test]
    fn verify_rejects_deadline_violation() {
        let (sys, _, ops) = sample();
        let mut s = Schedule::new(sys.num_ops());
        s.set(ops[0], 0);
        s.set(ops[1], 1);
        s.set(ops[2], 6); // finishes at 7 > 6
        assert!(matches!(
            s.verify(&sys),
            Err(ScheduleError::Deadline { .. })
        ));
    }

    #[test]
    fn usage_counts_occupancy() {
        let (sys, blk, ops) = sample();
        let add = sys.library().by_name("add").unwrap();
        let mul = sys.library().by_name("mul").unwrap();
        let mut s = Schedule::new(sys.num_ops());
        s.set(ops[0], 0);
        s.set(ops[1], 1);
        s.set(ops[2], 3);
        assert_eq!(s.usage(&sys, blk, add), vec![1, 0, 0, 1, 0, 0]);
        // Pipelined multiplier occupies only its issue cycle.
        assert_eq!(s.usage(&sys, blk, mul), vec![0, 1, 0, 0, 0, 0]);
        assert_eq!(s.peak_usage(&sys, blk, add), 1);
        assert_eq!(s.block_makespan(&sys, blk), 4);
    }

    #[test]
    fn multicycle_usage_spans_delay() {
        let mut lib = ResourceLibrary::new();
        let div = lib.add(ResourceType::new("div", 3)).unwrap();
        let mut b = SystemBuilder::new(lib);
        let p = b.add_process("p");
        let blk = b.add_block(p, "b", 5).unwrap();
        let d = b.add_op(blk, "d", div).unwrap();
        let sys = b.build().unwrap();
        let mut s = Schedule::new(1);
        s.set(d, 1);
        assert_eq!(s.usage(&sys, blk, div), vec![0, 1, 1, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "unscheduled")]
    fn expect_start_panics() {
        let (sys, _, ops) = sample();
        let s = Schedule::new(sys.num_ops());
        let _ = s.expect_start(ops[0]);
    }

    #[test]
    fn error_display() {
        let e = ScheduleError::Deadline {
            op: "x".into(),
            finish: 9,
            time_range: 6,
        };
        assert_eq!(
            e.to_string(),
            "operation `x` finishes at 9, past the time range 6"
        );
    }
}
