//! Textual serialization of schedules (`.sched` format).
//!
//! One line per operation: `process block op start`. The format is
//! order-independent and keyed by names, so a saved schedule can be
//! re-checked against a re-parsed design.

use tcms_ir::{IrError, System};

use crate::schedule::Schedule;

/// Renders `schedule` in the `.sched` text format.
///
/// # Panics
///
/// Panics if the schedule is incomplete.
pub fn to_sched(system: &System, schedule: &Schedule) -> String {
    let mut out = String::new();
    for (_, process) in system.processes() {
        for &bid in process.blocks() {
            let block = system.block(bid);
            for &o in block.ops() {
                out.push_str(&format!(
                    "{} {} {} {}\n",
                    process.name(),
                    block.name(),
                    system.op(o).name(),
                    schedule.expect_start(o)
                ));
            }
        }
    }
    out
}

/// Parses a `.sched` text back into a [`Schedule`] for `system`.
///
/// Blank lines and `#` comments are ignored. Every operation of the system
/// must be covered exactly once.
///
/// # Errors
///
/// Returns [`IrError::Parse`] for malformed lines, unknown names,
/// duplicates and missing operations.
pub fn from_sched(system: &System, text: &str) -> Result<Schedule, IrError> {
    let mut schedule = Schedule::new(system.num_ops());
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(pname), Some(bname), Some(oname), Some(start)) =
            (it.next(), it.next(), it.next(), it.next())
        else {
            return Err(IrError::Parse {
                line: lineno,
                message: "expected `process block op start`".into(),
            });
        };
        let start: u32 = start.parse().map_err(|_| IrError::Parse {
            line: lineno,
            message: format!("invalid start time `{start}`"),
        })?;
        let p = system
            .process_by_name(pname)
            .ok_or_else(|| IrError::Unknown {
                kind: "process",
                name: pname.to_owned(),
            })?;
        let b = system
            .block_by_name(p, bname)
            .ok_or_else(|| IrError::Unknown {
                kind: "block",
                name: bname.to_owned(),
            })?;
        let o = system
            .op_by_name(b, oname)
            .ok_or_else(|| IrError::Unknown {
                kind: "op",
                name: oname.to_owned(),
            })?;
        if schedule.start(o).is_some() {
            return Err(IrError::Parse {
                line: lineno,
                message: format!("`{oname}` scheduled twice"),
            });
        }
        schedule.set(o, start);
    }
    for (o, op) in system.ops() {
        if schedule.start(o).is_none() {
            return Err(IrError::Parse {
                // Point at the end of the input: the line where the missing
                // entry would have appeared.
                line: text.lines().count() + 1,
                message: format!("operation `{}` missing from schedule", op.name()),
            });
        }
    }
    Ok(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{schedule_system_local, FdsConfig};
    use tcms_ir::generators::paper_system;

    fn scheduled() -> (System, Schedule) {
        let (sys, _) = paper_system().unwrap();
        let out = schedule_system_local(&sys, &FdsConfig::default()).unwrap();
        (sys, out.schedule)
    }

    #[test]
    fn round_trip() {
        let (sys, schedule) = scheduled();
        let text = to_sched(&sys, &schedule);
        let back = from_sched(&sys, &text).unwrap();
        assert_eq!(back, schedule);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let (sys, schedule) = scheduled();
        let text = format!("# saved schedule\n\n{}\n# end", to_sched(&sys, &schedule));
        assert_eq!(from_sched(&sys, &text).unwrap(), schedule);
    }

    #[test]
    fn missing_op_rejected() {
        let (sys, schedule) = scheduled();
        let text = to_sched(&sys, &schedule);
        let truncated: String = text.lines().skip(1).collect::<Vec<_>>().join("\n");
        let err = from_sched(&sys, &truncated).unwrap_err();
        assert!(matches!(err, IrError::Parse { .. }), "{err}");
    }

    #[test]
    fn duplicate_rejected() {
        let (sys, schedule) = scheduled();
        let text = to_sched(&sys, &schedule);
        let first = text.lines().next().unwrap();
        let doubled = format!("{first}\n{text}");
        let err = from_sched(&sys, &doubled).unwrap_err();
        assert!(matches!(err, IrError::Parse { line: 2, .. }));
    }

    #[test]
    fn unknown_names_rejected() {
        let (sys, _) = scheduled();
        assert!(matches!(
            from_sched(&sys, "NoSuch body a1 0"),
            Err(IrError::Unknown {
                kind: "process",
                ..
            })
        ));
        assert!(matches!(
            from_sched(&sys, "P1 nope a1 0"),
            Err(IrError::Unknown { kind: "block", .. })
        ));
        assert!(matches!(
            from_sched(&sys, "P1 body zz 0"),
            Err(IrError::Unknown { kind: "op", .. })
        ));
    }

    #[test]
    fn malformed_line_rejected() {
        let (sys, _) = scheduled();
        assert!(from_sched(&sys, "P1 body a1").is_err());
        assert!(from_sched(&sys, "P1 body a1 x").is_err());
    }
}
