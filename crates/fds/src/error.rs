//! Errors of the force-directed scheduling engine.

use std::error::Error;
use std::fmt;
use std::time::Duration;

/// Which axis of a [`crate::RunBudget`] tripped the watchdog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetAxis {
    /// The iteration cap (`max_iterations`).
    Iterations,
    /// The wall-clock deadline (`wall_deadline`).
    WallClock,
    /// The candidate-evaluation cap (`max_evals`).
    Evaluations,
}

impl fmt::Display for BudgetAxis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetAxis::Iterations => write!(f, "iteration"),
            BudgetAxis::WallClock => write!(f, "wall-clock"),
            BudgetAxis::Evaluations => write!(f, "evaluation"),
        }
    }
}

/// Errors raised by an [`crate::IfdsEngine`] run.
///
/// Equality ignores the non-deterministic `elapsed` wall time of
/// [`EngineError::BudgetExhausted`], so deterministic budget trips (by
/// iteration or evaluation count) compare equal across runs.
#[derive(Debug, Clone)]
pub enum EngineError {
    /// The run budget was exhausted before every frame was fixed. The
    /// payload is a partial-progress report: how far the reduction got and
    /// how much work remains.
    BudgetExhausted {
        /// The budget axis that tripped.
        axis: BudgetAxis,
        /// Frame-reduction iterations completed before the trip.
        iterations: u64,
        /// Candidate force pairs evaluated before the trip.
        evals: u64,
        /// Operations whose frames were still unfixed at the trip.
        unfixed_ops: usize,
        /// Wall time spent before the trip (non-deterministic; excluded
        /// from equality).
        elapsed: Duration,
    },
}

impl PartialEq for EngineError {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (
                EngineError::BudgetExhausted {
                    axis: a1,
                    iterations: i1,
                    evals: e1,
                    unfixed_ops: u1,
                    elapsed: _,
                },
                EngineError::BudgetExhausted {
                    axis: a2,
                    iterations: i2,
                    evals: e2,
                    unfixed_ops: u2,
                    elapsed: _,
                },
            ) => a1 == a2 && i1 == i2 && e1 == e2 && u1 == u2,
        }
    }
}

impl Eq for EngineError {}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::BudgetExhausted {
                axis,
                iterations,
                evals,
                unfixed_ops,
                ..
            } => write!(
                f,
                "{axis} budget exhausted after {iterations} iterations and {evals} \
                 candidate evaluations, {unfixed_ops} operations still unfixed"
            ),
        }
    }
}

impl Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_progress() {
        let e = EngineError::BudgetExhausted {
            axis: BudgetAxis::Iterations,
            iterations: 42,
            evals: 900,
            unfixed_ops: 7,
            elapsed: Duration::from_millis(3),
        };
        let s = e.to_string();
        assert!(s.contains("42 iterations"), "{s}");
        assert!(s.contains("7 operations"), "{s}");
        assert!(s.contains("iteration budget"), "{s}");
    }

    #[test]
    fn equality_ignores_wall_time() {
        let mk = |elapsed| EngineError::BudgetExhausted {
            axis: BudgetAxis::Evaluations,
            iterations: 1,
            evals: 2,
            unfixed_ops: 3,
            elapsed,
        };
        assert_eq!(mk(Duration::from_secs(1)), mk(Duration::from_secs(9)));
    }

    #[test]
    fn axes_display() {
        assert_eq!(BudgetAxis::Iterations.to_string(), "iteration");
        assert_eq!(BudgetAxis::WallClock.to_string(), "wall-clock");
        assert_eq!(BudgetAxis::Evaluations.to_string(), "evaluation");
    }
}
