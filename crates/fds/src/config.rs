//! Tuning parameters shared by all force-directed schedulers.

use std::time::Duration;

use tcms_ir::{ResourceLibrary, ResourceTypeId};

/// How resource types are weighted in the total force ("global spring
/// constants" in the improved FDS of Verhaegh et al.).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpringWeights {
    /// All types weigh the same.
    Uniform,
    /// Types weigh their area cost, so saving an instance of an expensive
    /// unit dominates. This is the default.
    #[default]
    Area,
}

impl SpringWeights {
    /// Weight of resource type `rtype` under this policy.
    pub fn weight(self, library: &ResourceLibrary, rtype: ResourceTypeId) -> f64 {
        match self {
            SpringWeights::Uniform => 1.0,
            SpringWeights::Area => library.get(rtype).area() as f64,
        }
    }
}

/// Hard limits on one engine run — the watchdog of the scheduling pipeline.
///
/// The default budget is unlimited on every axis, so a default-configured
/// run behaves exactly like the pre-budget engine. When a limit trips, the
/// engine aborts with [`crate::EngineError::BudgetExhausted`] carrying a
/// partial-progress report instead of spinning forever.
///
/// `max_iterations` and `max_evals` are deterministic (they count work, not
/// time); `wall_deadline` is inherently wall-clock-dependent and should be
/// reserved for interactive/service deployments where reproducibility
/// matters less than bounded latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunBudget {
    /// Maximum frame-reduction iterations (`None` = unlimited).
    pub max_iterations: Option<u64>,
    /// Wall-clock deadline for the whole run (`None` = unlimited).
    pub wall_deadline: Option<Duration>,
    /// Maximum candidate force-pair evaluations (`None` = unlimited).
    pub max_evals: Option<u64>,
}

impl RunBudget {
    /// The unlimited budget (identical to `RunBudget::default()`).
    pub const UNLIMITED: RunBudget = RunBudget {
        max_iterations: None,
        wall_deadline: None,
        max_evals: None,
    };

    /// `true` if no axis is limited — the watchdog can be skipped entirely.
    pub fn is_unlimited(&self) -> bool {
        self.max_iterations.is_none() && self.wall_deadline.is_none() && self.max_evals.is_none()
    }

    /// Divides the budget across `parts` concurrent sub-runs.
    ///
    /// The deterministic axes (`max_iterations`, `max_evals`) are split by
    /// ceiling division (never below 1, so a tiny budget over many parts
    /// still lets every part make progress). The wall deadline is kept as
    /// is: the sub-runs execute concurrently, so each may use the full
    /// remaining wall time.
    ///
    /// # Panics
    ///
    /// Panics if `parts == 0`.
    #[must_use]
    pub fn split(&self, parts: u64) -> RunBudget {
        assert!(parts > 0, "cannot split a budget across zero parts");
        let divide = |limit: Option<u64>| limit.map(|n| n.div_ceil(parts).max(1));
        RunBudget {
            max_iterations: divide(self.max_iterations),
            wall_deadline: self.wall_deadline,
            max_evals: divide(self.max_evals),
        }
    }
}

/// Configuration of the force model.
///
/// # Example
///
/// ```
/// use tcms_fds::{FdsConfig, SpringWeights};
///
/// let cfg = FdsConfig {
///     lookahead: 0.0,
///     spring_weights: SpringWeights::Uniform,
///     ..FdsConfig::default()
/// };
/// assert_ne!(cfg, FdsConfig::default());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FdsConfig {
    /// Look-ahead factor η: a displacement `x` is priced against
    /// `D(t) + η·x(t)` instead of `D(t)`. Paulin and Knight suggest `1/3`;
    /// the paper's exact value is lost to OCR, so it is configurable and
    /// swept in an ablation bench.
    pub lookahead: f64,
    /// Per-type force weights.
    pub spring_weights: SpringWeights,
    /// Run budget enforced by the engine's watchdog (unlimited by default).
    pub budget: RunBudget,
}

impl Default for FdsConfig {
    fn default() -> Self {
        FdsConfig {
            lookahead: 1.0 / 3.0,
            spring_weights: SpringWeights::Area,
            budget: RunBudget::UNLIMITED,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcms_ir::generators::paper_library;

    #[test]
    fn default_config() {
        let cfg = FdsConfig::default();
        assert!((cfg.lookahead - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(cfg.spring_weights, SpringWeights::Area);
    }

    #[test]
    fn weights() {
        let (lib, t) = paper_library();
        assert_eq!(SpringWeights::Uniform.weight(&lib, t.mul), 1.0);
        assert_eq!(SpringWeights::Area.weight(&lib, t.mul), 4.0);
        assert_eq!(SpringWeights::Area.weight(&lib, t.add), 1.0);
    }

    #[test]
    fn split_divides_deterministic_axes_only() {
        let b = RunBudget {
            max_iterations: Some(10),
            wall_deadline: Some(Duration::from_millis(250)),
            max_evals: Some(3),
        };
        let s = b.split(4);
        assert_eq!(s.max_iterations, Some(3)); // ceil(10/4)
        assert_eq!(s.max_evals, Some(1)); // ceil(3/4), floored at 1
        assert_eq!(s.wall_deadline, Some(Duration::from_millis(250)));
        // Splitting the unlimited budget is the identity.
        assert!(RunBudget::UNLIMITED.split(8).is_unlimited());
        // split(1) is the identity on every axis.
        assert_eq!(b.split(1), b);
    }

    #[test]
    fn default_budget_is_unlimited() {
        assert!(RunBudget::default().is_unlimited());
        assert!(RunBudget::UNLIMITED.is_unlimited());
        assert_eq!(FdsConfig::default().budget, RunBudget::UNLIMITED);
        let limited = RunBudget {
            max_iterations: Some(10),
            ..RunBudget::default()
        };
        assert!(!limited.is_unlimited());
        let timed = RunBudget {
            wall_deadline: Some(Duration::from_millis(5)),
            ..RunBudget::default()
        };
        assert!(!timed.is_unlimited());
    }
}
