//! Tuning parameters shared by all force-directed schedulers.

use tcms_ir::{ResourceLibrary, ResourceTypeId};

/// How resource types are weighted in the total force ("global spring
/// constants" in the improved FDS of Verhaegh et al.).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpringWeights {
    /// All types weigh the same.
    Uniform,
    /// Types weigh their area cost, so saving an instance of an expensive
    /// unit dominates. This is the default.
    #[default]
    Area,
}

impl SpringWeights {
    /// Weight of resource type `rtype` under this policy.
    pub fn weight(self, library: &ResourceLibrary, rtype: ResourceTypeId) -> f64 {
        match self {
            SpringWeights::Uniform => 1.0,
            SpringWeights::Area => library.get(rtype).area() as f64,
        }
    }
}

/// Configuration of the force model.
///
/// # Example
///
/// ```
/// use tcms_fds::{FdsConfig, SpringWeights};
///
/// let cfg = FdsConfig {
///     lookahead: 0.0,
///     spring_weights: SpringWeights::Uniform,
/// };
/// assert_ne!(cfg, FdsConfig::default());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FdsConfig {
    /// Look-ahead factor η: a displacement `x` is priced against
    /// `D(t) + η·x(t)` instead of `D(t)`. Paulin and Knight suggest `1/3`;
    /// the paper's exact value is lost to OCR, so it is configurable and
    /// swept in an ablation bench.
    pub lookahead: f64,
    /// Per-type force weights.
    pub spring_weights: SpringWeights,
}

impl Default for FdsConfig {
    fn default() -> Self {
        FdsConfig {
            lookahead: 1.0 / 3.0,
            spring_weights: SpringWeights::Area,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcms_ir::generators::paper_library;

    #[test]
    fn default_config() {
        let cfg = FdsConfig::default();
        assert!((cfg.lookahead - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(cfg.spring_weights, SpringWeights::Area);
    }

    #[test]
    fn weights() {
        let (lib, t) = paper_library();
        assert_eq!(SpringWeights::Uniform.weight(&lib, t.mul), 1.0);
        assert_eq!(SpringWeights::Area.weight(&lib, t.mul), 4.0);
        assert_eq!(SpringWeights::Area.weight(&lib, t.add), 1.0);
    }
}
