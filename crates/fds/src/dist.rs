//! Distribution graphs: expected resource usage over time.
//!
//! For every `(block, resource type)` pair the distribution `D(t)` sums the
//! occupancy probabilities of all matching operations (the paper's
//! equation 4). The force model treats the values of `D` as springs.

use tcms_ir::{BlockId, FrameTable, ResourceTypeId, System};

use crate::prob;

/// Distribution graphs for every `(block, type)` pair of a system.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributionSet {
    /// `dist[block][type][t]`, `t` in block-local time.
    dist: Vec<Vec<Vec<f64>>>,
}

impl DistributionSet {
    /// Builds all distributions from the current time frames.
    pub fn build(system: &System, frames: &FrameTable) -> Self {
        let num_types = system.library().len();
        let mut dist: Vec<Vec<Vec<f64>>> = system
            .blocks()
            .map(|(_, b)| vec![vec![0.0; b.time_range() as usize]; num_types])
            .collect();
        for (o, op) in system.ops() {
            let d = &mut dist[op.block().index()][op.resource_type().index()];
            prob::accumulate(d, frames.get(o), system.occupancy(o), 1.0);
        }
        DistributionSet { dist }
    }

    /// The distribution of `rtype` in `block`.
    pub fn get(&self, block: BlockId, rtype: ResourceTypeId) -> &[f64] {
        &self.dist[block.index()][rtype.index()]
    }

    /// Mutable access for incremental updates.
    pub fn get_mut(&mut self, block: BlockId, rtype: ResourceTypeId) -> &mut [f64] {
        &mut self.dist[block.index()][rtype.index()]
    }

    /// Peak of the distribution of `rtype` in `block` — the expected
    /// resource requirement FDS smooths.
    pub fn peak(&self, block: BlockId, rtype: ResourceTypeId) -> f64 {
        self.get(block, rtype).iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcms_ir::{ResourceLibrary, ResourceType, SystemBuilder, TimeFrame};

    fn sample() -> (System, BlockId) {
        let mut lib = ResourceLibrary::new();
        let add = lib.add(ResourceType::new("add", 1)).unwrap();
        let mut b = SystemBuilder::new(lib);
        let p = b.add_process("p");
        let blk = b.add_block(p, "b", 4).unwrap();
        b.add_op(blk, "x", add).unwrap();
        b.add_op(blk, "y", add).unwrap();
        (b.build().unwrap(), blk)
    }

    #[test]
    fn two_free_adders_spread_uniformly() {
        let (sys, blk) = sample();
        let frames = FrameTable::initial(&sys);
        let ds = DistributionSet::build(&sys, &frames);
        let add = sys.library().by_name("add").unwrap();
        let d = ds.get(blk, add);
        assert_eq!(d.len(), 4);
        for &v in d {
            assert!((v - 0.5).abs() < 1e-12);
        }
        assert!((ds.peak(blk, add) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fixed_ops_concentrate() {
        let (sys, blk) = sample();
        let mut frames = FrameTable::initial(&sys);
        for o in sys.op_ids() {
            frames.set(o, TimeFrame::new(2, 2));
        }
        let ds = DistributionSet::build(&sys, &frames);
        let add = sys.library().by_name("add").unwrap();
        assert_eq!(ds.get(blk, add), &[0.0, 0.0, 2.0, 0.0]);
        assert_eq!(ds.peak(blk, add), 2.0);
    }

    #[test]
    fn distribution_mass_equals_total_occupancy() {
        let (sys, blk) = sample();
        let frames = FrameTable::initial(&sys);
        let ds = DistributionSet::build(&sys, &frames);
        let add = sys.library().by_name("add").unwrap();
        let mass: f64 = ds.get(blk, add).iter().sum();
        assert!((mass - 2.0).abs() < 1e-12);
    }
}
