//! Distribution graphs: expected resource usage over time.
//!
//! For every `(block, resource type)` pair the distribution `D(t)` sums the
//! occupancy probabilities of all matching operations (the paper's
//! equation 4). The force model treats the values of `D` as springs.
//!
//! The set is *version-tracking*: every mutation of a pair bumps that
//! pair's version counter (drawn from one set-wide epoch), so downstream
//! caches can tell exactly which `(block, type)` regions moved since they
//! last looked, without comparing profile contents.
//!
//! Storage is one contiguous [`crate::slab`] arena; `get`/`get_mut` are
//! thin slice views into it.

use tcms_ir::{BlockId, FrameTable, OpId, ResourceTypeId, System, TimeFrame};

use crate::prob;
use crate::slab::SlabIndex;

/// Distribution graphs for every `(block, type)` pair of a system.
///
/// Equality compares the profile contents only, not the version-tracking
/// state.
#[derive(Debug, Clone)]
pub struct DistributionSet {
    index: SlabIndex,
    /// All profiles, packed per the index (`D[b][k][t]` at
    /// `index.range(b, k)[t]`).
    data: Vec<f64>,
    /// `version[index.pair(b, k)]`: epoch of the pair's last mutation.
    version: Vec<u64>,
    /// Set-wide mutation counter the per-pair versions are drawn from.
    epoch: u64,
}

impl PartialEq for DistributionSet {
    fn eq(&self, other: &Self) -> bool {
        self.index == other.index && self.data == other.data
    }
}

impl DistributionSet {
    /// Builds all distributions from the current time frames.
    pub fn build(system: &System, frames: &FrameTable) -> Self {
        let index = SlabIndex::from_system(system);
        let mut data = index.alloc();
        for (o, op) in system.ops() {
            let d = &mut data[index.range(op.block(), op.resource_type())];
            prob::accumulate(d, frames.get(o), system.occupancy(o), 1.0);
        }
        let version = vec![0; index.num_pairs()];
        DistributionSet {
            index,
            data,
            version,
            epoch: 0,
        }
    }

    /// The arena index shared by all profiles of this set.
    pub fn index(&self) -> &SlabIndex {
        &self.index
    }

    /// The distribution of `rtype` in `block`.
    pub fn get(&self, block: BlockId, rtype: ResourceTypeId) -> &[f64] {
        &self.data[self.index.range(block, rtype)]
    }

    /// Mutable access for incremental updates. Conservatively marks the
    /// pair dirty (bumps its version) even if the caller ends up not
    /// writing; callers that can report whether they actually changed a
    /// value should use [`DistributionSet::write_scoped`] instead.
    pub fn get_mut(&mut self, block: BlockId, rtype: ResourceTypeId) -> &mut [f64] {
        self.mark_dirty(block, rtype);
        &mut self.data[self.index.range(block, rtype)]
    }

    /// Explicitly marks a pair dirty: bumps the set epoch and stamps the
    /// pair's version with it.
    pub fn mark_dirty(&mut self, block: BlockId, rtype: ResourceTypeId) {
        self.epoch += 1;
        self.version[self.index.pair(block, rtype)] = self.epoch;
    }

    /// Scoped write access: runs `f` on the pair's profile and marks the
    /// pair dirty only if `f` reports that it changed a value (first
    /// element of the returned tuple). This is the precise-dirtying
    /// counterpart of [`DistributionSet::get_mut`] — read-modify paths
    /// that end up writing nothing leave the version untouched, so
    /// downstream force caches keyed on it survive.
    pub fn write_scoped<R>(
        &mut self,
        block: BlockId,
        rtype: ResourceTypeId,
        f: impl FnOnce(&mut [f64]) -> (bool, R),
    ) -> R {
        let (changed, out) = f(&mut self.data[self.index.range(block, rtype)]);
        if changed {
            self.mark_dirty(block, rtype);
        }
        out
    }

    /// Moves one operation's probability mass from `old` to `new` in its
    /// `(block, type)` distribution — the dirty-region update backing
    /// incremental force evaluation. Returns the half-open time range
    /// `[lo, hi)` of entries that may have changed.
    pub fn apply_op_change(
        &mut self,
        system: &System,
        op: OpId,
        old: TimeFrame,
        new: TimeFrame,
    ) -> (u32, u32) {
        let meta = system.op(op);
        let occ = system.occupancy(op);
        // A single op's mass genuinely moves whenever old != new (different
        // widths redistribute the same mass), so the conservative dirty
        // marking of `get_mut` is exact here.
        let d = self.get_mut(meta.block(), meta.resource_type());
        let len = d.len() as u32;
        prob::accumulate(d, new, occ, 1.0);
        prob::accumulate(d, old, occ, -1.0);
        let lo = new.asap.min(old.asap).min(len);
        let hi = (new.alap.max(old.alap) + occ).min(len);
        (lo, hi)
    }

    /// The version (mutation epoch) of a pair: two equal observations
    /// guarantee the profile did not change in between.
    pub fn version(&self, block: BlockId, rtype: ResourceTypeId) -> u64 {
        self.version[self.index.pair(block, rtype)]
    }

    /// The set-wide mutation counter (max of all pair versions).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Peak of the distribution of `rtype` in `block` — the expected
    /// resource requirement FDS smooths.
    pub fn peak(&self, block: BlockId, rtype: ResourceTypeId) -> f64 {
        self.get(block, rtype).iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcms_ir::{ResourceLibrary, ResourceType, SystemBuilder, TimeFrame};

    fn sample() -> (System, BlockId) {
        let mut lib = ResourceLibrary::new();
        let add = lib.add(ResourceType::new("add", 1)).unwrap();
        let mut b = SystemBuilder::new(lib);
        let p = b.add_process("p");
        let blk = b.add_block(p, "b", 4).unwrap();
        b.add_op(blk, "x", add).unwrap();
        b.add_op(blk, "y", add).unwrap();
        (b.build().unwrap(), blk)
    }

    #[test]
    fn two_free_adders_spread_uniformly() {
        let (sys, blk) = sample();
        let frames = FrameTable::initial(&sys);
        let ds = DistributionSet::build(&sys, &frames);
        let add = sys.library().by_name("add").unwrap();
        let d = ds.get(blk, add);
        assert_eq!(d.len(), 4);
        for &v in d {
            assert!((v - 0.5).abs() < 1e-12);
        }
        assert!((ds.peak(blk, add) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fixed_ops_concentrate() {
        let (sys, blk) = sample();
        let mut frames = FrameTable::initial(&sys);
        for o in sys.op_ids() {
            frames.set(o, TimeFrame::new(2, 2));
        }
        let ds = DistributionSet::build(&sys, &frames);
        let add = sys.library().by_name("add").unwrap();
        assert_eq!(ds.get(blk, add), &[0.0, 0.0, 2.0, 0.0]);
        assert_eq!(ds.peak(blk, add), 2.0);
    }

    #[test]
    fn distribution_mass_equals_total_occupancy() {
        let (sys, blk) = sample();
        let frames = FrameTable::initial(&sys);
        let ds = DistributionSet::build(&sys, &frames);
        let add = sys.library().by_name("add").unwrap();
        let mass: f64 = ds.get(blk, add).iter().sum();
        assert!((mass - 2.0).abs() < 1e-12);
    }

    #[test]
    fn apply_op_change_matches_rebuild() {
        let (sys, blk) = sample();
        let mut frames = FrameTable::initial(&sys);
        let mut ds = DistributionSet::build(&sys, &frames);
        let add = sys.library().by_name("add").unwrap();
        let x = sys.op_ids().next().unwrap();
        let old = frames.get(x);
        let new = TimeFrame::new(1, 1);
        let (lo, hi) = ds.apply_op_change(&sys, x, old, new);
        assert!(lo <= 1 && hi >= 2, "dirty range [{lo},{hi}) must cover t=1");
        frames.set(x, new);
        let rebuilt = DistributionSet::build(&sys, &frames);
        for (a, b) in ds.get(blk, add).iter().zip(rebuilt.get(blk, add)) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn versions_track_mutations_per_pair() {
        let (sys, blk) = sample();
        let frames = FrameTable::initial(&sys);
        let mut ds = DistributionSet::build(&sys, &frames);
        let add = sys.library().by_name("add").unwrap();
        assert_eq!(ds.version(blk, add), 0);
        assert_eq!(ds.epoch(), 0);
        let x = sys.op_ids().next().unwrap();
        ds.apply_op_change(&sys, x, frames.get(x), TimeFrame::new(0, 0));
        assert_eq!(ds.version(blk, add), 1);
        assert_eq!(ds.epoch(), 1);
        // get_mut is conservatively counted as a mutation.
        let _ = ds.get_mut(blk, add);
        assert_eq!(ds.version(blk, add), 2);
    }

    #[test]
    fn scoped_write_bumps_only_on_actual_change() {
        let (sys, blk) = sample();
        let frames = FrameTable::initial(&sys);
        let mut ds = DistributionSet::build(&sys, &frames);
        let add = sys.library().by_name("add").unwrap();
        // A read-modify pass that writes nothing keeps the version.
        let peak = ds.write_scoped(blk, add, |d| (false, d.iter().copied().fold(0.0, f64::max)));
        assert!(peak > 0.0);
        assert_eq!(ds.version(blk, add), 0);
        assert_eq!(ds.epoch(), 0);
        // An actual write reported as such bumps it.
        ds.write_scoped(blk, add, |d| {
            d[0] += 1.0;
            (true, ())
        });
        assert_eq!(ds.version(blk, add), 1);
        assert_eq!(ds.epoch(), 1);
    }

    #[test]
    fn equality_ignores_versions() {
        let (sys, blk) = sample();
        let frames = FrameTable::initial(&sys);
        let a = DistributionSet::build(&sys, &frames);
        let mut b = DistributionSet::build(&sys, &frames);
        let add = sys.library().by_name("add").unwrap();
        let _ = b.get_mut(blk, add); // bump version, contents unchanged
        assert_eq!(a, b);
        assert_ne!(a.epoch(), b.epoch());
    }
}
