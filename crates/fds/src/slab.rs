//! Flat structure-of-arrays storage for per-`(block, type)` profiles.
//!
//! The force kernels spend their time folding and accumulating profile
//! arrays. Storing each profile as its own `Vec` (the seed layout was
//! `Vec<Vec<Vec<f64>>>`) scatters those loops across the heap; this module
//! instead packs every profile of one layer into a single contiguous `f64`
//! arena with a fixed-stride index precomputed from the [`System`]:
//!
//! ```text
//! offset(b, k) = base[b] + k * len[b]      len[b] = time_range of block b
//! ```
//!
//! All types of one block are adjacent (the block's pair slices share one
//! length), so a kernel walking `(block, type)` pairs streams through
//! memory. The index never changes after construction — only the arena
//! values do — which is what lets [`crate::dist::DistributionSet`] and the
//! modulo field hand out plain slices as thin views.

use std::ops::Range;

use tcms_ir::{BlockId, ResourceTypeId, System};

/// Fixed-stride index of a per-`(block, type)` profile arena.
///
/// Immutable after construction; cheap to clone (two small `Vec<u32>`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlabIndex {
    /// `base[b]`: arena offset of block `b`'s first pair slice.
    base: Vec<u32>,
    /// `len[b]`: length of every pair slice of block `b` (its time range).
    len: Vec<u32>,
    num_types: usize,
    total: usize,
}

impl SlabIndex {
    /// Builds the index for all `(block, type)` pairs of `system`, with
    /// one slice of the block's time range per pair.
    pub fn from_system(system: &System) -> Self {
        let num_types = system.library().len();
        let mut base = Vec::with_capacity(system.num_blocks());
        let mut len = Vec::with_capacity(system.num_blocks());
        let mut total = 0u32;
        for (_, b) in system.blocks() {
            base.push(total);
            len.push(b.time_range());
            total += b.time_range() * num_types as u32;
        }
        SlabIndex {
            base,
            len,
            num_types,
            total: total as usize,
        }
    }

    /// Number of resource types per block.
    pub fn num_types(&self) -> usize {
        self.num_types
    }

    /// Number of `(block, type)` pairs indexed.
    pub fn num_pairs(&self) -> usize {
        self.base.len() * self.num_types
    }

    /// Dense pair number of `(block, type)` — the stride-`num_types` key
    /// used for per-pair side tables (version counters).
    #[inline]
    pub fn pair(&self, block: BlockId, rtype: ResourceTypeId) -> usize {
        block.index() * self.num_types + rtype.index()
    }

    /// Slice length of every pair of `block` (the block's time range).
    #[inline]
    pub fn len_of(&self, block: BlockId) -> usize {
        self.len[block.index()] as usize
    }

    /// Arena range of the `(block, type)` profile.
    #[inline]
    pub fn range(&self, block: BlockId, rtype: ResourceTypeId) -> Range<usize> {
        let b = block.index();
        let start = (self.base[b] + rtype.index() as u32 * self.len[b]) as usize;
        start..start + self.len[b] as usize
    }

    /// Total arena length covering every pair slice.
    pub fn total_len(&self) -> usize {
        self.total
    }

    /// Allocates a zeroed arena matching this index.
    pub fn alloc(&self) -> Vec<f64> {
        vec![0.0; self.total]
    }
}

/// Accumulates the spring-force terms of one profile/displacement pair
/// (the classical force of equation 5 and the per-slot terms of the
/// modified force, equation 10) onto a running total:
///
/// `acc + Σ_t w · (profile[t] + lookahead · delta[t]) · delta[t]`
///
/// The sum runs in ascending `t` with the exact per-term association the
/// seed's branchy loop used (`total += w * (p + la*x) * x`), threading the
/// caller's accumulator through so multi-pair forces keep the seed's
/// summation order bit-identically. Terms with `delta[t] == 0.0` (which
/// the seed skipped) contribute exactly `±0.0`, which never changes an
/// accumulator that is not `-0.0` — and the accumulator never is, because
/// it starts at `+0.0` and IEEE addition only produces `-0.0` from two
/// negative zeros. Profiles and deltas are never `NaN`.
///
/// # Panics
///
/// Panics in debug builds if `delta` is longer than `profile`.
#[inline]
pub fn force_sum(acc: f64, profile: &[f64], delta: &[f64], weight: f64, lookahead: f64) -> f64 {
    debug_assert!(delta.len() <= profile.len());
    let mut total = acc;
    for (&p, &x) in profile.iter().zip(delta) {
        total += weight * (p + lookahead * x) * x;
    }
    total
}

/// [`force_sum`] with the displacement subtraction fused in: the delta is
/// `tentative[i] - committed[i]`, computed inline instead of via a
/// separate subtraction pass. Bitwise identical to `sub_into` followed by
/// [`force_sum`] — the exact same difference feeds the exact same
/// accumulation.
///
/// # Panics
///
/// Panics in debug builds if the slice lengths disagree.
#[inline]
pub fn force_sum_sub(
    acc: f64,
    profile: &[f64],
    tentative: &[f64],
    committed: &[f64],
    weight: f64,
    lookahead: f64,
) -> f64 {
    debug_assert!(tentative.len() <= profile.len());
    debug_assert_eq!(tentative.len(), committed.len());
    let mut total = acc;
    for ((&p, &t), &m) in profile.iter().zip(tentative).zip(committed) {
        let x = t - m;
        total += weight * (p + lookahead * x) * x;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcms_ir::{ResourceLibrary, ResourceType, SystemBuilder};

    fn two_block_system() -> System {
        let mut lib = ResourceLibrary::new();
        let add = lib.add(ResourceType::new("add", 1)).unwrap();
        let _mul = lib.add(ResourceType::new("mul", 2)).unwrap();
        let mut b = SystemBuilder::new(lib);
        let p = b.add_process("p");
        let b1 = b.add_block(p, "b1", 4).unwrap();
        b.add_op(b1, "x", add).unwrap();
        let q = b.add_process("q");
        let b2 = b.add_block(q, "b2", 7).unwrap();
        b.add_op(b2, "y", add).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn ranges_are_disjoint_and_cover_the_arena() {
        let sys = two_block_system();
        let idx = SlabIndex::from_system(&sys);
        assert_eq!(idx.num_types(), 2);
        assert_eq!(idx.total_len(), 4 * 2 + 7 * 2);
        let mut covered = vec![false; idx.total_len()];
        for (bid, _) in sys.blocks() {
            for k in sys.library().ids() {
                let r = idx.range(bid, k);
                assert_eq!(r.len(), idx.len_of(bid));
                for i in r {
                    assert!(!covered[i], "arena cell {i} indexed twice");
                    covered[i] = true;
                }
            }
        }
        assert!(covered.iter().all(|&c| c), "arena must be fully covered");
    }

    #[test]
    fn pair_numbers_are_dense() {
        let sys = two_block_system();
        let idx = SlabIndex::from_system(&sys);
        let mut seen = vec![false; idx.num_pairs()];
        for (bid, _) in sys.blocks() {
            for k in sys.library().ids() {
                let p = idx.pair(bid, k);
                assert!(!seen[p]);
                seen[p] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn force_sum_matches_branchy_reference() {
        let profile = [0.5, 1.25, 0.0, 2.0, 0.75];
        let delta = [0.5, -0.5, 0.0, 0.25, -0.25];
        let (w, la) = (2.0, 1.0 / 3.0);
        let mut reference = 0.0;
        for (t, &x) in delta.iter().enumerate() {
            if x != 0.0 {
                reference += w * (profile[t] + la * x) * x;
            }
        }
        let got = force_sum(0.0, &profile, &delta, w, la);
        assert_eq!(got.to_bits(), reference.to_bits());
    }

    #[test]
    fn force_sum_of_zero_delta_keeps_accumulator() {
        let got = force_sum(0.0, &[1.0, 2.0], &[0.0, 0.0], 3.0, 0.5);
        assert_eq!(got.to_bits(), 0.0f64.to_bits());
        let acc = -1.25;
        let got = force_sum(acc, &[1.0, 2.0], &[0.0, 0.0], 3.0, 0.5);
        assert_eq!(got.to_bits(), acc.to_bits());
    }
}
