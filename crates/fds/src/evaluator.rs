//! The force model abstraction and its classical implementation.
//!
//! The IFDS engine ([`crate::engine`]) is generic over a [`ForceEvaluator`]:
//! the classical per-block model lives here, while `tcms-core` plugs in the
//! paper's modified model (modulo-maximum transformation plus global
//! balancing) without duplicating the engine.

use tcms_ir::{BlockId, FrameTable, OpId, ResourceTypeId, System, TimeFrame};
use tcms_obs::Recorder;

use crate::config::FdsConfig;
use crate::dist::DistributionSet;
use crate::prob;

/// A pluggable force model for the IFDS engine.
///
/// `changed` always lists `(operation, new frame)` pairs for exactly the
/// operations whose frame differs from the committed state in `frames`;
/// implied predecessor/successor frame reductions are included, so the
/// returned force already contains the classical "self + neighbour" terms.
///
/// # Incremental contract
///
/// [`ForceEvaluator::force`] must be a pure function of the committed
/// state (frames plus whatever the evaluator maintains) and `changed`.
/// [`ForceEvaluator::context_stamp`] summarizes that committed state per
/// block: as long as the stamp of a block is unchanged, every force for a
/// change rooted in that block would evaluate to bit-identical results, so
/// the engine may reuse cached values. Evaluators that cannot provide this
/// guarantee return `None` (the default), which disables caching.
pub trait ForceEvaluator {
    /// Force of tentatively applying `changed` on top of `frames`.
    /// Lower is better; negative values reduce expected concurrency.
    fn force(&self, frames: &FrameTable, changed: &[(OpId, TimeFrame)]) -> f64;

    /// Batched evaluation: the forces of several candidate change sets
    /// against the *same* committed state, in order.
    ///
    /// Must return exactly what [`ForceEvaluator::force`] would return for
    /// each candidate (bit-identically) — implementations may only share
    /// state-dependent intermediates across candidates, never change the
    /// per-candidate arithmetic. The engine's candidate sweep scores the
    /// two extreme placements of one operation through this entry point;
    /// evaluators with expensive state folds (the modulo evaluator's
    /// sibling-block slot maxima) amortize them across the batch. The
    /// default computes each candidate independently.
    fn force_batch(&self, frames: &FrameTable, candidates: &[&[(OpId, TimeFrame)]]) -> Vec<f64> {
        candidates.iter().map(|c| self.force(frames, c)).collect()
    }

    /// Commits `changed`. `frames` is the state *before* the change; the
    /// engine updates its frame table right after this call.
    fn commit(&mut self, frames: &FrameTable, changed: &[(OpId, TimeFrame)]);

    /// Notifies the evaluator that the frames of `ops` changed (or will
    /// change) through some path other than [`ForceEvaluator::commit`] —
    /// e.g. a driver mutating the engine's frame table directly. The
    /// evaluator must conservatively advance the affected context stamps so
    /// cached forces touching those ops are recomputed.
    ///
    /// The default implementation does nothing, which is sound only
    /// together with the default (`None`) [`ForceEvaluator::context_stamp`].
    fn invalidate(&mut self, ops: &[OpId]) {
        let _ = ops;
    }

    /// Monotone stamp covering every piece of evaluator state a force for
    /// a change rooted in `block` can read. `None` disables force caching
    /// for this evaluator.
    fn context_stamp(&self, block: BlockId) -> Option<u64> {
        let _ = block;
        None
    }

    /// Observability hook: called once per engine iteration (after the
    /// commit) when recording is enabled, so evaluators can sample their
    /// internal state — the modulo evaluator emits the slot occupancy of
    /// its `M_p`/`G_k` fields here. Only invoked when
    /// [`Recorder::enabled`] is true; the default records nothing.
    fn record_iteration(&self, rec: &dyn Recorder, iteration: u64) {
        let _ = (rec, iteration);
    }
}

/// The classical FDS force model of Paulin/Knight with the improvements of
/// Verhaegh et al.: per-block distribution graphs, look-ahead and per-type
/// spring weights.
#[derive(Debug, Clone)]
pub struct ClassicEvaluator<'a> {
    system: &'a System,
    config: FdsConfig,
    dist: DistributionSet,
    /// Staleness counter shared by the block stamps.
    epoch: u64,
    /// `block_epoch[b]`: epoch of the last commit/invalidation touching
    /// block `b`. The classical force of a change rooted in `b` reads only
    /// `b`-local state, so this single stamp covers it.
    block_epoch: Vec<u64>,
}

impl<'a> ClassicEvaluator<'a> {
    /// Builds the evaluator for the given scheduling scope (distributions
    /// are built for the whole system; `scope` documents intent and is
    /// validated in debug builds).
    pub fn new(system: &'a System, scope: &[BlockId], config: FdsConfig) -> Self {
        debug_assert!(!scope.is_empty(), "empty scheduling scope");
        let frames = FrameTable::initial(system);
        ClassicEvaluator {
            system,
            config,
            dist: DistributionSet::build(system, &frames),
            epoch: 0,
            block_epoch: vec![0; system.num_blocks()],
        }
    }

    /// Read access to the current distribution graphs.
    pub fn distributions(&self) -> &DistributionSet {
        &self.dist
    }

    /// Accumulates the probability deltas of `changed`, grouped per
    /// `(block, type)`, into reused buffers: `keys` is rebuilt, and only
    /// the first `keys.len()` entries of `bufs` are meaningful (spare
    /// buffers keep their capacity for the next call).
    fn deltas_into(
        &self,
        frames: &FrameTable,
        changed: &[(OpId, TimeFrame)],
        keys: &mut Vec<(BlockId, ResourceTypeId)>,
        bufs: &mut Vec<Vec<f64>>,
    ) {
        keys.clear();
        for &(o, nf) in changed {
            let op = self.system.op(o);
            let key = (op.block(), op.resource_type());
            let i = keys.iter().position(|&k| k == key).unwrap_or_else(|| {
                keys.push(key);
                let len = self.system.block(key.0).time_range() as usize;
                if bufs.len() < keys.len() {
                    bufs.push(vec![0.0; len]);
                } else {
                    let b = &mut bufs[keys.len() - 1];
                    b.clear();
                    b.resize(len, 0.0);
                }
                keys.len() - 1
            });
            let occ = self.system.occupancy(o);
            prob::accumulate(&mut bufs[i], nf, occ, 1.0);
            prob::accumulate(&mut bufs[i], frames.get(o), occ, -1.0);
        }
    }

    /// Allocating wrapper around [`ClassicEvaluator::deltas_into`].
    fn deltas(
        &self,
        frames: &FrameTable,
        changed: &[(OpId, TimeFrame)],
    ) -> (Vec<(BlockId, ResourceTypeId)>, Vec<Vec<f64>>) {
        let mut keys = Vec::new();
        let mut bufs = Vec::new();
        self.deltas_into(frames, changed, &mut keys, &mut bufs);
        bufs.truncate(keys.len());
        (keys, bufs)
    }

    /// Reference force computed against distributions rebuilt from scratch
    /// out of `frames` — the oracle the incremental path is property-tested
    /// against. Slow by design; only compiled for tests and the
    /// `naive-oracle` feature.
    #[cfg(any(test, feature = "naive-oracle"))]
    pub fn force_naive(&self, frames: &FrameTable, changed: &[(OpId, TimeFrame)]) -> f64 {
        let rebuilt = DistributionSet::build(self.system, frames);
        let (keys, bufs) = self.deltas(frames, changed);
        let mut total = 0.0;
        for (i, &(b, k)) in keys.iter().enumerate() {
            let w = self.config.spring_weights.weight(self.system.library(), k);
            total = crate::slab::force_sum(
                total,
                rebuilt.get(b, k),
                &bufs[i],
                w,
                self.config.lookahead,
            );
        }
        total
    }
}

impl ForceEvaluator for ClassicEvaluator<'_> {
    fn force(&self, frames: &FrameTable, changed: &[(OpId, TimeFrame)]) -> f64 {
        let (keys, bufs) = self.deltas(frames, changed);
        let mut total = 0.0;
        for (i, &(b, k)) in keys.iter().enumerate() {
            let w = self.config.spring_weights.weight(self.system.library(), k);
            total = crate::slab::force_sum(
                total,
                self.dist.get(b, k),
                &bufs[i],
                w,
                self.config.lookahead,
            );
        }
        total
    }

    /// Batched scoring sharing the delta scratch buffers across
    /// candidates; the per-candidate arithmetic is identical to
    /// [`ForceEvaluator::force`], so the results are bit-identical.
    fn force_batch(&self, frames: &FrameTable, candidates: &[&[(OpId, TimeFrame)]]) -> Vec<f64> {
        let mut keys = Vec::new();
        let mut bufs = Vec::new();
        let mut out = Vec::with_capacity(candidates.len());
        for &changed in candidates {
            self.deltas_into(frames, changed, &mut keys, &mut bufs);
            let mut total = 0.0;
            for (i, &(b, k)) in keys.iter().enumerate() {
                let w = self.config.spring_weights.weight(self.system.library(), k);
                total = crate::slab::force_sum(
                    total,
                    self.dist.get(b, k),
                    &bufs[i],
                    w,
                    self.config.lookahead,
                );
            }
            out.push(total);
        }
        out
    }

    fn commit(&mut self, frames: &FrameTable, changed: &[(OpId, TimeFrame)]) {
        for &(o, nf) in changed {
            self.dist.apply_op_change(self.system, o, frames.get(o), nf);
        }
        self.invalidate_changed(changed);
    }

    fn invalidate(&mut self, ops: &[OpId]) {
        self.epoch += 1;
        for &o in ops {
            self.block_epoch[self.system.op(o).block().index()] = self.epoch;
        }
    }

    fn context_stamp(&self, block: BlockId) -> Option<u64> {
        Some(self.block_epoch[block.index()])
    }
}

impl ClassicEvaluator<'_> {
    fn invalidate_changed(&mut self, changed: &[(OpId, TimeFrame)]) {
        self.epoch += 1;
        for &(o, _) in changed {
            self.block_epoch[self.system.op(o).block().index()] = self.epoch;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SpringWeights;
    use tcms_ir::{ResourceLibrary, ResourceType, SystemBuilder};

    fn sample() -> (System, BlockId, Vec<OpId>) {
        let mut lib = ResourceLibrary::new();
        let add = lib.add(ResourceType::new("add", 1)).unwrap();
        let mut b = SystemBuilder::new(lib);
        let p = b.add_process("p");
        let blk = b.add_block(p, "b", 2).unwrap();
        let x = b.add_op(blk, "x", add).unwrap();
        let y = b.add_op(blk, "y", add).unwrap();
        (b.build().unwrap(), blk, vec![x, y])
    }

    #[test]
    fn balancing_placement_has_negative_force() {
        // Two adders, frames [0,1] each: D = [1, 1].
        // Fix x at 0: x's probability moves from (.5,.5) to (1,0):
        // delta (+.5,-.5); with lookahead 0 the force is D·x = .5 - .5 = 0.
        // Fix y at 1 once x is fixed at 0: D = (1.5,.5)... check relative
        // ordering instead of absolute numbers.
        let (sys, _, ops) = sample();
        let cfg = FdsConfig {
            lookahead: 0.0,
            spring_weights: SpringWeights::Uniform,
            ..FdsConfig::default()
        };
        let eval = ClassicEvaluator::new(&sys, &[BlockId::from_index(0)], cfg);
        let frames = FrameTable::initial(&sys);
        let f0 = eval.force(&frames, &[(ops[0], TimeFrame::new(0, 0))]);
        let f1 = eval.force(&frames, &[(ops[0], TimeFrame::new(1, 1))]);
        // Symmetric situation: both placements cost the same.
        assert!((f0 - f1).abs() < 1e-12);
    }

    #[test]
    fn lookahead_penalises_concentration() {
        let (sys, _, ops) = sample();
        let cfg = FdsConfig {
            lookahead: 1.0 / 3.0,
            spring_weights: SpringWeights::Uniform,
            ..FdsConfig::default()
        };
        let eval = ClassicEvaluator::new(&sys, &[BlockId::from_index(0)], cfg.clone());
        let frames = FrameTable::initial(&sys);
        let f_fix = eval.force(&frames, &[(ops[0], TimeFrame::new(0, 0))]);
        // With positive lookahead, any narrowing of a balanced solution has
        // positive cost (x² terms).
        assert!(f_fix > 0.0);
    }

    #[test]
    fn commit_tracks_distribution() {
        let (sys, blk, ops) = sample();
        let cfg = FdsConfig::default();
        let mut eval = ClassicEvaluator::new(&sys, &[blk], cfg);
        let mut frames = FrameTable::initial(&sys);
        let change = [(ops[0], TimeFrame::new(0, 0))];
        eval.commit(&frames, &change);
        frames.set(ops[0], TimeFrame::new(0, 0));
        let add = sys.library().by_name("add").unwrap();
        let d = eval.distributions().get(blk, add);
        assert!((d[0] - 1.5).abs() < 1e-12);
        assert!((d[1] - 0.5).abs() < 1e-12);
        // Re-build from scratch agrees with the incremental state.
        let rebuilt = DistributionSet::build(&sys, &frames);
        assert_eq!(rebuilt.get(blk, add), d);
    }

    #[test]
    fn after_commit_balancing_prefers_empty_slot() {
        let (sys, _, ops) = sample();
        let cfg = FdsConfig {
            lookahead: 0.0,
            spring_weights: SpringWeights::Uniform,
            ..FdsConfig::default()
        };
        let mut eval = ClassicEvaluator::new(&sys, &[BlockId::from_index(0)], cfg);
        let mut frames = FrameTable::initial(&sys);
        let change = [(ops[0], TimeFrame::new(0, 0))];
        eval.commit(&frames, &change);
        frames.set(ops[0], TimeFrame::new(0, 0));
        // Now D = (1.5, .5); placing y at 1 must beat placing y at 0.
        let f_at_0 = eval.force(&frames, &[(ops[1], TimeFrame::new(0, 0))]);
        let f_at_1 = eval.force(&frames, &[(ops[1], TimeFrame::new(1, 1))]);
        assert!(f_at_1 < f_at_0);
    }

    #[test]
    fn incremental_force_matches_naive_oracle() {
        let (sys, blk, ops) = sample();
        let mut eval = ClassicEvaluator::new(&sys, &[blk], FdsConfig::default());
        let mut frames = FrameTable::initial(&sys);
        let change = [(ops[0], TimeFrame::new(0, 0))];
        let f_inc = eval.force(&frames, &change);
        let f_ref = eval.force_naive(&frames, &change);
        assert!((f_inc - f_ref).abs() < 1e-12);
        // And after a commit too.
        eval.commit(&frames, &change);
        frames.set(ops[0], TimeFrame::new(0, 0));
        let change2 = [(ops[1], TimeFrame::new(1, 1))];
        let f_inc = eval.force(&frames, &change2);
        let f_ref = eval.force_naive(&frames, &change2);
        assert!((f_inc - f_ref).abs() < 1e-12);
    }

    #[test]
    fn context_stamp_moves_only_for_touched_blocks() {
        let mut lib = ResourceLibrary::new();
        let add = lib.add(ResourceType::new("add", 1)).unwrap();
        let mut b = SystemBuilder::new(lib);
        let p1 = b.add_process("p1");
        let b1 = b.add_block(p1, "b1", 2).unwrap();
        let x = b.add_op(b1, "x", add).unwrap();
        let p2 = b.add_process("p2");
        let b2 = b.add_block(p2, "b2", 2).unwrap();
        b.add_op(b2, "y", add).unwrap();
        let sys = b.build().unwrap();
        let mut eval = ClassicEvaluator::new(&sys, &[b1, b2], FdsConfig::default());
        let frames = FrameTable::initial(&sys);
        let s1 = eval.context_stamp(b1).unwrap();
        let s2 = eval.context_stamp(b2).unwrap();
        eval.commit(&frames, &[(x, TimeFrame::new(0, 0))]);
        assert_ne!(
            eval.context_stamp(b1).unwrap(),
            s1,
            "touched block restamped"
        );
        assert_eq!(
            eval.context_stamp(b2).unwrap(),
            s2,
            "untouched block stable"
        );
        // Explicit invalidation restamps too.
        eval.invalidate(&[x]);
        assert!(eval.context_stamp(b1).unwrap() > s1);
    }
}
