#![warn(missing_docs)]
//! Force-directed scheduling substrate for the TCMS workspace.
//!
//! Implements the classical time-constrained scheduling algorithms the
//! paper builds on:
//!
//! * the original **Force-Directed Scheduling** (FDS) of Paulin and Knight
//!   ([`fds`]),
//! * the **Improved FDS** (IFDS) of Verhaegh et al. with gradual time-frame
//!   reduction, look-ahead and global spring constants — as a reusable
//!   engine ([`engine`]) parameterised over a [`ForceEvaluator`], so the
//!   modulo extension in `tcms-core` plugs in its modified force,
//! * distribution graphs and occupancy probabilities ([`dist`], [`prob`]),
//! * baselines: ASAP/ALAP ([`baselines`]) and a resource-constrained list
//!   scheduler ([`list`]),
//! * the [`Schedule`] container with structural verification and usage
//!   profiles ([`schedule`]).
//!
//! # Example: schedule one block with IFDS
//!
//! ```
//! use tcms_ir::generators::{add_ewf_process, paper_library};
//! use tcms_ir::SystemBuilder;
//! use tcms_fds::{schedule_block_ifds, FdsConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (lib, types) = paper_library();
//! let mut b = SystemBuilder::new(lib);
//! let (_, blk) = add_ewf_process(&mut b, "P1", 20, types)?;
//! let sys = b.build()?;
//! let out = schedule_block_ifds(&sys, blk, &FdsConfig::default())?;
//! out.schedule.verify(&sys)?;
//! # Ok(())
//! # }
//! ```

pub mod baselines;
pub mod config;
pub mod dist;
pub mod engine;
pub mod error;
pub mod evaluator;
pub mod fds;
pub mod gantt;
pub mod list;
pub mod prob;
pub mod schedule;
pub mod schedule_io;
pub mod slab;

/// Thread-count control for every parallel scheduling primitive in the
/// workspace (the engine's candidate sweep, the design-space exploration
/// fan-outs and the exact-search root split all share one pool).
///
/// Resolution order: [`threads::set`] override, then the `TCMS_THREADS`
/// environment variable, then the detected hardware parallelism. A count
/// of 1 disables all fan-out; results are identical at every count.
pub mod threads {
    pub use rayon::current_num_threads as current;
    pub use rayon::set_num_threads as set;
}

pub use config::{FdsConfig, RunBudget, SpringWeights};
pub use engine::{IfdsEngine, IfdsOutcome, IfdsStats};
pub use error::{BudgetAxis, EngineError};
pub use evaluator::{ClassicEvaluator, ForceEvaluator};
pub use schedule::{Schedule, ScheduleError};

use tcms_ir::{BlockId, System};

/// Schedules a single block with the improved force-directed scheduling
/// algorithm and the classical (per-block) force model.
///
/// # Errors
///
/// Returns [`EngineError::BudgetExhausted`] if `config.budget` trips; with
/// the default unlimited budget the call always succeeds.
pub fn schedule_block_ifds(
    system: &System,
    block: BlockId,
    config: &FdsConfig,
) -> Result<IfdsOutcome, EngineError> {
    let scope = vec![block];
    let budget = config.budget;
    let mut eval = ClassicEvaluator::new(system, &scope, config.clone());
    IfdsEngine::new(system, scope)
        .with_budget(budget)
        .run(&mut eval)
}

/// Schedules every block of the system independently with IFDS — the
/// traditional flow the paper compares against ("pure local assignment").
///
/// Returns the merged schedule and the summed iteration count.
///
/// # Errors
///
/// Returns [`EngineError::BudgetExhausted`] if `config.budget` trips in
/// any per-block run (the budget applies per block, not to the sum).
pub fn schedule_system_local(
    system: &System,
    config: &FdsConfig,
) -> Result<IfdsOutcome, EngineError> {
    let mut schedule = Schedule::new(system.num_ops());
    let mut iterations = 0;
    let mut stats = IfdsStats::default();
    for bid in system.block_ids() {
        let out = schedule_block_ifds(system, bid, config)?;
        iterations += out.iterations;
        stats.absorb(&out.stats);
        for &o in system.block(bid).ops() {
            schedule.set(o, out.schedule.expect_start(o));
        }
    }
    Ok(IfdsOutcome {
        schedule,
        iterations,
        stats,
    })
}
