//! Resource-constrained list scheduling.
//!
//! The complement of time-constrained FDS: given a fixed number of
//! instances per resource type, pack operations as early as possible with a
//! least-slack-first (ALAP-ordered) priority. Used as a baseline and by the
//! resource-constrained modulo variant in `tcms-core`.

use tcms_ir::{BlockId, FrameTable, OpId, System};

use crate::schedule::Schedule;

/// Outcome of a list-scheduling run on one block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ListOutcome {
    /// Start times for the block's operations.
    pub schedule: Schedule,
    /// Completion time of the block under the resource limits.
    pub makespan: u32,
}

/// Schedules `block` under per-type instance `limits` (indexed by
/// [`tcms_ir::ResourceTypeId::index`]).
///
/// Returns `None` if a used resource type has a zero limit. The resulting
/// makespan may exceed the block's time range — the caller decides whether
/// that is acceptable.
///
/// # Example
///
/// ```
/// use tcms_ir::generators::{add_diffeq_process, paper_library};
/// use tcms_ir::SystemBuilder;
/// use tcms_fds::list::list_schedule_block;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let (lib, types) = paper_library();
/// let mut b = SystemBuilder::new(lib);
/// let (_, blk) = add_diffeq_process(&mut b, "P", 15, types)?;
/// let sys = b.build()?;
/// let out = list_schedule_block(&sys, blk, &[1, 1, 1]).expect("limits nonzero");
/// assert!(out.makespan >= sys.critical_path(blk));
/// # Ok(())
/// # }
/// ```
pub fn list_schedule_block(system: &System, block: BlockId, limits: &[u32]) -> Option<ListOutcome> {
    for t in system.types_used_by_block(block) {
        if limits.get(t.index()).copied().unwrap_or(0) == 0 {
            return None;
        }
    }
    let frames = FrameTable::initial(system);
    let ops = system.block(block).ops();
    let mut priority: Vec<OpId> = ops.to_vec();
    // Least slack first; ties by op id for determinism.
    priority.sort_by_key(|&o| (frames.get(o).alap, o));

    let mut schedule = Schedule::new(system.num_ops());
    let mut remaining_preds: Vec<usize> = vec![0; system.num_ops()];
    for &o in ops {
        remaining_preds[o.index()] = system.preds(o).len();
    }
    // busy[type][t] instance occupancy, grown on demand.
    let mut busy: Vec<Vec<u32>> = vec![Vec::new(); limits.len()];
    let mut unscheduled = ops.len();
    let mut makespan = 0;
    let mut t = 0u32;
    while unscheduled > 0 {
        for &o in &priority {
            if schedule.start(o).is_some() || remaining_preds[o.index()] > 0 {
                continue;
            }
            // Ready: all predecessors finished by t?
            let ready_at = system
                .preds(o)
                .iter()
                .map(|&p| schedule.expect_start(p) + system.delay(p))
                .max()
                .unwrap_or(0);
            if ready_at > t {
                continue;
            }
            let k = system.op(o).resource_type().index();
            let occ = system.occupancy(o);
            let fits =
                (t..t + occ).all(|tt| busy[k].get(tt as usize).copied().unwrap_or(0) < limits[k]);
            if !fits {
                continue;
            }
            for tt in t..t + occ {
                let tt = tt as usize;
                if busy[k].len() <= tt {
                    busy[k].resize(tt + 1, 0);
                }
                busy[k][tt] += 1;
            }
            schedule.set(o, t);
            makespan = makespan.max(t + system.delay(o));
            unscheduled -= 1;
            for &s in system.succs(o) {
                remaining_preds[s.index()] -= 1;
            }
        }
        t += 1;
    }
    Some(ListOutcome { schedule, makespan })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcms_ir::generators::{add_ewf_process, paper_library};
    use tcms_ir::{ResourceLibrary, ResourceType, SystemBuilder};

    #[test]
    fn single_adder_serialises() {
        let mut lib = ResourceLibrary::new();
        let add = lib.add(ResourceType::new("add", 1)).unwrap();
        let mut b = SystemBuilder::new(lib);
        let p = b.add_process("p");
        let blk = b.add_block(p, "b", 10).unwrap();
        for i in 0..4 {
            b.add_op(blk, format!("a{i}"), add).unwrap();
        }
        let sys = b.build().unwrap();
        let out = list_schedule_block(&sys, blk, &[1]).unwrap();
        assert_eq!(out.makespan, 4);
        let starts: std::collections::HashSet<_> = sys
            .block(blk)
            .ops()
            .iter()
            .map(|&o| out.schedule.expect_start(o))
            .collect();
        assert_eq!(starts.len(), 4, "all four adds at distinct steps");
    }

    #[test]
    fn two_adders_halve_makespan() {
        let mut lib = ResourceLibrary::new();
        let add = lib.add(ResourceType::new("add", 1)).unwrap();
        let mut b = SystemBuilder::new(lib);
        let p = b.add_process("p");
        let blk = b.add_block(p, "b", 10).unwrap();
        for i in 0..4 {
            b.add_op(blk, format!("a{i}"), add).unwrap();
        }
        let sys = b.build().unwrap();
        let out = list_schedule_block(&sys, blk, &[2]).unwrap();
        assert_eq!(out.makespan, 2);
    }

    #[test]
    fn zero_limit_for_used_type_rejected() {
        let (lib, types) = paper_library();
        let mut b = SystemBuilder::new(lib);
        let (_, blk) = add_ewf_process(&mut b, "P", 20, types).unwrap();
        let sys = b.build().unwrap();
        assert!(list_schedule_block(&sys, blk, &[1, 1, 0]).is_none());
    }

    #[test]
    fn respects_precedence_and_limits_on_ewf() {
        let (lib, types) = paper_library();
        let mut b = SystemBuilder::new(lib);
        let (_, blk) = add_ewf_process(&mut b, "P", 60, types).unwrap();
        let sys = b.build().unwrap();
        let out = list_schedule_block(&sys, blk, &[2, 1, 1]).unwrap();
        // Verify limits were respected via the usage profile up to makespan.
        assert!(out.schedule.peak_usage(&sys, blk, types.add) <= 2);
        assert!(out.schedule.peak_usage(&sys, blk, types.mul) <= 1);
        // Precedence check (block deadline 60 generous enough).
        out.schedule.verify(&sys).unwrap();
        assert!(out.makespan >= sys.critical_path(blk));
    }

    #[test]
    fn multicycle_nonpipelined_blocks_unit() {
        let mut lib = ResourceLibrary::new();
        let div = lib.add(ResourceType::new("div", 3)).unwrap();
        let mut b = SystemBuilder::new(lib);
        let p = b.add_process("p");
        let blk = b.add_block(p, "b", 10).unwrap();
        b.add_op(blk, "d0", div).unwrap();
        b.add_op(blk, "d1", div).unwrap();
        let sys = b.build().unwrap();
        let out = list_schedule_block(&sys, blk, &[1]).unwrap();
        assert_eq!(out.makespan, 6, "two 3-cycle divisions back to back");
    }

    #[test]
    fn pipelined_units_issue_every_cycle() {
        let (lib, types) = paper_library();
        let mut b = SystemBuilder::new(lib);
        let p = b.add_process("p");
        let blk = b.add_block(p, "b", 10).unwrap();
        for i in 0..3 {
            b.add_op(blk, format!("m{i}"), types.mul).unwrap();
        }
        let sys = b.build().unwrap();
        let out = list_schedule_block(&sys, blk, &[0, 0, 1]).unwrap();
        // Pipelined: issues at 0,1,2, last result at 4.
        assert_eq!(out.makespan, 4);
    }
}
