//! The reactive simulator.
//!
//! Each process is driven by a [`Trigger`] workload. An activation runs
//! the process's blocks in order; every block start is delayed to the next
//! point of its grid (a multiple of the lcm of its global periods,
//! equations 2–3), then the block executes its static schedule. A
//! [`ResourceMonitor`] records the instantaneous usage of every shared
//! pool; with a correct schedule it never observes an overdraw — the
//! demonstration that the periodic authorization replaces a runtime
//! executive.

use tcms_core::{compute_report, ScheduleReport, SharingSpec};
use tcms_fds::Schedule;
use tcms_ir::{ResourceTypeId, System};
use tcms_obs::{span, Recorder};

use crate::behavior::{ProcessBehavior, UnrolledStep};
use crate::monitor::{Conflict, ResourceMonitor};
use crate::trace::{Event, EventKind};
use crate::workload::Trigger;

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Number of simulated time steps.
    pub horizon: u64,
    /// Seed for the random workloads (process `i` uses `seed + i`).
    pub seed: u64,
}

/// Aggregate outcome of a simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Every trigger/start/completion, ordered by time.
    pub events: Vec<Event>,
    /// Pool overdraws (empty for correct schedules).
    pub conflicts: Vec<Conflict>,
    /// Completed block activations.
    pub activations: usize,
    /// Average wait from trigger to first block start (queueing plus grid
    /// alignment).
    pub mean_wait: f64,
    /// Average trigger-to-completion latency of process activations.
    /// Activations cut short by the horizon contribute their partial
    /// latency, so very short horizons understate this slightly.
    pub mean_latency: f64,
    /// Utilization per global type (`0.0` for local types).
    pub utilization: Vec<f64>,
    /// Peak concurrent usage per global type.
    pub peak_usage: Vec<u32>,
}

/// Simulates a scheduled system under reactive workloads.
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    system: &'a System,
    spec: &'a SharingSpec,
    schedule: &'a Schedule,
    report: ScheduleReport,
}

impl<'a> Simulator<'a> {
    /// Prepares a simulator (precomputing the authorization report).
    pub fn new(system: &'a System, spec: &'a SharingSpec, schedule: &'a Schedule) -> Self {
        Simulator {
            system,
            spec,
            schedule,
            report: compute_report(system, spec, schedule),
        }
    }

    /// The resource report the monitor checks against.
    pub fn report(&self) -> &ScheduleReport {
        &self.report
    }

    /// Runs the simulation: `workloads[i]` drives process `i`, every
    /// activation runs all blocks once in order.
    ///
    /// # Panics
    ///
    /// Panics if `workloads` does not provide one trigger per process.
    pub fn run(&self, workloads: &[Trigger], config: &SimConfig) -> SimResult {
        let behaviors: Vec<ProcessBehavior> = self
            .system
            .process_ids()
            .map(|p| ProcessBehavior::linear(self.system, p))
            .collect();
        self.run_behaviors(workloads, &behaviors, config)
    }

    /// [`Simulator::run`] with observability: a `"sim.run"` span, one
    /// `"sim.conflict"` event per detected pool overdraw, and activation /
    /// wait / utilization summaries as counters and gauges. The simulated
    /// result is identical to [`Simulator::run`].
    ///
    /// # Panics
    ///
    /// Same as [`Simulator::run`].
    pub fn run_recorded(
        &self,
        workloads: &[Trigger],
        config: &SimConfig,
        rec: &dyn Recorder,
    ) -> SimResult {
        let _sim = span!(rec, "sim.run", horizon = config.horizon, seed = config.seed);
        let result = self.run(workloads, config);
        if rec.enabled() {
            self.record_result(&result, rec);
        }
        result
    }

    /// Publishes a finished [`SimResult`] into a recorder (also used by
    /// [`Simulator::run_recorded`]). Conflicts become `"sim.conflict"`
    /// instant events — for a correct schedule none is ever emitted.
    pub fn record_result(&self, result: &SimResult, rec: &dyn Recorder) {
        if !rec.enabled() {
            return;
        }
        rec.counter_add("sim.activations", result.activations as u64);
        rec.counter_add("sim.events", result.events.len() as u64);
        rec.counter_add("sim.conflicts", result.conflicts.len() as u64);
        rec.gauge_set("sim.mean_wait", result.mean_wait);
        rec.gauge_set("sim.mean_latency", result.mean_latency);
        for c in &result.conflicts {
            rec.event(
                "sim.conflict",
                &[
                    ("type", self.system.library().get(c.rtype).name().into()),
                    ("time", c.time.into()),
                    ("used", c.used.into()),
                    ("available", c.available.into()),
                ],
            );
        }
        for k in self.system.library().ids() {
            if self.spec.is_global(k) {
                rec.event(
                    "sim.pool",
                    &[
                        ("type", self.system.library().get(k).name().into()),
                        ("utilization", result.utilization[k.index()].into()),
                        ("peak", result.peak_usage[k.index()].into()),
                        ("instances", self.report.instances(k).into()),
                    ],
                );
            }
        }
    }

    /// Runs the simulation with explicit per-process behaviours —
    /// including loops whose trip counts are drawn at run time, the
    /// paper's headline use case.
    ///
    /// # Panics
    ///
    /// Panics if the workload or behaviour count does not match the
    /// process count, or if a behaviour references a foreign block.
    pub fn run_behaviors(
        &self,
        workloads: &[Trigger],
        behaviors: &[ProcessBehavior],
        config: &SimConfig,
    ) -> SimResult {
        assert_eq!(
            workloads.len(),
            self.system.num_processes(),
            "one workload per process"
        );
        assert_eq!(
            behaviors.len(),
            self.system.num_processes(),
            "one behaviour per process"
        );
        for (i, beh) in behaviors.iter().enumerate() {
            assert!(
                beh.validate(self.system, tcms_ir::ProcessId::from_index(i)),
                "behaviour {i} references a foreign block"
            );
        }
        let num_types = self.system.library().len();
        let mut monitor = ResourceMonitor::new(num_types, config.horizon);
        let mut events = Vec::new();
        let mut activations = 0usize;
        let mut waits = Vec::new();
        let mut latencies = Vec::new();

        for (pid, process) in self.system.processes() {
            let triggers =
                workloads[pid.index()].times(config.horizon, config.seed + pid.index() as u64);
            let _ = process;
            let mut available_at = 0u64;
            for &trig in &triggers {
                events.push(Event {
                    time: trig,
                    kind: EventKind::Triggered { process: pid },
                });
                // Per-activation RNG: deterministic in (seed, process,
                // trigger time) so trip counts differ between activations.
                let mut rng = crate::behavior::unroll_rng(
                    config
                        .seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(pid.index() as u64)
                        .wrapping_add(trig.wrapping_mul(1_000_003)),
                );
                let steps = behaviors[pid.index()].unroll(&mut rng);
                let mut cursor = trig.max(available_at);
                let mut first_start = None;
                for step in steps {
                    let b = match step {
                        UnrolledStep::Idle(n) => {
                            cursor += n;
                            continue;
                        }
                        UnrolledStep::Run(b) => b,
                    };
                    let spacing = u64::from(self.spec.block_grid_spacing(self.system, b));
                    let start = cursor.div_ceil(spacing) * spacing;
                    if start >= config.horizon {
                        cursor = start;
                        break;
                    }
                    first_start.get_or_insert(start);
                    events.push(Event {
                        time: start,
                        kind: EventKind::Started {
                            block: b,
                            triggered_at: trig,
                        },
                    });
                    // Record the shared-type usage of this run.
                    for k in self.system.types_used_by_block(b) {
                        if !self.spec.is_global_for(k, pid) {
                            continue;
                        }
                        for (t, &u) in self.schedule.usage(self.system, b, k).iter().enumerate() {
                            if u > 0 {
                                monitor.record(k.index(), start + t as u64, u);
                            }
                        }
                    }
                    let makespan = u64::from(self.schedule.block_makespan(self.system, b));
                    cursor = start + makespan;
                    events.push(Event {
                        time: cursor,
                        kind: EventKind::Completed { block: b },
                    });
                    activations += 1;
                }
                if let Some(fs) = first_start {
                    waits.push((fs - trig) as f64);
                    latencies.push((cursor - trig) as f64);
                }
                available_at = cursor;
            }
        }
        events.sort_by_key(|e| e.time);

        let mut conflicts = Vec::new();
        let mut utilization = vec![0.0; num_types];
        let mut peak_usage = vec![0u32; num_types];
        for k in self.system.library().ids() {
            if !self.spec.is_global(k) {
                continue;
            }
            let pool = self.report.instances(k);
            conflicts.extend(monitor.conflicts(k.index(), pool, k));
            utilization[k.index()] = monitor.utilization(k.index(), pool);
            peak_usage[k.index()] = monitor.peak(k.index());
        }
        let mean = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        SimResult {
            events,
            conflicts,
            activations,
            mean_wait: mean(&waits),
            mean_latency: mean(&latencies),
            utilization,
            peak_usage,
        }
    }
}

/// Convenience accessor: utilization of one type from a result.
pub fn type_utilization(result: &SimResult, rtype: ResourceTypeId) -> f64 {
    result.utilization[rtype.index()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcms_core::{ModuloScheduler, SharingSpec};
    use tcms_ir::generators::paper_system;

    fn simulate(trigger: Trigger, horizon: u64, seed: u64) -> (tcms_ir::System, SimResult) {
        let (sys, _) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let out = ModuloScheduler::new(&sys, spec.clone()).unwrap().run();
        let sim = Simulator::new(&sys, &spec, &out.schedule);
        let workloads = vec![trigger; sys.num_processes()];
        let result = sim.run(&workloads, &SimConfig { horizon, seed });
        (sys, result)
    }

    #[test]
    fn no_conflicts_under_random_load() {
        for seed in 0..5 {
            let (_, r) = simulate(Trigger::Random { mean_gap: 37 }, 3_000, seed);
            assert!(r.conflicts.is_empty(), "seed {seed}: {:?}", r.conflicts);
            assert!(r.activations > 0);
        }
    }

    #[test]
    fn no_conflicts_under_bursts() {
        let (_, r) = simulate(
            Trigger::Burst {
                count: 4,
                gap_within: 1,
                gap_between: 200,
            },
            4_000,
            1,
        );
        assert!(r.conflicts.is_empty());
    }

    #[test]
    fn saturating_periodic_load_stays_conflict_free() {
        // Trigger every step: processes re-run back to back.
        let (_, r) = simulate(
            Trigger::Periodic {
                interval: 1,
                offset: 0,
            },
            2_000,
            0,
        );
        assert!(r.conflicts.is_empty());
        assert!(r.mean_wait >= 0.0);
    }

    #[test]
    fn peaks_stay_within_pools() {
        let (sys, r) = simulate(Trigger::Random { mean_gap: 50 }, 5_000, 3);
        let spec = SharingSpec::all_global(&sys, 5);
        let out = ModuloScheduler::new(&sys, spec.clone()).unwrap().run();
        let report = out.report();
        for k in spec.global_types(&sys) {
            assert!(r.peak_usage[k.index()] <= report.instances(k));
            assert!(r.utilization[k.index()] <= 1.0);
        }
    }

    #[test]
    fn starts_are_grid_aligned() {
        let (sys, r) = simulate(Trigger::Random { mean_gap: 23 }, 2_000, 9);
        let spec = SharingSpec::all_global(&sys, 5);
        for e in &r.events {
            if let EventKind::Started { block, .. } = e.kind {
                let spacing = u64::from(spec.block_grid_spacing(&sys, block));
                assert_eq!(e.time % spacing, 0, "block start off grid");
            }
        }
    }

    #[test]
    fn latency_includes_wait() {
        let (_, r) = simulate(Trigger::Random { mean_gap: 60 }, 3_000, 4);
        assert!(r.mean_latency >= r.mean_wait);
        assert!(r.mean_latency > 0.0);
    }

    #[test]
    fn unbounded_loops_stay_conflict_free() {
        // The paper's headline case: loop bodies re-run an unknown number
        // of times, interleaved with delays of unknown length — the static
        // authorization still suffices.
        use crate::behavior::{ProcessBehavior, Segment};
        let (sys, _) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let out = ModuloScheduler::new(&sys, spec.clone()).unwrap().run();
        let sim = Simulator::new(&sys, &spec, &out.schedule);
        let behaviors: Vec<ProcessBehavior> = sys
            .process_ids()
            .map(|p| {
                let block = sys.process(p).blocks()[0];
                ProcessBehavior::new(vec![
                    Segment::Delay { max_steps: 13 },
                    Segment::Loop {
                        block,
                        max_iterations: 5,
                    },
                ])
            })
            .collect();
        let workloads = vec![Trigger::Random { mean_gap: 150 }; sys.num_processes()];
        for seed in 0..4 {
            let result = sim.run_behaviors(
                &workloads,
                &behaviors,
                &SimConfig {
                    horizon: 6_000,
                    seed,
                },
            );
            assert!(result.conflicts.is_empty(), "seed {seed}");
            // Loops produced more block activations than triggers.
            let triggers = result
                .events
                .iter()
                .filter(|e| matches!(e.kind, crate::trace::EventKind::Triggered { .. }))
                .count();
            assert!(result.activations > triggers);
        }
    }

    #[test]
    #[should_panic(expected = "one workload per process")]
    fn workload_count_checked() {
        let (sys, _) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let out = ModuloScheduler::new(&sys, spec.clone()).unwrap().run();
        let sim = Simulator::new(&sys, &spec, &out.schedule);
        let _ = sim.run(
            &[],
            &SimConfig {
                horizon: 10,
                seed: 0,
            },
        );
    }
}
