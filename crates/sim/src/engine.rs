//! The reactive simulator.
//!
//! Each process is driven by a [`Trigger`] workload. An activation runs
//! the process's blocks in order; every block start is delayed to the next
//! point of its grid (a multiple of the lcm of its global periods,
//! equations 2–3), then the block executes its static schedule. A
//! [`ResourceMonitor`] records the instantaneous usage of every shared
//! pool; with a correct schedule it never observes an overdraw — the
//! demonstration that the periodic authorization replaces a runtime
//! executive.

use rand::Rng;
use tcms_core::{compute_report, ScheduleReport, SharingSpec};
use tcms_fds::Schedule;
use tcms_ir::{ResourceTypeId, System};
use tcms_obs::{span, Recorder};

use crate::behavior::{ProcessBehavior, UnrolledStep};
use crate::fault::{FaultMetrics, FaultPlan};
use crate::monitor::{Conflict, ResourceMonitor};
use crate::trace::{Event, EventKind};
use crate::workload::Trigger;

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Number of simulated time steps.
    pub horizon: u64,
    /// Seed for the random workloads (process `i` uses `seed + i`).
    pub seed: u64,
}

/// Aggregate outcome of a simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Every trigger/start/completion, ordered by time.
    pub events: Vec<Event>,
    /// Pool overdraws (empty for correct schedules).
    pub conflicts: Vec<Conflict>,
    /// Completed block activations.
    pub activations: usize,
    /// Average wait from trigger to first block start (queueing plus grid
    /// alignment).
    pub mean_wait: f64,
    /// Average trigger-to-completion latency of process activations.
    /// Activations cut short by the horizon contribute their partial
    /// latency, so very short horizons understate this slightly.
    pub mean_latency: f64,
    /// Utilization per global type (`0.0` for local types).
    pub utilization: Vec<f64>,
    /// Peak concurrent usage per global type.
    pub peak_usage: Vec<u32>,
}

/// Simulates a scheduled system under reactive workloads.
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    system: &'a System,
    spec: &'a SharingSpec,
    schedule: &'a Schedule,
    report: ScheduleReport,
}

impl<'a> Simulator<'a> {
    /// Prepares a simulator (precomputing the authorization report).
    pub fn new(system: &'a System, spec: &'a SharingSpec, schedule: &'a Schedule) -> Self {
        Simulator {
            system,
            spec,
            schedule,
            report: compute_report(system, spec, schedule),
        }
    }

    /// The resource report the monitor checks against.
    pub fn report(&self) -> &ScheduleReport {
        &self.report
    }

    /// Runs the simulation: `workloads[i]` drives process `i`, every
    /// activation runs all blocks once in order.
    ///
    /// # Panics
    ///
    /// Panics if `workloads` does not provide one trigger per process.
    pub fn run(&self, workloads: &[Trigger], config: &SimConfig) -> SimResult {
        let behaviors: Vec<ProcessBehavior> = self
            .system
            .process_ids()
            .map(|p| ProcessBehavior::linear(self.system, p))
            .collect();
        self.run_behaviors(workloads, &behaviors, config)
    }

    /// [`Simulator::run`] with observability: a `"sim.run"` span, one
    /// `"sim.conflict"` event per detected pool overdraw, and activation /
    /// wait / utilization summaries as counters and gauges. The simulated
    /// result is identical to [`Simulator::run`].
    ///
    /// # Panics
    ///
    /// Same as [`Simulator::run`].
    pub fn run_recorded(
        &self,
        workloads: &[Trigger],
        config: &SimConfig,
        rec: &dyn Recorder,
    ) -> SimResult {
        let _sim = span!(rec, "sim.run", horizon = config.horizon, seed = config.seed);
        let result = self.run(workloads, config);
        if rec.enabled() {
            self.record_result(&result, rec);
        }
        result
    }

    /// Publishes a finished [`SimResult`] into a recorder (also used by
    /// [`Simulator::run_recorded`]). Conflicts become `"sim.conflict"`
    /// instant events — for a correct schedule none is ever emitted.
    pub fn record_result(&self, result: &SimResult, rec: &dyn Recorder) {
        if !rec.enabled() {
            return;
        }
        rec.counter_add("sim.activations", result.activations as u64);
        rec.counter_add("sim.events", result.events.len() as u64);
        rec.counter_add("sim.conflicts", result.conflicts.len() as u64);
        rec.gauge_set("sim.mean_wait", result.mean_wait);
        rec.gauge_set("sim.mean_latency", result.mean_latency);
        for c in &result.conflicts {
            rec.event(
                "sim.conflict",
                &[
                    ("type", self.system.library().get(c.rtype).name().into()),
                    ("time", c.time.into()),
                    ("used", c.used.into()),
                    ("available", c.available.into()),
                ],
            );
        }
        for k in self.system.library().ids() {
            if self.spec.is_global(k) {
                rec.event(
                    "sim.pool",
                    &[
                        ("type", self.system.library().get(k).name().into()),
                        ("utilization", result.utilization[k.index()].into()),
                        ("peak", result.peak_usage[k.index()].into()),
                        ("instances", self.report.instances(k).into()),
                    ],
                );
            }
        }
    }

    /// Runs the simulation with explicit per-process behaviours —
    /// including loops whose trip counts are drawn at run time, the
    /// paper's headline use case.
    ///
    /// # Panics
    ///
    /// Panics if the workload or behaviour count does not match the
    /// process count, or if a behaviour references a foreign block.
    pub fn run_behaviors(
        &self,
        workloads: &[Trigger],
        behaviors: &[ProcessBehavior],
        config: &SimConfig,
    ) -> SimResult {
        self.run_core(workloads, behaviors, config, None).0
    }

    /// [`Simulator::run`] under a deterministic [`FaultPlan`]: triggers
    /// are jittered, authorization slots dropped and pool instances taken
    /// out by transient outages, all reproducibly from the plan's seed.
    /// Returns the simulation result together with the recovery metrics.
    ///
    /// # Panics
    ///
    /// Same as [`Simulator::run`], plus invalid plan probabilities.
    pub fn run_with_faults(
        &self,
        workloads: &[Trigger],
        config: &SimConfig,
        plan: &FaultPlan,
    ) -> (SimResult, FaultMetrics) {
        let behaviors: Vec<ProcessBehavior> = self
            .system
            .process_ids()
            .map(|p| ProcessBehavior::linear(self.system, p))
            .collect();
        self.run_behaviors_with_faults(workloads, &behaviors, config, plan)
    }

    /// [`Simulator::run_behaviors`] under a deterministic [`FaultPlan`].
    ///
    /// # Panics
    ///
    /// Same as [`Simulator::run_behaviors`], plus invalid plan
    /// probabilities.
    pub fn run_behaviors_with_faults(
        &self,
        workloads: &[Trigger],
        behaviors: &[ProcessBehavior],
        config: &SimConfig,
        plan: &FaultPlan,
    ) -> (SimResult, FaultMetrics) {
        plan.validate();
        self.run_core(workloads, behaviors, config, Some(plan))
    }

    /// [`Simulator::run_with_faults`] with observability: the usual
    /// `"sim.run"` span and result events plus one `"sim.fault.metrics"`
    /// instant event carrying the recovery counters.
    ///
    /// # Panics
    ///
    /// Same as [`Simulator::run_with_faults`].
    pub fn run_with_faults_recorded(
        &self,
        workloads: &[Trigger],
        config: &SimConfig,
        plan: &FaultPlan,
        rec: &dyn Recorder,
    ) -> (SimResult, FaultMetrics) {
        let _sim = span!(rec, "sim.run", horizon = config.horizon, seed = config.seed);
        let (result, metrics) = self.run_with_faults(workloads, config, plan);
        if rec.enabled() {
            self.record_result(&result, rec);
            rec.counter_add("sim.fault.dropped_slots", metrics.dropped_slots);
            rec.counter_add("sim.fault.outages", metrics.outages);
            rec.counter_add("sim.fault.missed_deadlines", metrics.missed_deadlines);
            rec.event(
                "sim.fault.metrics",
                &[
                    ("jitter_injected", metrics.jitter_injected.into()),
                    ("dropped_slots", metrics.dropped_slots.into()),
                    ("outages", metrics.outages.into()),
                    (
                        "outage_instance_steps",
                        metrics.outage_instance_steps.into(),
                    ),
                    (
                        "authorization_violations",
                        metrics.authorization_violations.into(),
                    ),
                    ("missed_deadlines", metrics.missed_deadlines.into()),
                    ("time_to_drain", metrics.time_to_drain.into()),
                ],
            );
        }
        (result, metrics)
    }

    fn run_core(
        &self,
        workloads: &[Trigger],
        behaviors: &[ProcessBehavior],
        config: &SimConfig,
        plan: Option<&FaultPlan>,
    ) -> (SimResult, FaultMetrics) {
        assert_eq!(
            workloads.len(),
            self.system.num_processes(),
            "one workload per process"
        );
        assert_eq!(
            behaviors.len(),
            self.system.num_processes(),
            "one behaviour per process"
        );
        for (i, beh) in behaviors.iter().enumerate() {
            assert!(
                beh.validate(self.system, tcms_ir::ProcessId::from_index(i)),
                "behaviour {i} references a foreign block"
            );
        }
        let num_types = self.system.library().len();
        let mut monitor = ResourceMonitor::new(num_types, config.horizon);
        let mut events = Vec::new();
        let mut activations = 0usize;
        let mut waits = Vec::new();
        let mut latencies = Vec::new();
        let mut metrics = FaultMetrics::default();
        let mut last_trigger = 0u64;
        let mut last_completion = 0u64;

        for (pid, process) in self.system.processes() {
            let mut triggers =
                workloads[pid.index()].times(config.horizon, config.seed + pid.index() as u64);
            let mut fault_rng = plan.map(|p| p.process_rng(pid.index()));
            if let (Some(p), Some(rng)) = (plan, fault_rng.as_mut()) {
                if p.trigger_jitter > 0 {
                    for t in &mut triggers {
                        let delay = rng.random_range(0..=p.trigger_jitter);
                        metrics.jitter_injected += delay;
                        *t += delay;
                    }
                }
            }
            let _ = process;
            let mut available_at = 0u64;
            for &trig in &triggers {
                last_trigger = last_trigger.max(trig);
                events.push(Event {
                    time: trig,
                    kind: EventKind::Triggered { process: pid },
                });
                // Per-activation RNG: deterministic in (seed, process,
                // trigger time) so trip counts differ between activations.
                let mut rng = crate::behavior::unroll_rng(
                    config
                        .seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(pid.index() as u64)
                        .wrapping_add(trig.wrapping_mul(1_000_003)),
                );
                let steps = behaviors[pid.index()].unroll(&mut rng);
                // Deadlines are measured from dispatch (when the process
                // is free to run), not from the trigger — queueing backlog
                // is workload pressure, not a fault effect.
                let dispatch = trig.max(available_at);
                let mut cursor = dispatch;
                let mut first_start = None;
                let mut nominal = 0u64;
                for step in steps {
                    let b = match step {
                        UnrolledStep::Idle(n) => {
                            cursor += n;
                            nominal += n;
                            continue;
                        }
                        UnrolledStep::Run(b) => b,
                    };
                    let spacing = u64::from(self.spec.block_grid_spacing(self.system, b));
                    let mut start = cursor.div_ceil(spacing) * spacing;
                    if let (Some(p), Some(frng)) = (plan, fault_rng.as_mut()) {
                        // A dropped authorization slot: the block misses
                        // its grid point and waits for the next one.
                        while p.drop_slot_prob > 0.0 && frng.random::<f64>() < p.drop_slot_prob {
                            start += spacing;
                            metrics.dropped_slots += 1;
                        }
                    }
                    if start >= config.horizon {
                        cursor = start;
                        break;
                    }
                    first_start.get_or_insert(start);
                    events.push(Event {
                        time: start,
                        kind: EventKind::Started {
                            block: b,
                            triggered_at: trig,
                        },
                    });
                    // Record the shared-type usage of this run.
                    for k in self.system.types_used_by_block(b) {
                        if !self.spec.is_global_for(k, pid) {
                            continue;
                        }
                        for (t, &u) in self.schedule.usage(self.system, b, k).iter().enumerate() {
                            if u > 0 {
                                monitor.record(k.index(), start + t as u64, u);
                            }
                        }
                    }
                    let makespan = u64::from(self.schedule.block_makespan(self.system, b));
                    cursor = start + makespan;
                    nominal += spacing + makespan;
                    last_completion = last_completion.max(cursor);
                    events.push(Event {
                        time: cursor,
                        kind: EventKind::Completed { block: b },
                    });
                    activations += 1;
                }
                if let Some(fs) = first_start {
                    waits.push((fs - trig) as f64);
                    latencies.push((cursor - trig) as f64);
                    if let Some(p) = plan {
                        if cursor - dispatch > nominal + p.deadline_slack {
                            metrics.missed_deadlines += 1;
                        }
                    }
                }
                available_at = cursor;
            }
        }
        events.sort_by_key(|e| e.time);

        let mut conflicts = Vec::new();
        let mut utilization = vec![0.0; num_types];
        let mut peak_usage = vec![0u32; num_types];
        for k in self.system.library().ids() {
            if !self.spec.is_global(k) {
                continue;
            }
            let pool = self.report.instances(k);
            conflicts.extend(monitor.conflicts(k.index(), pool, k));
            utilization[k.index()] = monitor.utilization(k.index(), pool);
            peak_usage[k.index()] = monitor.peak(k.index());
            if let Some(p) = plan {
                // Outages shrink the pool; steps where the static
                // authorization still uses more than the surviving
                // instances are authorization violations.
                let (down, count) = p.outage_timeline(k.index(), config.horizon);
                metrics.outages += count;
                metrics.outage_instance_steps += down.iter().map(|&u| u64::from(u)).sum::<u64>();
                for (t, &used) in monitor.usage_series(k.index()).iter().enumerate() {
                    let effective = pool.saturating_sub(down[t]);
                    if used > effective {
                        metrics.authorization_violations += 1;
                    }
                }
            }
        }
        metrics.time_to_drain = last_completion.saturating_sub(last_trigger);
        let mean = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        let result = SimResult {
            events,
            conflicts,
            activations,
            mean_wait: mean(&waits),
            mean_latency: mean(&latencies),
            utilization,
            peak_usage,
        };
        (result, metrics)
    }
}

/// Convenience accessor: utilization of one type from a result.
pub fn type_utilization(result: &SimResult, rtype: ResourceTypeId) -> f64 {
    result.utilization[rtype.index()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcms_core::{ModuloScheduler, SharingSpec};
    use tcms_ir::generators::paper_system;

    fn simulate(trigger: Trigger, horizon: u64, seed: u64) -> (tcms_ir::System, SimResult) {
        let (sys, _) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let out = ModuloScheduler::new(&sys, spec.clone())
            .unwrap()
            .run()
            .unwrap();
        let sim = Simulator::new(&sys, &spec, &out.schedule);
        let workloads = vec![trigger; sys.num_processes()];
        let result = sim.run(&workloads, &SimConfig { horizon, seed });
        (sys, result)
    }

    #[test]
    fn no_conflicts_under_random_load() {
        for seed in 0..5 {
            let (_, r) = simulate(Trigger::Random { mean_gap: 37 }, 3_000, seed);
            assert!(r.conflicts.is_empty(), "seed {seed}: {:?}", r.conflicts);
            assert!(r.activations > 0);
        }
    }

    #[test]
    fn no_conflicts_under_bursts() {
        let (_, r) = simulate(
            Trigger::Burst {
                count: 4,
                gap_within: 1,
                gap_between: 200,
            },
            4_000,
            1,
        );
        assert!(r.conflicts.is_empty());
    }

    #[test]
    fn saturating_periodic_load_stays_conflict_free() {
        // Trigger every step: processes re-run back to back.
        let (_, r) = simulate(
            Trigger::Periodic {
                interval: 1,
                offset: 0,
            },
            2_000,
            0,
        );
        assert!(r.conflicts.is_empty());
        assert!(r.mean_wait >= 0.0);
    }

    #[test]
    fn peaks_stay_within_pools() {
        let (sys, r) = simulate(Trigger::Random { mean_gap: 50 }, 5_000, 3);
        let spec = SharingSpec::all_global(&sys, 5);
        let out = ModuloScheduler::new(&sys, spec.clone())
            .unwrap()
            .run()
            .unwrap();
        let report = out.report();
        for k in spec.global_types(&sys) {
            assert!(r.peak_usage[k.index()] <= report.instances(k));
            assert!(r.utilization[k.index()] <= 1.0);
        }
    }

    #[test]
    fn starts_are_grid_aligned() {
        let (sys, r) = simulate(Trigger::Random { mean_gap: 23 }, 2_000, 9);
        let spec = SharingSpec::all_global(&sys, 5);
        for e in &r.events {
            if let EventKind::Started { block, .. } = e.kind {
                let spacing = u64::from(spec.block_grid_spacing(&sys, block));
                assert_eq!(e.time % spacing, 0, "block start off grid");
            }
        }
    }

    #[test]
    fn latency_includes_wait() {
        let (_, r) = simulate(Trigger::Random { mean_gap: 60 }, 3_000, 4);
        assert!(r.mean_latency >= r.mean_wait);
        assert!(r.mean_latency > 0.0);
    }

    #[test]
    fn unbounded_loops_stay_conflict_free() {
        // The paper's headline case: loop bodies re-run an unknown number
        // of times, interleaved with delays of unknown length — the static
        // authorization still suffices.
        use crate::behavior::{ProcessBehavior, Segment};
        let (sys, _) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let out = ModuloScheduler::new(&sys, spec.clone())
            .unwrap()
            .run()
            .unwrap();
        let sim = Simulator::new(&sys, &spec, &out.schedule);
        let behaviors: Vec<ProcessBehavior> = sys
            .process_ids()
            .map(|p| {
                let block = sys.process(p).blocks()[0];
                ProcessBehavior::new(vec![
                    Segment::Delay { max_steps: 13 },
                    Segment::Loop {
                        block,
                        max_iterations: 5,
                    },
                ])
            })
            .collect();
        let workloads = vec![Trigger::Random { mean_gap: 150 }; sys.num_processes()];
        for seed in 0..4 {
            let result = sim.run_behaviors(
                &workloads,
                &behaviors,
                &SimConfig {
                    horizon: 6_000,
                    seed,
                },
            );
            assert!(result.conflicts.is_empty(), "seed {seed}");
            // Loops produced more block activations than triggers.
            let triggers = result
                .events
                .iter()
                .filter(|e| matches!(e.kind, crate::trace::EventKind::Triggered { .. }))
                .count();
            assert!(result.activations > triggers);
        }
    }

    fn fault_fixture() -> (tcms_ir::System, SharingSpec, tcms_fds::Schedule) {
        let (sys, _) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let schedule = ModuloScheduler::new(&sys, spec.clone())
            .unwrap()
            .run()
            .unwrap()
            .schedule;
        (sys, spec, schedule)
    }

    #[test]
    fn quiet_fault_plan_matches_plain_run() {
        let (sys, spec, schedule) = fault_fixture();
        let sim = Simulator::new(&sys, &spec, &schedule);
        let workloads = vec![Trigger::Random { mean_gap: 40 }; sys.num_processes()];
        let config = SimConfig {
            horizon: 3_000,
            seed: 2,
        };
        let plain = sim.run(&workloads, &config);
        let (faulted, metrics) =
            sim.run_with_faults(&workloads, &config, &crate::fault::FaultPlan::quiet(9));
        assert_eq!(faulted.events, plain.events);
        assert_eq!(faulted.conflicts, plain.conflicts);
        assert_eq!(faulted.activations, plain.activations);
        assert_eq!(metrics.jitter_injected, 0);
        assert_eq!(metrics.dropped_slots, 0);
        assert_eq!(metrics.outages, 0);
        assert_eq!(metrics.authorization_violations, 0);
        assert_eq!(metrics.missed_deadlines, 0);
    }

    #[test]
    fn fault_runs_are_deterministic_per_seed() {
        let (sys, spec, schedule) = fault_fixture();
        let sim = Simulator::new(&sys, &spec, &schedule);
        let workloads = vec![Trigger::Random { mean_gap: 30 }; sys.num_processes()];
        let config = SimConfig {
            horizon: 4_000,
            seed: 5,
        };
        let plan = crate::fault::FaultPlan::moderate(11);
        let (ra, ma) = sim.run_with_faults(&workloads, &config, &plan);
        let (rb, mb) = sim.run_with_faults(&workloads, &config, &plan);
        assert_eq!(ra.events, rb.events);
        assert_eq!(ma, mb);
        assert!(
            ma.dropped_slots > 0 || ma.jitter_injected > 0,
            "moderate plan must inject something: {ma:?}"
        );
        // A different fault seed changes the run.
        let (rc, mc) =
            sim.run_with_faults(&workloads, &config, &crate::fault::FaultPlan::moderate(12));
        assert!(ra.events != rc.events || ma != mc);
    }

    #[test]
    fn slot_drops_and_jitter_keep_grid_alignment_and_conflict_freedom() {
        // Dropped slots and jitter only ever *delay* starts to later grid
        // points, so the static authorization still holds: starts stay
        // grid-aligned and the full pool is never overdrawn.
        let (sys, spec, schedule) = fault_fixture();
        let sim = Simulator::new(&sys, &spec, &schedule);
        let workloads = vec![Trigger::Random { mean_gap: 35 }; sys.num_processes()];
        let mut plan = crate::fault::FaultPlan::quiet(3);
        plan.trigger_jitter = 7;
        plan.drop_slot_prob = 0.2;
        plan.deadline_slack = 0;
        let (r, m) = sim.run_with_faults(
            &workloads,
            &SimConfig {
                horizon: 4_000,
                seed: 1,
            },
            &plan,
        );
        assert!(r.conflicts.is_empty(), "{:?}", r.conflicts);
        assert_eq!(m.authorization_violations, 0, "pool untouched by plan");
        assert!(m.dropped_slots > 0);
        for e in &r.events {
            if let EventKind::Started { block, .. } = e.kind {
                let spacing = u64::from(spec.block_grid_spacing(&sys, block));
                assert_eq!(e.time % spacing, 0, "faulted start off grid");
            }
        }
        // Enough dropped slots produce missed deadlines under zero slack.
        assert!(m.missed_deadlines > 0, "{m:?}");
    }

    #[test]
    fn outages_surface_authorization_violations() {
        // Frequent long outages under saturating load must eventually
        // catch the authorization using an instance that is down — the
        // violation counter is the whole point of the experiment.
        let (sys, spec, schedule) = fault_fixture();
        let sim = Simulator::new(&sys, &spec, &schedule);
        let workloads = vec![
            Trigger::Periodic {
                interval: 1,
                offset: 0,
            };
            sys.num_processes()
        ];
        let mut plan = crate::fault::FaultPlan::quiet(4);
        plan.outage_rate = 0.05;
        plan.repair_time = 40;
        let (_, m) = sim.run_with_faults(
            &workloads,
            &SimConfig {
                horizon: 3_000,
                seed: 0,
            },
            &plan,
        );
        assert!(m.outages > 0);
        assert!(m.outage_instance_steps > 0);
        assert!(m.authorization_violations > 0, "{m:?}");
    }

    #[test]
    fn time_to_drain_covers_trailing_work() {
        let (sys, spec, schedule) = fault_fixture();
        let sim = Simulator::new(&sys, &spec, &schedule);
        // One early burst, then silence: drain time is the backlog the
        // burst left behind.
        let workloads = vec![
            Trigger::Burst {
                count: 6,
                gap_within: 1,
                gap_between: 100_000,
            };
            sys.num_processes()
        ];
        let (_, m) = sim.run_with_faults(
            &workloads,
            &SimConfig {
                horizon: 2_000,
                seed: 0,
            },
            &crate::fault::FaultPlan::quiet(0),
        );
        assert!(m.time_to_drain > 0, "{m:?}");
    }

    #[test]
    #[should_panic(expected = "one workload per process")]
    fn workload_count_checked() {
        let (sys, _) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let out = ModuloScheduler::new(&sys, spec.clone())
            .unwrap()
            .run()
            .unwrap();
        let sim = Simulator::new(&sys, &spec, &out.schedule);
        let _ = sim.run(
            &[],
            &SimConfig {
                horizon: 10,
                seed: 0,
            },
        );
    }
}
